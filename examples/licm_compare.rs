//! Figure 4 in miniature: run LICM driven by the paper's Algorithm 1 (the
//! LLVM logic) and by Algorithm 2 (the NOELLE logic) on the same program and
//! compare hoist counts and cycles.
//!
//! Run with: `cargo run --example licm_compare`

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};

fn main() {
    let w = noelle::workloads::by_name("vips").expect("known workload");
    let baseline = run_module(&w.build(), "main", &[], &RunConfig::default()).expect("runs");
    println!("baseline: cycles = {}", baseline.cycles);

    // Algorithm 1 (LLVM): non-recursive, basic alias tier.
    let mut m1 = w.build();
    let hoisted_llvm = noelle::transforms::baseline::licm_llvm(&mut m1);
    let r1 = run_module(&m1, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(r1.ret_i64(), baseline.ret_i64());
    println!(
        "Algorithm 1 (LLVM):   hoisted {hoisted_llvm:>3} instructions, cycles = {}",
        r1.cycles
    );

    // Algorithm 2 (NOELLE): recursive over the PDG, full alias stack.
    let mut noelle = Noelle::new(w.build(), AliasTier::Full);
    let report = noelle::transforms::licm::run(&mut noelle);
    let m2 = noelle.into_module();
    let r2 = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(r2.ret_i64(), baseline.ret_i64());
    println!(
        "Algorithm 2 (NOELLE): hoisted {:>3} instructions, cycles = {}",
        report.hoisted, r2.cycles
    );
    assert!(report.hoisted >= hoisted_llvm);
}
