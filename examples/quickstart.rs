//! Quickstart: parse a program from NOELLE-rs textual IR, load the NOELLE
//! layer, inspect the Loop abstraction of its hot loop, parallelize it, and
//! run both versions on the simulated machine.
//!
//! Run with: `cargo run --example quickstart`

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};

const PROGRAM: &str = r#"
module "quickstart" {
declare i64* @malloc(i64 %n)
define i64 @dot(i64* %a, i64* %b, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %pa = gep i64, %a, %i
  %pb = gep i64, %b, %i
  %va = load i64, %pa
  %vb = load i64, %pb
  %prod = mul i64 %va, %vb
  %s2 = add i64 %s, %prod
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %a = call i64* @malloc(i64 4096)
  %b = call i64* @malloc(i64 4096)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %pa = gep i64, %a, %i
  %pb = gep i64, %b, %i
  store i64 %i, %pa
  %x = and i64 %i, i64 7
  store i64 %x, %pb
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 512
  condbr %c, fill, done
done:
  %r = call i64 @dot(%a, %b, i64 512)
  ret %r
}
}
"#;

fn main() {
    let module = noelle::ir::parser::parse_module(PROGRAM).expect("program parses");
    noelle::ir::verifier::verify_module(&module).expect("program verifies");
    let seq = run_module(&module, "main", &[], &RunConfig::default()).expect("runs");
    println!(
        "sequential: result = {:?}, cycles = {}",
        seq.ret_i64(),
        seq.cycles
    );

    // Load the NOELLE layer and inspect the dot-product loop.
    let mut noelle = Noelle::new(module, AliasTier::Full);
    let fid = noelle.module().func_id_by_name("dot").expect("dot exists");
    let l = noelle.loops_of(fid)[0].clone();
    let la = noelle.loop_abstraction(fid, l);
    println!(
        "loop: {} SCCs, {} IVs (governing: {}), {} reductions, DOALL-able: {}",
        la.sccdag.nodes().len(),
        la.ivs.len(),
        la.ivs.governing().is_some(),
        la.reductions.len(),
        la.is_doall(),
    );

    // Parallelize and re-run.
    let report = noelle::transforms::doall::run(
        &mut noelle,
        &noelle::transforms::doall::DoallOptions {
            target: noelle::transforms::LoopTargetOpts {
                min_hotness: 0.0,
                only: None,
                workers: 4,
            },
        },
    );
    println!("DOALL parallelized {} loop(s)", report.count());
    let m2 = noelle.into_module();
    noelle::ir::verifier::verify_module(&m2).expect("still verifies");
    let par = run_module(&m2, "main", &[], &RunConfig::default()).expect("parallel runs");
    println!(
        "parallel (4 cores): result = {:?}, cycles = {}, speedup = {:.2}x",
        par.ret_i64(),
        par.cycles,
        seq.cycles as f64 / par.cycles as f64
    );
    assert_eq!(seq.ret_i64(), par.ret_i64());
}
