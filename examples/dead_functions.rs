//! §4.5 in miniature: dead-function elimination over the complete call
//! graph, including indirect-call targets that must be kept.
//!
//! Run with: `cargo run --example dead_functions`

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};

fn main() {
    let w = noelle::workloads::by_name("ferret").expect("known workload");
    let m = w.build();
    let before = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");

    let mut noelle = Noelle::new(m, AliasTier::Full);
    let report = noelle::transforms::dead::run(&mut noelle, "main");
    println!(
        "removed {} function(s): {:?}",
        report.removed.len(),
        report.removed
    );
    println!(
        "instructions: {} -> {} ({:.1}% smaller)",
        report.insts_before,
        report.insts_after,
        100.0 * report.reduction()
    );
    let m2 = noelle.into_module();
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("still runs");
    assert_eq!(after.ret_i64(), before.ret_i64());
    println!("semantics preserved: result = {:?}", after.ret_i64());
}
