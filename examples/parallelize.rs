//! The paper's full compilation flow (Figure 1) on one benchmark:
//! profile -> embed -> parallelize with each technique -> simulate.
//!
//! Run with: `cargo run --example parallelize [workload] [cores]`

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};
use noelle::transforms as tools;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "streamcluster".into());
    let cores: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let w = noelle::workloads::by_name(&name).expect("known workload");
    println!("workload: {} ({} suite)", w.name, w.suite.name());

    // noelle-prof-coverage + noelle-meta-prof-embed.
    let mut module = w.build();
    let prof_cfg = RunConfig {
        collect_profiles: true,
        ..RunConfig::default()
    };
    let seq = run_module(&module, "main", &[], &prof_cfg).expect("baseline runs");
    seq.profiles.embed(&mut module);
    println!(
        "baseline: result = {:?}, cycles = {}",
        seq.ret_i64(),
        seq.cycles
    );

    for technique in ["doall", "helix", "dswp", "autopar"] {
        let (m2, parallelized) = match technique {
            "autopar" => {
                let (m2, r) = tools::baseline::conservative_parallelize(module.clone(), cores);
                (m2, r.count())
            }
            _ => {
                let mut n = Noelle::new(module.clone(), AliasTier::Full);
                let count = match technique {
                    "doall" => tools::doall::run(
                        &mut n,
                        &tools::doall::DoallOptions {
                            target: tools::LoopTargetOpts {
                                min_hotness: 0.02,
                                only: None,
                                workers: cores,
                            },
                        },
                    )
                    .count(),
                    "helix" => tools::helix::run(
                        &mut n,
                        &tools::helix::HelixOptions {
                            target: tools::LoopTargetOpts {
                                min_hotness: 0.02,
                                only: None,
                                workers: cores,
                            },
                            max_sequential_fraction: 0.7,
                        },
                    )
                    .count(),
                    _ => tools::dswp::run(
                        &mut n,
                        &tools::dswp::DswpOptions {
                            target: tools::LoopTargetOpts {
                                min_hotness: 0.02,
                                only: None,
                                workers: 2,
                            },
                        },
                    )
                    .count(),
                };
                (n.into_module(), count)
            }
        };
        let r = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
        assert_eq!(r.ret_i64(), seq.ret_i64(), "{technique} broke the program");
        println!(
            "{technique:>8}: {parallelized} loop(s) parallelized, cycles = {:>8}, speedup = {:.2}x",
            r.cycles,
            seq.cycles as f64 / r.cycles as f64
        );
    }
}
