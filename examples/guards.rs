//! CARAT in miniature: inject memory guards, observe the optimizer removing
//! redundant ones and hoisting loop-invariant ones, and count the runtime
//! guard executions.
//!
//! Run with: `cargo run --example guards`

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};

fn main() {
    let w = noelle::workloads::by_name("fluidanimate").expect("known workload");
    let m = w.build();
    let before = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");

    let mut noelle = Noelle::new(m, AliasTier::Full);
    let report = noelle::transforms::carat::run(&mut noelle);
    println!(
        "guards inserted: {} (static proofs: {}, redundant skipped: {}, hoisted: {})",
        report.guarded, report.proven, report.redundant, report.hoisted
    );
    let m2 = noelle.into_module();
    noelle::ir::verifier::verify_module(&m2).expect("verifies");
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs guarded");
    assert_eq!(after.ret_i64(), before.ret_i64());
    println!(
        "runtime guard executions: {}  (overhead: {:.1}%)",
        after.counters.get("guards").copied().unwrap_or(0),
        100.0 * (after.cycles as f64 / before.cycles as f64 - 1.0)
    );
}
