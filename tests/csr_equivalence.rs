//! Layout equivalence: the frozen CSR `DepGraph` form must be
//! observationally identical to the adjacency-map form it replaced.
//!
//! The production build path (`PdgBuilder::function_pdg`) now constructs
//! graphs directly in frozen CSR form; `function_pdg_seed_layout` preserves
//! the pre-CSR algorithm verbatim (adjacency maps, never frozen). These
//! tests pin that the two forms agree on everything a client can observe —
//! node sets, the ordered edge stream, per-node in/out adjacency, external
//! boundaries, the aSCCDAG of every loop, and the wire JSON — across the
//! whole bundled corpus and a 500-seed fuzz-generator campaign.

use std::collections::BTreeSet;

use noelle::core::wire;
use noelle::ir::cfg::Cfg;
use noelle::ir::dom::DomTree;
use noelle::ir::inst::InstId;
use noelle::ir::loops::LoopForest;
use noelle::ir::module::Module;
use noelle::pdg::depgraph::DepGraph;
use noelle::pdg::pdg::PdgBuilder;
use noelle::pdg::sccdag::SccDag;
use noelle::workloads::{all, pdg_stress};
use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_fuzz::generator::{generate, GenConfig};

/// Assert every observable surface of `frozen` matches `mapped`.
fn assert_graphs_equivalent(name: &str, frozen: &DepGraph<InstId>, mapped: &DepGraph<InstId>) {
    assert!(frozen.is_frozen(), "{name}: production graph must be CSR");
    assert!(
        !mapped.is_frozen(),
        "{name}: reference graph must stay maps"
    );

    assert_eq!(
        frozen.internal_nodes().collect::<BTreeSet<_>>(),
        mapped.internal_nodes().collect::<BTreeSet<_>>(),
        "{name}: internal node sets diverged"
    );
    assert_eq!(
        frozen.external_nodes().collect::<BTreeSet<_>>(),
        mapped.external_nodes().collect::<BTreeSet<_>>(),
        "{name}: external node sets diverged"
    );
    // The ordered edge stream is what wire encodings and `EdgeId`s key on:
    // it must be identical, not merely set-equal.
    assert_eq!(
        frozen.edges(),
        mapped.edges(),
        "{name}: ordered edge streams diverged"
    );
    assert_eq!(
        frozen.incoming_externals(),
        mapped.incoming_externals(),
        "{name}: incoming externals diverged"
    );
    assert_eq!(
        frozen.outgoing_externals(),
        mapped.outgoing_externals(),
        "{name}: outgoing externals diverged"
    );
    for n in frozen
        .internal_nodes()
        .chain(frozen.external_nodes())
        .collect::<Vec<_>>()
    {
        assert_eq!(
            frozen.edges_from(n).collect::<Vec<_>>(),
            mapped.edges_from(n).collect::<Vec<_>>(),
            "{name}: edges_from({n:?}) diverged"
        );
        assert_eq!(
            frozen.edges_to(n).collect::<Vec<_>>(),
            mapped.edges_to(n).collect::<Vec<_>>(),
            "{name}: edges_to({n:?}) diverged"
        );
        assert_eq!(
            frozen.dependences_of(n),
            mapped.dependences_of(n),
            "{name}: dependences_of({n:?}) diverged"
        );
        assert_eq!(
            frozen.dependents_of(n),
            mapped.dependents_of(n),
            "{name}: dependents_of({n:?}) diverged"
        );
    }
}

/// Compare both layouts over every function of `m`, including each loop's
/// aSCCDAG and the whole-program wire JSON.
fn check_module(name: &str, m: &Module) {
    let basic = BasicAlias::new(m);
    let andersen = AndersenAlias::new(m);
    let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
    let builder = PdgBuilder::new(m, &stack);

    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        let frozen = builder.function_pdg(fid);
        let mapped = builder.function_pdg_seed_layout(fid);
        let label = format!("{name}/{}", f.name);
        assert_graphs_equivalent(&label, &frozen, &mapped);

        // The aSCCDAG Tarjan pass consumes the graph through the same
        // adjacency interface; it must see the same condensation.
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        for l in LoopForest::new(f, &cfg, &dt).loops() {
            let frozen_loop = builder.loop_pdg_with(fid, l, &frozen);
            let mapped_loop = builder.loop_pdg_with(fid, l, &mapped);
            let a = SccDag::new(f, l, &frozen_loop);
            let b = SccDag::new(f, l, &mapped_loop);
            assert_eq!(
                format!("{:?}", a.nodes()),
                format!("{:?}", b.nodes()),
                "{label}: aSCCDAG nodes diverged on loop header {:?}",
                l.header
            );
            assert_eq!(
                a.edges().collect::<BTreeSet<_>>(),
                b.edges().collect::<BTreeSet<_>>(),
                "{label}: aSCCDAG edges diverged on loop header {:?}",
                l.header
            );
            assert_eq!(
                a.topo_order(),
                b.topo_order(),
                "{label}: aSCCDAG topo order diverged on loop header {:?}",
                l.header
            );
        }
    }

    // Wire JSON must be byte-identical — the server serves these bytes.
    let fast = wire::pdg_to_json(m, &builder.program_pdg()).to_string_compact();
    let seed = wire::pdg_to_json(m, &builder.program_pdg_seed_layout()).to_string_compact();
    assert_eq!(fast, seed, "{name}: wire JSON diverged between layouts");
}

#[test]
fn csr_matches_adjacency_map_across_all_workloads() {
    let mut workloads = all();
    workloads.push(pdg_stress());
    assert!(workloads.len() >= 42, "corpus shrank: {}", workloads.len());
    for w in &workloads {
        check_module(w.name, &w.build());
    }
}

#[test]
fn csr_matches_adjacency_map_across_500_fuzz_seeds() {
    // Generator smoke on the new layout: small random modules exercise
    // shapes (phis, indirect calls, irregular control flow) the curated
    // corpus doesn't. Full structural equivalence is cheap enough per seed
    // to sweep a real campaign's worth.
    let cfg = GenConfig {
        max_kernels: 2,
        size_budget: 80,
        min_n: 4,
        max_n: 16,
    };
    for seed in 0..500u64 {
        let m = generate(seed, &cfg);
        check_module(&format!("seed{seed}"), &m);
    }
}
