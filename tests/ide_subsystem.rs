//! Property tests for the `noelle-ide` diff-parser over the workload
//! registry: random single-function text edits must (a) change exactly the
//! functions whose content fingerprint changed, and (b) leave diagnostics
//! byte-identical to a cold parse+lint of the final text. Parse errors must
//! degrade to last-good diagnostics instead of dropping the session.

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::parser::parse_module;
use noelle::ir::printer::print_module;
use noelle::ir::Module;
use noelle::workloads;
use noelle_ide::{Change, DocSession};
use noelle_lint::{render_json, run_checks};
use std::collections::{BTreeMap, BTreeSet};

/// Deterministic xorshift64* generator (same family as the workload
/// registry's own).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The registry the property quantifies over: the 41-benchmark corpus plus
/// the PDG stress workload — 42 programs.
fn registry() -> Vec<workloads::Workload> {
    let mut ws = workloads::all();
    ws.push(workloads::pdg_stress());
    ws
}

fn fingerprints(m: &Module) -> BTreeMap<String, u64> {
    m.functions()
        .iter()
        .filter(|f| !f.is_declaration())
        .map(|f| (f.name.clone(), f.content_fingerprint()))
        .collect()
}

/// Names whose fingerprint in `after` differs from (or is missing in)
/// `before`.
fn diff(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> BTreeSet<String> {
    after
        .iter()
        .filter(|(name, fp)| before.get(*name) != Some(fp))
        .map(|(name, _)| name.clone())
        .collect()
}

/// Cold reference: parse the final text from scratch and run every lint
/// check, rendered to the same wire format the session serves.
fn cold_report(text: &str) -> String {
    let m = parse_module(text).expect("final text parses");
    let mut n = Noelle::new(m, AliasTier::Basic);
    render_json(&run_checks(&mut n, "all").expect("'all' is a known check")).to_string_compact()
}

fn session_report(s: &DocSession) -> String {
    render_json(&s.findings()).to_string_compact()
}

#[test]
fn random_single_function_edits_match_cold_lint() {
    let ws = registry();
    assert_eq!(ws.len(), 42, "the property quantifies over 42 workloads");
    for (wi, w) in ws.iter().enumerate() {
        let text = print_module(&w.build());
        let mut s = DocSession::open(w.name, &text, AliasTier::Basic);
        assert!(
            s.syntax_error().is_none(),
            "{}: printed module parses",
            w.name
        );
        assert_eq!(
            session_report(&s),
            cold_report(&s.text()),
            "{}: open",
            w.name
        );

        let mut rng = Rng::new(0x1DE0 + wi as u64);
        for step in 0..3u64 {
            let before = fingerprints(s.noelle().expect("good state").module());
            let spans: Vec<(String, usize)> = s
                .spans()
                .iter()
                .map(|sp| (sp.name.clone(), sp.start_line))
                .collect();
            let (target, define_line) = spans[rng.below(spans.len())].clone();
            // Three of four edits attach fresh function metadata (a
            // semantic change to exactly one function); the fourth inserts
            // a comment (a text change with no semantic effect).
            let semantic = rng.below(4) != 0;
            let inserted = if semantic {
                format!("  fmeta \"prop.edit{step}\" = \"{}\"", rng.next())
            } else {
                format!("  ; sweep {step}")
            };
            let out = s
                .change(
                    s.version() + 1,
                    Change::Splice {
                        start_line: define_line + 1,
                        end_line: define_line + 1,
                        lines: vec![inserted],
                    },
                )
                .expect("in-range splice");
            assert!(
                out.incremental,
                "{}: single-function edit reparses a snippet",
                w.name
            );
            assert!(out.syntax_error.is_none());

            // (a) The functions the diff-parser actually updated in the
            // live module == the functions whose fingerprint changed in a
            // cold parse of the final text == the edited function (or
            // nothing, for the comment edit).
            let after = fingerprints(s.noelle().expect("still good").module());
            let cold = parse_module(&s.text()).expect("final text parses");
            let truth = diff(&before, &fingerprints(&cold));
            assert_eq!(
                diff(&before, &after),
                truth,
                "{}: diffed function set == fingerprint-diff set",
                w.name
            );
            let expected: BTreeSet<String> = if semantic {
                std::iter::once(target.clone()).collect()
            } else {
                BTreeSet::new()
            };
            assert_eq!(truth, expected, "{}: edit touched @{target} only", w.name);
            let damage: BTreeSet<String> = out.changed_functions.iter().cloned().collect();
            assert!(
                truth.is_subset(&damage),
                "{}: re-linted set covers every changed function",
                w.name
            );

            // (b) Diagnostics are byte-identical to a cold parse+lint.
            assert_eq!(
                session_report(&s),
                cold_report(&s.text()),
                "{}: edit-then-diagnose == cold parse+lint",
                w.name
            );
        }
    }
}

#[test]
fn parse_errors_degrade_to_last_good_diagnostics() {
    for w in registry().iter().step_by(5) {
        let text = print_module(&w.build());
        let mut s = DocSession::open(w.name, &text, AliasTier::Basic);
        let good = session_report(&s);

        let define_line = s.spans()[0].start_line;
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: define_line + 1,
                    end_line: define_line + 1,
                    lines: vec!["  utterly not nir".to_string()],
                },
            )
            .expect("broken text is accepted, not rejected");
        assert!(out.syntax_error.is_some(), "{}: syntax diagnostic", w.name);
        assert!(s.syntax_error().is_some());
        assert_eq!(
            session_report(&s),
            good,
            "{}: last-good diagnostics survive a parse error",
            w.name
        );

        // A full-text restore recovers the session in place.
        let out = s.change(3, Change::Full(text)).expect("restore");
        assert!(out.syntax_error.is_none(), "{}: recovered", w.name);
        assert!(s.syntax_error().is_none());
        assert_eq!(session_report(&s), good, "{}: diagnostics restored", w.name);
    }
}
