//! End-to-end durability tests for the `noelle-store`-backed daemon: a
//! killed-and-restarted server answers byte-identically from disk, CRC
//! catches truncated and bit-flipped segment entries (the daemon silently
//! recomputes — never panics, never serves stale bytes), `fsck`/`compact`
//! report and drop the damage, and an overloaded shard sheds with
//! structured `overloaded` errors instead of unbounded queueing.

use noelle::core::json::Json;
use noelle::core::noelle::{AliasTier, Noelle};
use noelle::core::wire;
use noelle_server::{Client, RunningServer, Server, ServerConfig};
use noelle_store::Store;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("noelle-store-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create store dir");
    dir
}

fn start_with_store(dir: &Path) -> RunningServer {
    Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port")
}

fn load(c: &mut Client, path: &str, session: &str) {
    let ok = c
        .call(
            "load",
            Json::object([
                ("path".to_string(), Json::Str(path.into())),
                ("session".to_string(), Json::Str(session.into())),
            ]),
        )
        .expect("load succeeds");
    assert_eq!(ok.get("session").and_then(Json::as_str), Some(session));
}

fn sess(name: &str) -> Json {
    Json::object([("session".to_string(), Json::Str(name.into()))])
}

fn with_loop(name: &str, func: &str) -> Json {
    Json::object([
        ("session".to_string(), Json::Str(name.into())),
        ("func".to_string(), Json::Str(func.into())),
        ("loop".to_string(), Json::Int(0)),
    ])
}

fn store_hits(c: &mut Client) -> i64 {
    c.call("stats", Json::object([]))
        .expect("stats")
        .get("store")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_i64)
        .expect("store counters present")
}

/// The in-process ground truth the daemon's `pdg` reply must match.
fn direct_pdg_text(workload: &str) -> String {
    let w = noelle::workloads::by_name(workload).expect("workload");
    let mut n = Noelle::new(w.build(), AliasTier::Full);
    wire::pdg_to_json(&n.module().clone(), &n.pdg()).to_string_compact()
}

/// Flip one byte deep inside every segment file: the framing survives but
/// some entry's CRC no longer matches its payload.
fn flip_segment_bytes(dir: &Path) -> usize {
    let mut flipped = 0;
    for e in fs::read_dir(dir).expect("read store dir") {
        let path = e.expect("dir entry").path();
        if path.extension().and_then(|s| s.to_str()) != Some("nsg") {
            continue;
        }
        let mut bytes = fs::read(&path).expect("read segment");
        if bytes.len() < 64 {
            continue;
        }
        let mid = bytes.len() - 32;
        bytes[mid] ^= 0xff;
        fs::write(&path, bytes).expect("write segment");
        flipped += 1;
    }
    flipped
}

#[test]
fn restarted_daemon_answers_byte_identically_from_the_store() {
    let dir = temp_store_dir("restart");

    // Generation 1: pay the cold builds, then die.
    let (pdg1, dag1) = {
        let server = start_with_store(&dir);
        let mut c = Client::connect(&server.addr.to_string()).expect("connect");
        load(&mut c, "workload:blackscholes", "s");
        let pdg = c.call("pdg", sess("s")).expect("cold pdg");
        let dag = c.call("sccdag", with_loop("s", "main")).expect("sccdag");
        assert_eq!(store_hits(&mut c), 0, "a fresh store has nothing to hit");
        server.shutdown_and_join();
        (pdg.to_string_compact(), dag.to_string_compact())
    };

    // Generation 2: a new process on the same directory must answer the
    // same bytes, and must have read them from the store.
    let server = start_with_store(&dir);
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    load(&mut c, "workload:blackscholes", "s");
    // sccdag first: served from one decoded partition, no whole-PDG build.
    let dag2 = c
        .call("sccdag", with_loop("s", "main"))
        .expect("warm sccdag");
    let pdg2 = c.call("pdg", sess("s")).expect("warm pdg");
    assert_eq!(
        dag2.to_string_compact(),
        dag1,
        "sccdag diverged across restart"
    );
    assert_eq!(
        pdg2.to_string_compact(),
        pdg1,
        "pdg diverged across restart"
    );
    assert!(
        store_hits(&mut c) > 0,
        "the warm generation must be answering from the store"
    );
    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_store_entries_are_detected_and_recomputed() {
    let dir = temp_store_dir("bitflip");
    {
        let server = start_with_store(&dir);
        let mut c = Client::connect(&server.addr.to_string()).expect("connect");
        load(&mut c, "workload:crc32", "s");
        c.call("pdg", sess("s")).expect("cold pdg");
        server.shutdown_and_join();
    }
    assert!(flip_segment_bytes(&dir) > 0, "segments were written");
    let report = Store::fsck(&dir).expect("fsck");
    assert!(
        report.corrupt() + report.undecodable > 0,
        "fsck must see the flipped entry: {report:?}"
    );

    // The daemon opens the damaged store, rejects the bad entry by CRC,
    // and recomputes: the reply matches a clean in-process build.
    let server = start_with_store(&dir);
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    load(&mut c, "workload:crc32", "s");
    let ok = c.call("pdg", sess("s")).expect("pdg survives corruption");
    assert_eq!(ok.to_string_compact(), direct_pdg_text("crc32"));
    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segments_are_detected_and_recomputed() {
    let dir = temp_store_dir("truncate");
    {
        let server = start_with_store(&dir);
        let mut c = Client::connect(&server.addr.to_string()).expect("connect");
        load(&mut c, "workload:blackscholes", "s");
        c.call("pdg", sess("s")).expect("cold pdg");
        server.shutdown_and_join();
    }
    // Cut every segment mid-entry: the tail entries are unrecoverable.
    let mut cut = 0;
    for e in fs::read_dir(&dir).expect("read store dir") {
        let path = e.expect("dir entry").path();
        if path.extension().and_then(|s| s.to_str()) != Some("nsg") {
            continue;
        }
        let bytes = fs::read(&path).expect("read segment");
        if bytes.len() > 40 {
            fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
            cut += 1;
        }
    }
    assert!(cut > 0, "segments were written");

    let server = start_with_store(&dir);
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    load(&mut c, "workload:blackscholes", "s");
    let ok = c.call("pdg", sess("s")).expect("pdg survives truncation");
    assert_eq!(ok.to_string_compact(), direct_pdg_text("blackscholes"));
    server.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fsck_flags_damage_and_compact_drops_it() {
    let dir = temp_store_dir("fsck");
    {
        let server = start_with_store(&dir);
        let mut c = Client::connect(&server.addr.to_string()).expect("connect");
        load(&mut c, "workload:swaptions", "s");
        c.call("pdg", sess("s")).expect("cold pdg");
        server.shutdown_and_join();
    }
    let clean = Store::fsck(&dir).expect("fsck");
    assert!(clean.clean(), "freshly written store is clean: {clean:?}");
    assert!(clean.live > 0);

    assert!(flip_segment_bytes(&dir) > 0);
    let damaged = Store::fsck(&dir).expect("fsck");
    assert!(!damaged.clean(), "fsck must flag the flip: {damaged:?}");

    // Compaction rewrites only entries that still pass CRC + codec checks.
    let store = Store::open(&dir).expect("open damaged store");
    store.compact().expect("compact");
    drop(store);
    let after = Store::fsck(&dir).expect("fsck after compact");
    assert_eq!(after.corrupt(), 0, "compact dropped the damage: {after:?}");
    assert_eq!(after.undecodable, 0);
    assert!(after.live > 0, "valid entries survive compaction");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn overloaded_shard_sheds_with_structured_errors() {
    // One shard, one worker, a one-deep queue: concurrent cold builds
    // cannot all be admitted.
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:pdg_stress", "hot");

    const FLOOD: usize = 12;
    let replies: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FLOOD)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    c.request("pdg", sess("hot"))
                        .expect("a reply frame arrives")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // Every request got a definite answer: the build result or a
    // structured `overloaded` error — never a hang, never a bare close.
    let mut oks = 0;
    let mut sheds = 0;
    for r in &replies {
        if r.get("ok").is_some() {
            oks += 1;
        } else {
            let code = r
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str);
            assert_eq!(code, Some("overloaded"), "unexpected reply: {r:?}");
            sheds += 1;
        }
    }
    assert!(oks > 0, "admitted requests completed");
    assert!(sheds > 0, "a one-deep queue under a 12-way flood must shed");

    // The shed counter and a bounded tail latency show up in metrics: the
    // admitted requests' p99 is build+queue time, not unbounded backlog.
    let metrics = c.call("metrics", Json::object([])).expect("metrics");
    let pdg = metrics
        .get("requests")
        .and_then(|r| r.get("pdg"))
        .expect("pdg metrics");
    assert!(pdg.get("sheds").and_then(Json::as_i64).unwrap() >= sheds as i64);
    let p99_us = pdg.get("p99_us").and_then(Json::as_i64).expect("p99");
    assert!(
        p99_us < 30_000_000,
        "admitted p99 stays bounded (got {p99_us}us)"
    );

    server.shutdown_and_join();
}
