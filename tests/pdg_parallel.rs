//! The parallel PDG pipeline's acceptance tests: the bucketed/parallel
//! build is edge-for-edge identical to the sequential all-pairs oracle on
//! every bundled workload, loop-carried refinement is iteration-aware on
//! nested loops, and the demand-driven manager drops stale graphs when the
//! module is mutated.

use noelle::analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle::core::loop_builder;
use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::builder::FunctionBuilder;
use noelle::ir::cfg::Cfg;
use noelle::ir::dom::DomTree;
use noelle::ir::inst::{BinOp, IcmpPred, Inst, InstId};
use noelle::ir::loops::{LoopForest, LoopInfo};
use noelle::ir::module::{FuncId, Module};
use noelle::ir::types::Type;
use noelle::ir::value::Value;
use noelle::pdg::depgraph::{DataDepKind, DepGraph, DepKind};
use noelle::pdg::pdg::PdgBuilder;
use noelle::workloads::{all, pdg_stress};
use std::sync::Arc;

/// Flatten a graph into a comparable (sorted) edge multiset.
fn edge_set(g: &DepGraph<InstId>) -> Vec<(InstId, InstId, String)> {
    let mut v: Vec<_> = g
        .edges()
        .iter()
        .map(|e| (e.src, e.dst, format!("{:?}", e.attrs)))
        .collect();
    v.sort();
    v
}

#[test]
fn parallel_bucketed_pdg_matches_sequential_oracle_on_every_workload() {
    let mut workloads = all();
    workloads.push(pdg_stress());
    for w in &workloads {
        let m = w.build();
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        let builder = PdgBuilder::new(&m, &stack);
        let fast = builder.program_pdg();
        let oracle = builder.program_pdg_allpairs();
        assert_eq!(
            fast.per_function.len(),
            oracle.per_function.len(),
            "{}: function count",
            w.name
        );
        for (fid, g) in &oracle.per_function {
            assert_eq!(
                edge_set(&fast.per_function[fid]),
                edge_set(g),
                "{}: function {fid:?} diverges from the all-pairs oracle",
                w.name
            );
        }
    }
}

/// `for i { for j { a[j] += 1 } }`: the store/load pair on `a[j]` is
/// iteration-local for the inner loop (j addresses a fresh element every
/// iteration) but loop-carried for the outer loop (j restarts, so iteration
/// i+1 rereads what iteration i wrote).
fn nested_update() -> (Module, FuncId) {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new(
        "k",
        vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
        Type::I64,
    );
    let entry = b.entry_block();
    let oh = b.block("outer_header");
    let ih = b.block("inner_header");
    let ib = b.block("inner_body");
    let ol = b.block("outer_latch");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(oh);
    b.switch_to(oh);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let ci = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
    b.cond_br(ci, ih, exit);
    b.switch_to(ih);
    let j = b.phi(Type::I64, vec![(oh, Value::const_i64(0))]);
    let cj = b.icmp(IcmpPred::Slt, Type::I64, j, b.arg(1));
    b.cond_br(cj, ib, ol);
    b.switch_to(ib);
    let p = b.index_ptr(Type::I64, b.arg(0), j);
    let v = b.load(Type::I64, p);
    let v2 = b.binop(BinOp::Add, Type::I64, v, Value::const_i64(1));
    b.store(Type::I64, v2, p);
    let j2 = b.binop(BinOp::Add, Type::I64, j, Value::const_i64(1));
    b.br(ih);
    b.add_incoming(j, ib, j2);
    b.switch_to(ol);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(oh);
    b.add_incoming(i, ol, i2);
    b.switch_to(exit);
    b.ret(Some(Value::const_i64(0)));
    let fid = m.add_function(b.finish());
    (m, fid)
}

fn mem_insts(m: &Module, fid: FuncId) -> (InstId, InstId) {
    let f = m.func(fid);
    let load = f
        .inst_ids()
        .into_iter()
        .find(|&id| matches!(f.inst(id), Inst::Load { .. }))
        .unwrap();
    let store = f
        .inst_ids()
        .into_iter()
        .find(|&id| matches!(f.inst(id), Inst::Store { .. }))
        .unwrap();
    (load, store)
}

#[test]
fn nested_loop_memory_refinement_is_iteration_aware() {
    let (m, fid) = nested_update();
    noelle::ir::verifier::verify_module(&m).expect("verifies");
    let (load, store) = mem_insts(&m, fid);
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let forest = LoopForest::new(f, &cfg, &dt);
    let outer = forest
        .loops()
        .iter()
        .find(|l| l.depth == 1)
        .expect("outer loop")
        .clone();
    let inner = forest
        .loops()
        .iter()
        .find(|l| l.depth == 2)
        .expect("inner loop")
        .clone();
    assert!(outer.blocks.len() > inner.blocks.len());

    let basic = BasicAlias::new(&m);
    let builder = PdgBuilder::new(&m, &basic);

    // Inner loop: a[j] is a fresh element every iteration, so the only
    // memory dependence between the load and the store is intra-iteration.
    let gi = builder.loop_pdg(fid, &inner);
    let carried_mem: Vec<_> = gi
        .edges()
        .iter()
        .filter(|e| e.attrs.memory && e.attrs.loop_carried)
        .collect();
    assert!(
        carried_mem.is_empty(),
        "inner loop must have no carried memory deps: {carried_mem:?}"
    );
    assert!(
        gi.edges().iter().any(|e| e.src == load
            && e.dst == store
            && e.attrs.memory
            && e.attrs.distance == Some(0)),
        "intra-iteration load->store dependence expected"
    );

    // Outer loop: j restarts at 0 each outer iteration, so the same pair is
    // loop-carried (RAW from the store back around to the load) and the
    // store conflicts with itself across iterations (WAW).
    let go = builder.loop_pdg(fid, &outer);
    assert!(
        go.edges().iter().any(|e| e.src == store
            && e.dst == load
            && e.attrs.memory
            && e.attrs.loop_carried
            && e.attrs.kind == DepKind::Data(DataDepKind::Raw)),
        "outer loop must carry the store->load RAW dependence"
    );
    assert!(
        go.edges().iter().any(|e| e.src == store
            && e.dst == store
            && e.attrs.memory
            && e.attrs.loop_carried
            && e.attrs.kind == DepKind::Data(DataDepKind::Waw)),
        "outer loop must carry the store's self-WAW"
    );
}

/// A single loop whose body loads and stores a scratch cell: mutating the
/// function through `LoopBuilder` must invalidate the manager's cached PDG.
fn scratch_loop() -> (Module, FuncId) {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("k", vec![("n", Type::I64)], Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    let cell = b.alloca(Type::I64);
    b.store(Type::I64, Value::const_i64(1), cell);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let v = b.load(Type::I64, cell);
    let v2 = b.binop(BinOp::Add, Type::I64, v, i);
    b.store(Type::I64, v2, cell);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.switch_to(exit);
    b.ret(Some(Value::const_i64(0)));
    let fid = m.add_function(b.finish());
    (m, fid)
}

#[test]
fn manager_drops_stale_pdg_after_loop_builder_mutation() {
    let (m, fid) = scratch_loop();
    noelle::ir::verifier::verify_module(&m).expect("verifies");
    let f = m.func(fid);
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let l: LoopInfo = LoopForest::new(f, &cfg, &dt).loops()[0].clone();
    let cond_term = f.terminator_id(l.header).expect("header terminator");
    let load = f
        .inst_ids()
        .into_iter()
        .find(|&id| matches!(f.inst(id), Inst::Load { .. }))
        .unwrap();

    let mut n = Noelle::new(m, AliasTier::Full);
    let p1 = n.pdg();
    let g1 = &p1.per_function[&fid];
    assert!(
        g1.edges()
            .iter()
            .any(|e| e.src == cond_term && e.dst == load && e.attrs.is_control()),
        "load in the conditional body is control-dependent on the header branch"
    );

    // Hoist the load out of the loop: it no longer executes under the loop
    // condition, so the control dependence above is stale.
    n.edit(|tx| loop_builder::hoist_to_preheader(tx.func_mut(fid), &l, load).expect("hoists"));
    noelle::ir::verifier::verify_module(n.module()).expect("still verifies");

    let p2 = n.pdg();
    assert!(
        !Arc::ptr_eq(&p1, &p2),
        "mutation must invalidate the cached PDG handle"
    );
    let g2 = &p2.per_function[&fid];
    assert!(
        !g2.edges()
            .iter()
            .any(|e| e.src == cond_term && e.dst == load && e.attrs.is_control()),
        "stale control dependence must be gone after re-request"
    );
    // The old handle still describes the pre-mutation program (Arc snapshot).
    assert!(g1
        .edges()
        .iter()
        .any(|e| e.src == cond_term && e.dst == load && e.attrs.is_control()));
}
