//! Cross-crate integration tests: every custom tool must preserve the
//! observable semantics of every workload it touches — the transformed
//! program computes the same result on the simulated machine.

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::runtime::{run_module, RunConfig};
use noelle::transforms as tools;

/// A representative slice of the corpus (one per kernel family) so the
/// debug-build test stays fast; the full sweep runs in the bench harness.
fn sample() -> Vec<noelle::workloads::Workload> {
    [
        "blackscholes",
        "canneal",
        "ferret",
        "fluidanimate",
        "swaptions",
        "crc32",
        "dijkstra",
        "qsort",
        "x264",
        "wrf",
    ]
    .iter()
    .map(|n| noelle::workloads::by_name(n).expect("workload exists"))
    .collect()
}

fn check_tool(name: &str, apply: impl Fn(&mut Noelle)) {
    for w in sample() {
        let m = w.build();
        let before = run_module(&m, "main", &[], &RunConfig::default())
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
        let mut noelle = Noelle::new(m, AliasTier::Full);
        apply(&mut noelle);
        let m2 = noelle.into_module();
        noelle::ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("{name} on {}: module no longer verifies: {e}", w.name));
        let after = run_module(&m2, "main", &[], &RunConfig::default())
            .unwrap_or_else(|e| panic!("{name} on {}: transformed run failed: {e}", w.name));
        assert_eq!(
            after.ret_i64(),
            before.ret_i64(),
            "{name} changed the result of {}",
            w.name
        );
    }
}

#[test]
fn licm_preserves_semantics() {
    check_tool("licm", |n| {
        tools::licm::run(n);
    });
}

#[test]
fn dead_preserves_semantics() {
    check_tool("dead", |n| {
        tools::dead::run(n, "main");
    });
}

#[test]
fn carat_preserves_semantics() {
    check_tool("carat", |n| {
        tools::carat::run(n);
    });
}

#[test]
fn coos_preserves_semantics() {
    check_tool("coos", |n| {
        tools::coos::run(n);
    });
}

#[test]
fn prvj_preserves_semantics() {
    check_tool("prvj", |n| {
        tools::prvj::run(n, &tools::prvj::PrvjOptions::default());
    });
}

#[test]
fn time_preserves_semantics() {
    check_tool("time", |n| {
        tools::time::run(n);
    });
}

#[test]
fn doall_preserves_semantics() {
    check_tool("doall", |n| {
        tools::doall::run(
            n,
            &tools::doall::DoallOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
            },
        );
    });
}

#[test]
fn helix_preserves_semantics() {
    check_tool("helix", |n| {
        tools::helix::run(
            n,
            &tools::helix::HelixOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
                max_sequential_fraction: 0.7,
            },
        );
    });
}

#[test]
fn dswp_preserves_semantics() {
    check_tool("dswp", |n| {
        tools::dswp::run(
            n,
            &tools::dswp::DswpOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 2,
                },
            },
        );
    });
}

#[test]
fn perspective_preserves_semantics() {
    check_tool("perspective", |n| {
        tools::perspective::run(n, &tools::perspective::PerspectiveOptions { n_tasks: 4 });
    });
}

#[test]
fn stacked_tools_compose() {
    // The paper's pipelines stack tools: LICM, then TIME, then DOALL, then
    // DEAD. The composition must still preserve semantics.
    for w in sample() {
        let m = w.build();
        let before = run_module(&m, "main", &[], &RunConfig::default()).expect("baseline");
        let mut n = Noelle::new(m, AliasTier::Full);
        tools::licm::run(&mut n);
        tools::time::run(&mut n);
        tools::doall::run(
            &mut n,
            &tools::doall::DoallOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
            },
        );
        tools::dead::run(&mut n, "main");
        let m2 = n.into_module();
        noelle::ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("stack on {}: {e}", w.name));
        let after = run_module(&m2, "main", &[], &RunConfig::default())
            .unwrap_or_else(|e| panic!("stack on {}: {e}", w.name));
        assert_eq!(after.ret_i64(), before.ret_i64(), "stack broke {}", w.name);
    }
}
