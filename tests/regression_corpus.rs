//! Regression corpus: micro programs "to illustrate corner cases or common
//! code patterns" (the paper's §2.4 testing infrastructure), each run before
//! and after transformation. Includes the paper's testing hook of forcing a
//! parallelizer onto one specific loop.

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::module::BlockId;
use noelle::runtime::{run_module, RunConfig};
use noelle::transforms::doall::{self, DoallOptions};
use noelle::transforms::LoopTargetOpts;

fn run_src(src: &str) -> noelle::runtime::RunResult {
    let m = noelle::ir::parser::parse_module(src).expect("parses");
    noelle::ir::verifier::verify_module(&m).expect("verifies");
    run_module(&m, "main", &[], &RunConfig::default()).expect("runs")
}

fn doall_all(src: &str) -> (noelle::ir::Module, usize) {
    let m = noelle::ir::parser::parse_module(src).expect("parses");
    let mut n = Noelle::new(m, AliasTier::Full);
    let report = doall::run(
        &mut n,
        &DoallOptions {
            target: LoopTargetOpts {
                min_hotness: 0.0,
                only: None,
                workers: 4,
            },
        },
    );
    (n.into_module(), report.count())
}

#[test]
fn zero_trip_loop_parallelizes_to_identity() {
    // The loop body never runs; the parallel version must still produce the
    // reduction's initial value.
    let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @k(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 77] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %b = call i64* @malloc(i64 8)
  %r = call i64 @k(%b, i64 0)
  ret %r
}
}
"#;
    let before = run_src(src);
    assert_eq!(before.ret_i64(), Some(77));
    let (m2, count) = doall_all(src);
    assert!(count >= 1, "zero-trip loop is still statically DOALL-able");
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(after.ret_i64(), Some(77));
}

#[test]
fn single_iteration_loop_is_exact() {
    let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @k(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %b = call i64* @malloc(i64 8)
  store i64 i64 41, %b
  %r = call i64 @k(%b, i64 1)
  ret %r
}
}
"#;
    let (m2, _) = doall_all(src);
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(after.ret_i64(), Some(41));
}

#[test]
fn trip_count_smaller_than_task_count() {
    // 3 iterations over 4 tasks: one task runs zero iterations.
    let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @k(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %b = call i64* @malloc(i64 24)
  store i64 i64 10, %b
  %p1 = gep i64, %b, i64 1
  store i64 i64 20, %p1
  %p2 = gep i64, %b, i64 2
  store i64 i64 30, %p2
  %r = call i64 @k(%b, i64 3)
  ret %r
}
}
"#;
    let (m2, count) = doall_all(src);
    assert_eq!(count, 1);
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(after.ret_i64(), Some(60));
}

#[test]
fn forcing_a_specific_loop_parallelizes_only_it() {
    // Two DOALL-able kernels; the §2.4 hook restricts the tool to one.
    let w = noelle::workloads::by_name("vips").expect("exists");
    let m = w.build();
    let baseline = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");
    let mut n = Noelle::new(m, AliasTier::Full);
    let report = doall::run(
        &mut n,
        &DoallOptions {
            target: LoopTargetOpts {
                min_hotness: 0.0,
                only: Some(("kernel0".to_string(), BlockId(1))),
                workers: 4,
            },
        },
    );
    assert_eq!(report.count(), 1, "{report:?}");
    assert_eq!(report.parallelized[0].0, "kernel0");
    let m2 = n.into_module();
    let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(after.ret_i64(), baseline.ret_i64());
}

#[test]
fn switch_terminator_executes_correctly() {
    let src = r#"
module "t" {
define i64 @classify(i64 %x) {
entry:
  switch %x, other [0: zero] [1: one]
zero:
  ret i64 100
one:
  ret i64 200
other:
  ret i64 300
}
define i64 @main() {
entry:
  %a = call i64 @classify(i64 0)
  %b = call i64 @classify(i64 1)
  %c = call i64 @classify(i64 9)
  %ab = add i64 %a, %b
  %r = add i64 %ab, %c
  ret %r
}
}
"#;
    assert_eq!(run_src(src).ret_i64(), Some(600));
}

#[test]
fn narrow_integer_widths_wrap_correctly() {
    let src = r#"
module "t" {
define i64 @main() {
entry:
  %a = add i8 i8 120, i8 10
  %w = sext i8 %a to i64
  %b = add i16 i16 32760, i16 100
  %w2 = sext i16 %b to i64
  %r = add i64 %w, %w2
  ret %r
}
}
"#;
    // 120+10 wraps to -126 in i8; 32760+100 wraps to -32676 in i16.
    assert_eq!(run_src(src).ret_i64(), Some(-126 + -32676));
}

#[test]
fn recursion_executes_and_profiles() {
    let src = r#"
module "t" {
define i64 @fib(i64 %n) {
entry:
  %c = icmp slt i64 %n, i64 2
  condbr %c, base, rec
base:
  ret %n
rec:
  %n1 = sub i64 %n, i64 1
  %n2 = sub i64 %n, i64 2
  %a = call i64 @fib(%n1)
  %b = call i64 @fib(%n2)
  %r = add i64 %a, %b
  ret %r
}
define i64 @main() {
entry:
  %r = call i64 @fib(i64 12)
  ret %r
}
}
"#;
    let m = noelle::ir::parser::parse_module(src).unwrap();
    let cfg = RunConfig {
        collect_profiles: true,
        ..RunConfig::default()
    };
    let r = run_module(&m, "main", &[], &cfg).expect("runs");
    assert_eq!(r.ret_i64(), Some(144));
    assert!(r.profiles.invocations("fib") > 100);
}

#[test]
fn multi_exit_loops_are_refused_but_run() {
    // A search loop with an early break: DOALL refuses (multiple exits);
    // the module must be left untouched and correct.
    let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @find(i64* %a, i64 %n, i64 %needle) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [next: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, notfound
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %hit = icmp eq i64 %v, %needle
  condbr %hit, found, next
next:
  %i2 = add i64 %i, i64 1
  br header
found:
  ret %i
notfound:
  ret i64 -1
}
define i64 @main() {
entry:
  %b = call i64* @malloc(i64 64)
  br fill_h
fill_h:
  %i = phi i64 [entry: i64 0] [fill_b: %i2]
  %c = icmp slt i64 %i, i64 8
  condbr %c, fill_b, go
fill_b:
  %p = gep i64, %b, %i
  %x = mul i64 %i, i64 3
  store i64 %x, %p
  %i2 = add i64 %i, i64 1
  br fill_h
go:
  %r = call i64 @find(%b, i64 8, i64 15)
  ret %r
}
}
"#;
    let before = run_src(src);
    assert_eq!(before.ret_i64(), Some(5)); // 5*3 == 15
    let m = noelle::ir::parser::parse_module(src).unwrap();
    let mut n = Noelle::new(m, AliasTier::Full);
    let report = doall::run(
        &mut n,
        &DoallOptions {
            target: LoopTargetOpts {
                min_hotness: 0.0,
                only: Some(("find".to_string(), BlockId(1))),
                workers: 4,
            },
        },
    );
    assert_eq!(report.count(), 0, "{report:?}");
    let after = run_module(&n.into_module(), "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(after.ret_i64(), Some(5));
}

#[test]
fn fuzz_corpus_repros_report_runtime_errors_instead_of_aborting() {
    // Every minimized repro persisted by `noelle-fuzz` under
    // tests/corpus/fuzz/ must parse, verify, and either run cleanly or
    // surface a *reported* RtError. The checked-in type-confusion repro is
    // the regression test for the former process-aborting `as_i`/`as_f`
    // panics in the interpreter's value accessors.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("fuzz");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("fuzz corpus dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "nir"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "fuzz corpus should be seeded");
    let mut confusions = 0;
    for p in paths {
        let src = std::fs::read_to_string(&p).expect("readable");
        let m = noelle::ir::parser::parse_module(&src)
            .unwrap_or_else(|e| panic!("{}: does not parse: {e}", p.display()));
        noelle::ir::verifier::verify_module(&m)
            .unwrap_or_else(|e| panic!("{}: does not verify: {e:?}", p.display()));
        // A panic here (rather than Err) is exactly the regression this
        // corpus exists to catch.
        if let Err(e) = run_module(&m, "main", &[], &RunConfig::default()) {
            if matches!(e, noelle::runtime::RtError::TypeConfusion(_)) {
                confusions += 1;
            }
        }
    }
    assert!(
        confusions >= 1,
        "the type-confusion repro should exercise the typed-error path"
    );
}

#[test]
fn float_kernels_preserve_bitwise_results_under_doall() {
    // FP reductions reassociate; with identical per-task math and a
    // deterministic combine order, repeated runs must agree with each other.
    let w = noelle::workloads::by_name("basicmath").expect("exists");
    let (m1, c1) = {
        let mut n = Noelle::new(w.build(), AliasTier::Full);
        let r = doall::run(
            &mut n,
            &DoallOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
            },
        );
        (n.into_module(), r.count())
    };
    assert!(c1 >= 1);
    let a = run_module(&m1, "main", &[], &RunConfig::default()).expect("runs");
    let b = run_module(&m1, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(a.ret_i64(), b.ret_i64());
    assert_eq!(a.cycles, b.cycles);
}
