//! End-to-end protocol tests for the `noelle-server` daemon: concurrent
//! queries coalesce into one build, replies match a direct in-process
//! build byte-for-byte, deadlines produce timeout errors instead of hung
//! connections, shutdown drains in-flight work, and `--stdio` mode speaks
//! newline-delimited JSON.

use noelle::core::json::Json;
use noelle::core::noelle::{AliasTier, Noelle};
use noelle::core::wire;
use noelle_server::{Client, RunningServer, Server, ServerConfig};
use std::io::Cursor;

fn start_server(workers: usize) -> RunningServer {
    Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port")
}

/// A server wired to the real `noelle-tools` registry, as `noelle-served`
/// builds it.
fn start_server_with_tools(workers: usize) -> RunningServer {
    let runner: noelle_server::ToolRunner = std::sync::Arc::new(|n, params| {
        noelle_tools::registry::ToolInvocation::from_json(params).and_then(|inv| inv.run(n))
    });
    Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServerConfig::default()
    })
    .with_tool_runner(runner)
    .start()
    .expect("bind ephemeral port")
}

fn load(client: &mut Client, path: &str, session: &str) {
    let ok = client
        .call(
            "load",
            Json::object([
                ("path".to_string(), Json::Str(path.into())),
                ("session".to_string(), Json::Str(session.into())),
            ]),
        )
        .expect("load succeeds");
    assert_eq!(ok.get("session").and_then(Json::as_str), Some(session));
}

#[test]
fn concurrent_pdg_queries_coalesce_and_match_in_process_build() {
    let server = start_server(4);
    let addr = server.addr.to_string();

    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:blackscholes", "bs");

    // Fire N identical queries from concurrent clients.
    const N: usize = 4;
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let ok = c
                        .call(
                            "pdg",
                            Json::object([("session".to_string(), Json::Str("bs".into()))]),
                        )
                        .expect("pdg succeeds");
                    ok.to_string_compact()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    // (a) All replies identical to each other and to a direct build.
    let w = noelle::workloads::by_name("blackscholes").expect("workload");
    let mut direct = Noelle::new(w.build(), AliasTier::Full);
    let expected = wire::pdg_to_json(&direct.module().clone(), &direct.pdg()).to_string_compact();
    for r in &replies {
        assert_eq!(*r, expected, "daemon reply diverges from in-process build");
    }

    // (b) The session's manager built the PDG exactly once: the N racing
    // requests coalesced behind the per-session build lock.
    let metrics = c.call("metrics", Json::object([])).expect("metrics");
    let builds = metrics
        .get("sessions")
        .and_then(|s| s.get("bs"))
        .and_then(|s| s.get("builds"))
        .and_then(|b| b.get("PDG"))
        .and_then(|p| p.get("builds"))
        .and_then(Json::as_i64);
    assert_eq!(builds, Some(1), "exactly one PDG build for {N} queries");

    // Per-method metrics saw all N queries.
    let pdg_count = metrics
        .get("requests")
        .and_then(|r| r.get("pdg"))
        .and_then(|p| p.get("count"))
        .and_then(Json::as_i64);
    assert_eq!(pdg_count, Some(N as i64));

    let reply = c.request("shutdown", Json::object([])).expect("shutdown");
    assert!(reply.get("ok").is_some());
    server.join();
}

#[test]
fn deadline_times_out_then_warm_cache_answers() {
    let server = start_server(2);
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:pdg_stress", "hot");

    // A zero deadline cannot be met: the reply must be a timeout error,
    // not a hung connection.
    let reply = c
        .request_with_deadline(
            "pdg",
            Json::object([("session".to_string(), Json::Str("hot".into()))]),
            Some(0),
        )
        .expect("a reply frame arrives");
    let code = reply
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str);
    assert_eq!(code, Some("timeout"));

    // The abandoned build keeps running and warms the cache: a patient
    // retry succeeds and the manager reports a single build.
    let ok = c
        .call(
            "pdg",
            Json::object([("session".to_string(), Json::Str("hot".into()))]),
        )
        .expect("retry succeeds");
    assert!(ok.get("num_edges").and_then(Json::as_i64).unwrap() > 0);

    let metrics = c.call("metrics", Json::object([])).expect("metrics");
    let timeouts = metrics
        .get("requests")
        .and_then(|r| r.get("pdg"))
        .and_then(|p| p.get("timeouts"))
        .and_then(Json::as_i64);
    assert_eq!(timeouts, Some(1));
    let builds = metrics
        .get("sessions")
        .and_then(|s| s.get("hot"))
        .and_then(|s| s.get("builds"))
        .and_then(|b| b.get("PDG"))
        .and_then(|p| p.get("builds"))
        .and_then(Json::as_i64);
    assert_eq!(builds, Some(1), "timed-out build still completed once");

    server.shutdown_and_join();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    // One worker: the shutdown request queues *behind* the in-flight pdg
    // build, so a full drain must answer both.
    let server = start_server(1);
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:pdg_stress", "s");

    let pdg_thread = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.call(
                "pdg",
                Json::object([("session".to_string(), Json::Str("s".into()))]),
            )
        })
    };
    // Give the pdg request a head start into the single worker.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let reply = c
        .request("shutdown", Json::object([]))
        .expect("shutdown reply");
    assert!(reply.get("ok").is_some());

    let pdg = pdg_thread
        .join()
        .expect("join")
        .expect("pdg drained, not dropped");
    assert!(pdg.get("num_edges").and_then(Json::as_i64).unwrap() > 0);
    server.join();

    // The daemon is gone: new connections are refused.
    assert!(Client::connect(&addr).is_err());
}

#[test]
fn sessions_are_isolated_and_queries_cover_every_method() {
    let server = start_server(4);
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:blackscholes", "a");
    load(&mut c, "workload:crc32", "b");

    let sess = |name: &str| Json::object([("session".to_string(), Json::Str(name.into()))]);

    let loops = c.call("loops", sess("a")).expect("loops");
    let main_loops = loops.get("main").and_then(Json::as_array).expect("main");
    assert!(!main_loops.is_empty());

    let with_loop = |name: &str, func: &str| {
        Json::object([
            ("session".to_string(), Json::Str(name.into())),
            ("func".to_string(), Json::Str(func.into())),
            ("loop".to_string(), Json::Int(0)),
        ])
    };
    let dag = c.call("sccdag", with_loop("a", "main")).expect("sccdag");
    assert!(dag.get("nodes").and_then(Json::as_array).is_some());
    let ivs = c.call("induction", with_loop("a", "main")).expect("ivs");
    assert!(ivs.as_array().is_some());
    let inv = c
        .call("invariants", with_loop("a", "main"))
        .expect("invariants");
    assert!(inv.as_array().is_some());
    let cg = c.call("callgraph", sess("a")).expect("callgraph");
    assert!(!cg.get("edges").and_then(Json::as_array).unwrap().is_empty());

    let stats = c.call("stats", Json::object([])).expect("stats");
    assert_eq!(
        stats
            .get("table")
            .and_then(|t| t.get("count"))
            .and_then(Json::as_i64),
        Some(2)
    );

    // Unknown method and missing session produce typed errors.
    let err = c.request("nope", Json::object([])).expect("reply");
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_method")
    );
    let err = c.request("pdg", sess("ghost")).expect("reply");
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("no_session")
    );

    server.shutdown_and_join();
}

#[test]
fn stdio_mode_answers_line_delimited_requests() {
    let input = concat!(
        r#"{"id":1,"method":"load","params":{"path":"workload:blackscholes","session":"s"}}"#,
        "\n",
        r#"{"id":2,"method":"stats","params":{}}"#,
        "\n",
        "not json\n",
        r#"{"id":3,"method":"shutdown","params":{}}"#,
        "\n",
    );
    let mut out = Vec::new();
    Server::new(ServerConfig::default())
        .serve_stdio(&mut Cursor::new(input), &mut out)
        .expect("stdio serve");
    let lines: Vec<Json> = String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(|l| Json::parse(l).expect("each reply line is one JSON value"))
        .collect();
    assert_eq!(lines.len(), 4);
    assert_eq!(lines[0].get("id").and_then(Json::as_i64), Some(1));
    assert!(lines[0].get("ok").is_some());
    assert!(lines[1].get("ok").is_some());
    assert!(
        lines[2].get("error").is_some(),
        "bad line gets an error reply"
    );
    assert!(lines[3].get("ok").is_some(), "shutdown acknowledged");
}

#[test]
fn protocol_version_mismatch_is_a_typed_error() {
    use noelle_server::protocol::PROTOCOL_VERSION;
    // A client speaking a wrong protocol version gets a structured
    // `version_mismatch` error; a version-1 client (no "v" field) and a
    // current client are both served. Every reply carries the daemon's
    // own version.
    let input = concat!(
        r#"{"id":1,"method":"ping","params":{},"v":99}"#,
        "\n",
        r#"{"id":2,"method":"ping","params":{}}"#,
        "\n",
        r#"{"id":3,"method":"ping","params":{},"v":2}"#,
        "\n",
        r#"{"id":4,"method":"shutdown","params":{}}"#,
        "\n",
    );
    let mut out = Vec::new();
    Server::new(ServerConfig::default())
        .serve_stdio(&mut Cursor::new(input), &mut out)
        .expect("stdio serve");
    let lines: Vec<Json> = String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(|l| Json::parse(l).expect("reply line"))
        .collect();
    assert_eq!(lines.len(), 4);
    assert_eq!(
        lines[0]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("version_mismatch"),
        "wrong version is rejected with a typed error: {:?}",
        lines[0]
    );
    assert!(
        lines[0]
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("v99")),
        "the error names the offending version"
    );
    assert!(lines[1].get("ok").is_some(), "unversioned (v1) accepted");
    assert!(lines[2].get("ok").is_some(), "current version accepted");
    for l in &lines {
        assert_eq!(
            l.get("v").and_then(Json::as_i64),
            Some(PROTOCOL_VERSION),
            "every reply carries the daemon's protocol version"
        );
    }
}

#[test]
fn run_tool_reuses_function_cache_across_queries() {
    let server = start_server_with_tools(2);
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");
    load(&mut c, "workload:blackscholes", "warm");

    let sess = Json::object([("session".to_string(), Json::Str("warm".into()))]);
    // Build the PDG, run a transform (which edits through `Noelle::edit`),
    // then query the PDG again: the session's warm manager must repair
    // incrementally, reusing every untouched function's partition.
    let ok = c.call("pdg", sess.clone()).expect("first pdg");
    assert!(ok.get("num_edges").and_then(Json::as_i64).unwrap() > 0);
    let ran = c
        .call(
            "run-tool",
            Json::object([
                ("session".to_string(), Json::Str("warm".into())),
                ("tool".to_string(), Json::Str("licm".into())),
            ]),
        )
        .expect("run-tool licm");
    assert_eq!(ran.get("tool").and_then(Json::as_str), Some("licm"));
    let ok = c.call("pdg", sess).expect("second pdg");
    assert!(ok.get("num_edges").and_then(Json::as_i64).unwrap() > 0);

    let metrics = c.call("metrics", Json::object([])).expect("metrics");
    let cache = metrics
        .get("sessions")
        .and_then(|s| s.get("warm"))
        .and_then(|s| s.get("func_cache"))
        .expect("per-session func_cache counters");
    let hits = cache.get("pdg_hits").and_then(Json::as_i64).unwrap();
    let invalidations = cache.get("invalidations").and_then(Json::as_i64).unwrap();
    assert!(
        hits > 0,
        "run-tool then pdg must reuse untouched partitions: {metrics:?}"
    );
    assert!(
        invalidations > 0,
        "the tool's edit must have invalidated its touched functions"
    );

    server.shutdown_and_join();
}

#[test]
fn lint_method_reports_races_from_a_cached_session() {
    let server = start_server(2);
    let addr = server.addr.to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let racy = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("lint")
        .join("racy_task.nir");
    load(&mut c, racy.to_str().expect("utf8 path"), "racy");

    let report = c
        .call(
            "lint",
            Json::object([
                ("session".to_string(), Json::Str("racy".into())),
                ("check".to_string(), Json::Str("races".into())),
            ]),
        )
        .expect("lint succeeds");
    let errors = report
        .get("summary")
        .and_then(|s| s.get("errors"))
        .and_then(Json::as_i64);
    assert_eq!(
        errors,
        Some(1),
        "racy corpus has exactly one race: {report:?}"
    );
    let findings = report
        .get("findings")
        .and_then(Json::as_array)
        .expect("findings");
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("code").and_then(Json::as_str),
        Some("NL0001")
    );

    // Unknown check names come back as a typed bad_request, not a hang.
    let err = c
        .request(
            "lint",
            Json::object([
                ("session".to_string(), Json::Str("racy".into())),
                ("check".to_string(), Json::Str("bogus".into())),
            ]),
        )
        .expect("reply");
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    server.shutdown_and_join();
}
