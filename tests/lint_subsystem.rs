//! End-to-end tests of the `noelle-lint` subsystem: the PDG-based race
//! detector must stay silent on the output of the repo's own parallelizers
//! (DOALL strides, HELIX sequential segments, DSWP queues are all mediated
//! communication), must flag the checked-in racy repro exactly once, and the
//! report must be byte-identical across runs. The satellite passes
//! (dead stores, env slots, hoistable calls, hygiene) each fire on a
//! purpose-built module.

use std::path::PathBuf;

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::parser::parse_module;
use noelle::ir::printer::print_module;
use noelle_lint::{
    check_usage, detect_races, has_errors, passes, render_json, render_text, run_checks, Severity,
};
use noelle_tools::registry::{self, ToolOptions};

fn racy_repro_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("lint")
        .join("racy_task.nir")
}

fn noelle_for(src: &str) -> Noelle {
    let m = parse_module(src).expect("test module parses");
    Noelle::new(m, AliasTier::Full)
}

fn run_registered_tool(n: &mut Noelle, name: &str) -> Result<String, String> {
    let tool = registry::tools()
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("tool {name} registered"));
    (tool.run)(n, &ToolOptions { cores: 4 })
}

// ---------------------------------------------------------------------------
// The racy repro: exactly one NL0001, with both locations reported.
// ---------------------------------------------------------------------------

#[test]
fn racy_repro_reports_exactly_one_race() {
    let src = std::fs::read_to_string(racy_repro_path()).expect("racy corpus exists");
    let mut n = noelle_for(&src);
    let findings = run_checks(&mut n, "races").expect("known check");
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one race finding, got:\n{}",
        render_text(&findings)
    );
    let f = &findings[0];
    assert_eq!(f.code, "NL0001");
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.loc.function, "worker");
    // The repro races a store against itself across task instances, so the
    // message names the instances; a two-instruction pair would instead
    // carry the second location in `related`.
    assert!(
        !f.related.is_empty() || f.message.contains("task instances"),
        "a race must identify its second participant: {}",
        f.message
    );
    assert!(has_errors(&findings), "NL0001 is error severity");
}

// ---------------------------------------------------------------------------
// Clean-parallelization sweep: the race detector must prove the repo's own
// tool output mediated — zero findings across workloads and parallelizers.
// ---------------------------------------------------------------------------

#[test]
fn parallelizer_output_is_race_free_across_workloads() {
    let subset = [
        "blackscholes",
        "dijkstra",
        "crc32",
        "qsort",
        "fft",
        "swaptions",
        "mcf",
        "xz",
    ];
    for name in subset {
        let w = noelle::workloads::by_name(name).expect("known workload");
        for tool in ["doall", "helix", "dswp"] {
            let mut n = Noelle::new(w.build(), AliasTier::Full);
            if run_registered_tool(&mut n, tool).is_err() {
                continue; // tool declined (no suitable loop) — nothing to lint
            }
            let races = detect_races(&mut n);
            assert!(
                races.is_empty(),
                "{tool} on {name} produced race findings:\n{}",
                render_text(&races)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// HELIX sequential segments and DSWP queues are recognized as mediation.
// ---------------------------------------------------------------------------

/// A loop whose body is heavy enough for HELIX to parallelize but whose
/// accumulator update forces a sequential segment (`noelle.ss.*`).
const HELIX_DEMO: &str = r#"
module "helixdemo" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64* %acc, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %t1 = mul i64 %v, %v
  %u0 = div i64 %t1, i64 7
  %w0 = add i64 %u0, %v
  %u1 = div i64 %w0, i64 3
  %w1 = add i64 %u1, %v
  %u2 = div i64 %w1, i64 5
  %w2 = add i64 %u2, %v
  %u3 = div i64 %w2, i64 9
  %w3 = add i64 %u3, %v
  %u4 = div i64 %w3, i64 11
  %w4 = add i64 %u4, %v
  %u5 = div i64 %w4, i64 13
  %w5 = add i64 %u5, %v
  %u6 = div i64 %w5, i64 2
  %w6 = add i64 %u6, %v
  %u7 = div i64 %w6, i64 17
  %w7 = add i64 %u7, %v
  %u8 = div i64 %w7, i64 19
  %w8 = add i64 %u8, %v
  %s0 = load i64, %acc
  %s1 = add i64 %s0, %w8
  store i64 %s1, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %acc
  ret %r
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 4096)
  %acc = alloca i64, i64 1
  store i64 i64 0, %acc
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  %x = mul i64 %i, i64 37
  %y = and i64 %x, i64 255
  store i64 %y, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 256
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, %acc, i64 256)
  ret %s
}
}
"#;

#[test]
fn helix_sequential_segments_are_recognized_as_mediation() {
    let mut n = noelle_for(HELIX_DEMO);
    run_registered_tool(&mut n, "helix").expect("helix parallelizes the demo");
    let races = detect_races(&mut n);
    let printed = print_module(n.module());
    assert!(
        printed.contains("noelle.ss.wait") && printed.contains("noelle.task.dispatch"),
        "demo should exercise sequential segments:\n{printed}"
    );
    assert!(
        races.is_empty(),
        "segment-protected accesses must not be flagged:\n{}",
        render_text(&races)
    );
}

/// A loop with a long data-chain plus a cheap accumulator — the shape DSWP
/// splits into queue-connected pipeline stages.
const DSWP_DEMO: &str = r#"
module "dswpdemo" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %t1 = mul i64 %v, %v
  %u0 = div i64 %t1, i64 7
  %w0 = add i64 %u0, %v
  %u1 = div i64 %w0, i64 3
  %w1 = add i64 %u1, %v
  %u2 = div i64 %w1, i64 5
  %w2 = add i64 %u2, %v
  %u3 = div i64 %w2, i64 9
  %w3 = add i64 %u3, %v
  %u4 = div i64 %w3, i64 11
  %w4 = add i64 %u4, %v
  %u5 = div i64 %w4, i64 13
  %w5 = add i64 %u5, %v
  %u6 = div i64 %w5, i64 2
  %w6 = add i64 %u6, %v
  %u7 = div i64 %w6, i64 17
  %w7 = add i64 %u7, %v
  %u8 = div i64 %w7, i64 19
  %w8 = add i64 %u8, %v
  %u9 = div i64 %w8, i64 23
  %w9 = add i64 %u9, %v
  %u10 = div i64 %w9, i64 7
  %w10 = add i64 %u10, %v
  %u11 = div i64 %w10, i64 3
  %w11 = add i64 %u11, %v
  %u12 = div i64 %w11, i64 5
  %w12 = add i64 %u12, %v
  %u13 = div i64 %w12, i64 9
  %w13 = add i64 %u13, %v
  %u14 = div i64 %w13, i64 11
  %w14 = add i64 %u14, %v
  %u15 = div i64 %w14, i64 13
  %w15 = add i64 %u15, %v
  %u16 = div i64 %w15, i64 2
  %w16 = add i64 %u16, %v
  %u17 = div i64 %w16, i64 17
  %w17 = add i64 %u17, %v
  %u18 = div i64 %w17, i64 19
  %w18 = add i64 %u18, %v
  %u19 = div i64 %w18, i64 23
  %w19 = add i64 %u19, %v
  %s2 = add i64 %s, %w19
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 4096)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  %x = mul i64 %i, i64 37
  %y = and i64 %x, i64 255
  store i64 %y, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 512
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, i64 512)
  ret %s
}
}
"#;

#[test]
fn dswp_queue_traffic_is_recognized_as_mediation() {
    let mut n = noelle_for(DSWP_DEMO);
    run_registered_tool(&mut n, "dswp").expect("dswp parallelizes the demo");
    let races = detect_races(&mut n);
    let printed = print_module(n.module());
    assert!(
        printed.contains("noelle.queue.push") && printed.contains("noelle.queue.pop"),
        "demo should exercise inter-stage queues:\n{printed}"
    );
    assert!(
        races.is_empty(),
        "queue-connected stages must not be flagged:\n{}",
        render_text(&races)
    );
}

// ---------------------------------------------------------------------------
// Determinism: the JSON report is byte-identical across independent runs.
// ---------------------------------------------------------------------------

#[test]
fn json_report_is_byte_identical_across_runs() {
    let src = std::fs::read_to_string(racy_repro_path()).expect("racy corpus exists");
    let render = || {
        let mut n = noelle_for(&src);
        let findings = run_checks(&mut n, "all").expect("known check");
        render_json(&findings).to_string_compact()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "lint JSON must be deterministic");
    assert!(a.contains("\"NL0001\""), "report carries the race code");
    assert!(a.contains("\"summary\""), "report carries the summary");
}

// ---------------------------------------------------------------------------
// Satellite passes each fire on a purpose-built module.
// ---------------------------------------------------------------------------

/// First store to `%a` is dead (overwritten before any load); `%dead` is an
/// unused pure instruction; `@g` has an unreachable block.
const PASSES_DEMO: &str = r#"
module "passesdemo" {
define i64 @f() {
entry:
  %a = alloca i64, i64 1
  store i64 i64 1, %a
  store i64 i64 2, %a
  %v = load i64, %a
  %dead = mul i64 %v, i64 3
  ret %v
}
define i64 @g() {
entry:
  ret i64 0
orphan:
  ret i64 1
}
}
"#;

#[test]
fn dead_store_and_hygiene_passes_fire() {
    let mut n = noelle_for(PASSES_DEMO);
    let dead = run_checks(&mut n, "dead-stores").expect("known check");
    assert_eq!(
        dead.len(),
        1,
        "exactly the overwritten store:\n{}",
        render_text(&dead)
    );
    assert_eq!(dead[0].code, "NL0002");
    assert_eq!(dead[0].loc.function, "f");

    let hyg = run_checks(&mut n, "hygiene").expect("known check");
    let codes: Vec<&str> = hyg.iter().map(|f| f.code).collect();
    assert!(
        codes.contains(&"NL0005"),
        "unreachable block flagged: {codes:?}"
    );
    assert!(
        codes.contains(&"NL0006"),
        "unused pure inst flagged: {codes:?}"
    );
    assert!(!has_errors(&hyg), "hygiene findings are not errors");
}

/// The dispatcher initializes env slot 3 but no task member ever reads it.
const ENV_SLOT_DEMO: &str = r#"
module "envslots" {
define void @w(i64* %env, i64 %task_id, i64 %n_tasks) {
entry:
  %v0 = gep i64, %env, i64 0
  %v1 = load i64, %v0
  ret void
}
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %a0, i64* %a1, i64 %a2)
define i64 @main() {
entry:
  %env = alloca i64, i64 8
  %p0 = gep i64, %env, i64 0
  store i64 i64 1, %p0
  %p3 = gep i64, %env, i64 3
  store i64 i64 7, %p3
  call void @noelle.task.dispatch(@w, %env, i64 2)
  ret i64 0
}
}
"#;

#[test]
fn unused_env_slot_is_flagged_and_read_only_task_is_race_free() {
    let mut n = noelle_for(ENV_SLOT_DEMO);
    let env = run_checks(&mut n, "env-slots").expect("known check");
    assert_eq!(
        env.len(),
        1,
        "exactly the slot-3 store:\n{}",
        render_text(&env)
    );
    assert_eq!(env[0].code, "NL0003");
    assert_eq!(env[0].loc.function, "main");
    assert!(
        detect_races(&mut n).is_empty(),
        "read-only task has no races"
    );
}

/// A pure defined callee invoked with loop-invariant arguments inside a loop.
const HOIST_DEMO: &str = r#"
module "hoistdemo" {
define i64 @h(i64 %x) {
entry:
  %v0 = mul i64 %x, %x
  ret %v0
}
define i64 @f(i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %v = call i64 @h(i64 5)
  %acc = add i64 %i, %v
  %i2 = add i64 %acc, i64 1
  br header
exit:
  ret i64 0
}
}
"#;

#[test]
fn loop_invariant_pure_call_gets_a_hoist_hint() {
    let mut n = noelle_for(HOIST_DEMO);
    let hints = run_checks(&mut n, "hoistable-calls").expect("known check");
    assert_eq!(
        hints.len(),
        1,
        "exactly the call to @h:\n{}",
        render_text(&hints)
    );
    assert_eq!(hints[0].code, "NL0004");
    assert_eq!(hints[0].severity, Severity::Hint);
    assert_eq!(hints[0].loc.function, "f");
}

// ---------------------------------------------------------------------------
// Framework plumbing: the registry is coherent and bad names are rejected.
// ---------------------------------------------------------------------------

#[test]
fn check_registry_is_coherent_and_rejects_unknown_names() {
    let ps = passes();
    assert!(ps.len() >= 5, "race detector plus four satellite passes");
    let mut codes: Vec<&str> = ps.iter().map(|p| p.code()).collect();
    codes.sort_unstable();
    codes.dedup();
    assert_eq!(codes.len(), ps.len(), "lint codes must be unique");
    for p in &ps {
        assert!(
            check_usage().contains(p.name()),
            "usage string must list {}",
            p.name()
        );
    }

    let mut n = noelle_for(PASSES_DEMO);
    let err = run_checks(&mut n, "no-such-check").expect_err("unknown check rejected");
    assert!(
        err.contains("no-such-check"),
        "error names the bad check: {err}"
    );
}
