//! Incremental invalidation equivalence: transforms edit the module
//! through `Noelle::edit`, so the warm manager repairs only the damaged
//! per-function PDG partitions. These tests pin the engine's contract:
//!
//! 1. For every transform and every bundled workload, the incrementally
//!    repaired PDG, loop forest, and per-loop aSCCDAG must be
//!    **byte-identical on the wire** to a from-scratch `Noelle::new`
//!    build of the same (transformed) module.
//! 2. Editing one function must **not rebuild** the others: untouched
//!    partitions are reused by `Arc` handle, and the per-function cache
//!    counters record hits, not misses.

use std::sync::Arc;

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::core::wire;
use noelle::transforms as tools;
use noelle::workloads::{all, pdg_stress, Workload};

fn workloads() -> Vec<Workload> {
    let mut ws = all();
    ws.push(pdg_stress());
    ws
}

/// One deterministic string covering the PDG, every function's loop
/// forest, and every loop's aSCCDAG — the abstractions the server serves.
fn encode_all(n: &mut Noelle) -> String {
    let pdg = n.pdg();
    let mut s = wire::pdg_to_json(n.module(), &pdg).to_string_compact();
    let fids: Vec<_> = n
        .module()
        .func_ids()
        .filter(|fid| !n.module().func(*fid).is_declaration())
        .collect();
    for fid in fids {
        let name = n.module().func(fid).name.clone();
        for l in n.loops_of(fid) {
            s.push('\n');
            s.push_str(&name);
            s.push(' ');
            s.push_str(&wire::loop_to_json(&l).to_string_compact());
            let la = n.loop_abstraction(fid, l);
            s.push(' ');
            s.push_str(&wire::sccdag_to_json(&la.sccdag).to_string_compact());
        }
    }
    s
}

/// Warm the manager, apply the transform (which edits through
/// `Noelle::edit`), and demand the repaired abstractions match a
/// from-scratch build byte for byte.
fn check_incremental_identity(name: &str, apply: impl Fn(&mut Noelle)) {
    for w in workloads() {
        let mut warm = Noelle::new(w.build(), AliasTier::Full);
        let _ = warm.pdg(); // build once, so the edit repairs instead of rebuilding
        apply(&mut warm);
        let incremental = encode_all(&mut warm);
        let mut fresh = Noelle::new(warm.module().clone(), AliasTier::Full);
        let scratch = encode_all(&mut fresh);
        assert_eq!(
            incremental, scratch,
            "{name} on {}: incrementally repaired abstractions differ from a from-scratch build",
            w.name
        );
    }
}

#[test]
fn licm_repairs_match_fresh_build() {
    check_incremental_identity("licm", |n| {
        tools::licm::run(n);
    });
}

#[test]
fn dead_repairs_match_fresh_build() {
    check_incremental_identity("dead", |n| {
        tools::dead::run(n, "main");
    });
}

#[test]
fn doall_repairs_match_fresh_build() {
    check_incremental_identity("doall", |n| {
        tools::doall::run(
            n,
            &tools::doall::DoallOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
            },
        );
    });
}

#[test]
fn dswp_repairs_match_fresh_build() {
    check_incremental_identity("dswp", |n| {
        tools::dswp::run(
            n,
            &tools::dswp::DswpOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 2,
                },
            },
        );
    });
}

#[test]
fn helix_repairs_match_fresh_build() {
    check_incremental_identity("helix", |n| {
        tools::helix::run(
            n,
            &tools::helix::HelixOptions {
                target: tools::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: 4,
                },
                max_sequential_fraction: 0.7,
            },
        );
    });
}

#[test]
fn untouched_functions_are_not_rebuilt() {
    // Edit exactly one function of the many-function stress workload and
    // prove the rest were reused: their partitions are the same `Arc`
    // allocations, and the counters record one miss (the edited function)
    // against a pile of hits.
    let w = pdg_stress();
    let mut n = Noelle::new(w.build(), AliasTier::Full);
    let p1 = n.pdg();
    let total_funcs = p1.per_function.len();
    assert!(
        total_funcs > 4,
        "stress workload should have many functions"
    );

    let before = n.func_cache_counters();
    let fid = n
        .module()
        .func_id_by_name("main")
        .expect("stress workload has main");
    n.edit(|tx| {
        tx.touch(fid);
    });
    let p2 = n.pdg();
    let after = n.func_cache_counters();

    // `main` calls every kernel, so its callees' summaries are unchanged
    // and only `main` itself is damaged.
    let mut reused = 0usize;
    for (other, g) in &p1.per_function {
        if *other == fid {
            continue;
        }
        assert!(
            Arc::ptr_eq(g, &p2.per_function[other]),
            "untouched function {other:?} was rebuilt"
        );
        reused += 1;
    }
    assert_eq!(reused, total_funcs - 1);
    assert_eq!(
        after.pdg_misses - before.pdg_misses,
        1,
        "exactly the edited function should be re-analyzed"
    );
    assert_eq!(
        after.pdg_hits - before.pdg_hits,
        (total_funcs - 1) as u64,
        "every untouched function should be a cache hit"
    );
    assert!(after.invalidations > before.invalidations);
}
