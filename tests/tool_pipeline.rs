//! End-to-end test of the paper's Figure 1 compilation flow, driven through
//! the same library entry points the `noelle-*` binaries use:
//!
//! source modules → noelle-whole-IR → noelle-prof-coverage →
//! noelle-meta-prof-embed → noelle-meta-pdg-embed → noelle-load(DOALL) →
//! noelle-meta-clean → noelle-bin.

use noelle::core::noelle::{AliasTier, Noelle};
use noelle::core::profiler::Profiles;
use noelle::runtime::{run_module, RunConfig};

const UNIT_A: &str = r#"
module "unit_a" {
declare i64 @hot(i64* %a, i64 %n)
declare i64* @malloc(i64 %n)
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 4096)
  br fill_h
fill_h:
  %i = phi i64 [entry: i64 0] [fill_b: %i2]
  %c = icmp slt i64 %i, i64 512
  condbr %c, fill_b, done
fill_b:
  %p = gep i64, %buf, %i
  %x = and i64 %i, i64 63
  store i64 %x, %p
  %i2 = add i64 %i, i64 1
  br fill_h
done:
  %r = call i64 @hot(%buf, i64 512)
  ret %r
}
}
"#;

const UNIT_B: &str = r#"
module "unit_b" {
define i64 @hot(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %sq = mul i64 %v, %v
  %s2 = add i64 %s, %sq
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;

#[test]
fn figure1_flow_end_to_end() {
    // 1. noelle-whole-IR: link the translation units.
    let a = noelle::ir::parser::parse_module(UNIT_A).expect("unit A parses");
    let b = noelle::ir::parser::parse_module(UNIT_B).expect("unit B parses");
    let mut module = noelle_tools::link_modules(vec![a, b]).expect("links");
    noelle::ir::verifier::verify_module(&module).expect("linked module verifies");

    // 2. noelle-prof-coverage with a training input.
    let prof_cfg = RunConfig {
        collect_profiles: true,
        ..RunConfig::default()
    };
    let baseline = run_module(&module, "main", &[], &prof_cfg).expect("profiling run");
    assert!(baseline.profiles.invocations("hot") == 1);

    // 3. noelle-meta-prof-embed (+ survive a print/parse round trip, as the
    //    on-disk flow does).
    baseline.profiles.embed(&mut module);
    let text = noelle::ir::printer::print_module(&module);
    let mut module = noelle::ir::parser::parse_module(&text).expect("reparses");
    assert_eq!(
        Profiles::from_module(&module).expect("profiles kept"),
        baseline.profiles
    );

    // 4. noelle-meta-pdg-embed: deterministic IDs + PDG metadata.
    noelle::ir::ids::assign_ids(&mut module);
    module
        .metadata
        .insert("noelle.pdg".into(), "embedded-by-test".into());

    // 5. noelle-load + the DOALL custom tool, hotness-guided.
    let mut noelle = Noelle::new(module, AliasTier::Full);
    let report = noelle::transforms::doall::run(
        &mut noelle,
        &noelle::transforms::doall::DoallOptions {
            target: noelle::transforms::LoopTargetOpts {
                min_hotness: 0.05,
                only: None,
                workers: 4,
            },
        },
    );
    assert!(
        report.parallelized.iter().any(|(f, _)| f == "hot"),
        "hot loop must parallelize: {report:?}"
    );
    let mut module = noelle.into_module();

    // 6. noelle-meta-clean strips NOELLE metadata.
    noelle::ir::ids::clean_noelle_metadata(&mut module);
    assert!(module.metadata.keys().all(|k| !k.starts_with("noelle.")));

    // 7. noelle-bin: execute the final program.
    noelle::ir::verifier::verify_module(&module).expect("final module verifies");
    let parallel = run_module(&module, "main", &[], &RunConfig::default()).expect("final run");
    assert_eq!(parallel.ret_i64(), baseline.ret_i64());
    assert!(
        parallel.cycles < baseline.cycles,
        "parallel {} vs baseline {}",
        parallel.cycles,
        baseline.cycles
    );
}

#[test]
fn workload_corpus_links_with_runtime_stubs() {
    // Linking a workload against an empty runtime module is a no-op merge.
    let w = noelle::workloads::by_name("dijkstra").expect("exists");
    let m = w.build();
    let before = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");
    let extra = noelle::ir::Module::new("empty_runtime");
    let linked = noelle_tools::link_modules(vec![m, extra]).expect("links");
    let after = run_module(&linked, "main", &[], &RunConfig::default()).expect("runs");
    assert_eq!(before.ret_i64(), after.ret_i64());
}
