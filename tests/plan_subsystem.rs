//! End-to-end tests of the parallelization planner: the whole-workload plan
//! report must match the checked-in golden byte-for-byte, the predicted
//! speedups must rank-correlate with what the simulated machine actually
//! measures (Spearman >= 0.7 across the suite), applying a plan must
//! preserve observable behavior on every workload, and the daemon's `plan`
//! method must serve the same report inside the versioned reply envelope
//! while counting its work.

use noelle::core::json::{envelope, Json, ENVELOPE_VERSION};
use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::verifier::verify_module;
use noelle::runtime::{run_module, RunConfig};
use noelle_plan::{apply_plan, plan_module, spearman, PlanOptions};
use noelle_server::{Client, Server, ServerConfig};
use std::path::PathBuf;

fn corpus_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("plan")
        .join(file)
}

fn workloads_all() -> Vec<(String, noelle::ir::module::Module)> {
    noelle::workloads::all()
        .into_iter()
        .chain(std::iter::once(noelle::workloads::pdg_stress()))
        .map(|w| (w.name.to_string(), w.build()))
        .collect()
}

// ---------------------------------------------------------------------------
// Golden diff: the checked-in whole-suite plan must match a fresh run,
// constructed exactly as `noelle-plan workload:all --format json` builds it.
// ---------------------------------------------------------------------------

#[test]
fn workload_plans_match_checked_in_golden() {
    let opts = PlanOptions::default();
    let plans: Vec<(String, Json)> = workloads_all()
        .into_iter()
        .map(|(name, m)| {
            let mut n = Noelle::new(m, AliasTier::Full);
            (name, plan_module(&mut n, &opts).to_json())
        })
        .collect();
    assert_eq!(plans.len(), 42, "the full suite plus pdg_stress");
    let fresh = envelope(
        "plan",
        Json::object([("plans".to_string(), Json::object(plans))]),
    )
    .to_string_pretty();
    let golden = std::fs::read_to_string(corpus_path("golden_workloads.json"))
        .expect("golden plan JSON is checked in");
    assert_eq!(
        fresh.trim(),
        golden.trim(),
        "workload plans diverge from tests/corpus/plan/golden_workloads.json; \
         regenerate with `noelle-plan workload:all --format json` if the \
         change is intentional"
    );
}

// ---------------------------------------------------------------------------
// Prediction quality: across the suite, the cost model's predicted program
// speedups must rank workloads in (close to) the same order the simulated
// machine does. Exact cycle counts are not the claim — ordering is, since
// the planner's job is picking winners.
// ---------------------------------------------------------------------------

/// Predicted and simulated program speedup for every workload whose
/// baseline runs (all of them, by suite construction).
fn prediction_pairs() -> (Vec<f64>, Vec<f64>, Vec<String>) {
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    let mut names = Vec::new();
    for (name, m) in workloads_all() {
        let seq = run_module(&m, "main", &[], &RunConfig::default()).expect("workload runs");
        let mut n = Noelle::new(m, AliasTier::Full);
        let plan = plan_module(&mut n, &PlanOptions::default());
        apply_plan(&mut n, &plan);
        let m2 = n.into_module();
        verify_module(&m2).expect("planned module verifies");
        let par = run_module(&m2, "main", &[], &RunConfig::default()).expect("planned runs");
        assert_eq!(par.ret_i64(), seq.ret_i64(), "{name}: semantics preserved");
        assert_eq!(par.output, seq.output, "{name}: output preserved");
        assert_eq!(
            par.globals_digest, seq.globals_digest,
            "{name}: globals preserved"
        );
        predicted.push(plan.predicted_program_speedup());
        measured.push(seq.cycles as f64 / par.cycles as f64);
        names.push(name);
    }
    (predicted, measured, names)
}

#[test]
fn predicted_speedups_rank_correlate_with_simulated() {
    let (predicted, measured, names) = prediction_pairs();
    assert_eq!(predicted.len(), 42);
    let rho = spearman(&predicted, &measured);
    let pairs: Vec<String> = names
        .iter()
        .zip(predicted.iter().zip(measured.iter()))
        .map(|(n, (p, m))| format!("{n}: predicted {p:.2}x measured {m:.2}x"))
        .collect();
    assert!(
        rho >= 0.7,
        "prediction rank correlation {rho:.3} below 0.7:\n{}",
        pairs.join("\n")
    );
}

// ---------------------------------------------------------------------------
// The daemon's `plan` method: same report, versioned envelope, counters.
// ---------------------------------------------------------------------------

#[test]
fn server_plan_method_reports_and_counts() {
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    let ok = c
        .call(
            "load",
            Json::object([
                (
                    "path".to_string(),
                    Json::Str("workload:blackscholes".into()),
                ),
                ("session".to_string(), Json::Str("bs".into())),
            ]),
        )
        .expect("load succeeds");
    assert_eq!(ok.get("session").and_then(Json::as_str), Some("bs"));

    let reply = c
        .call(
            "plan",
            Json::object([("session".to_string(), Json::Str("bs".into()))]),
        )
        .expect("plan succeeds");
    assert_eq!(
        reply.get("kind").and_then(Json::as_str),
        Some("plan"),
        "reply carries the envelope kind"
    );
    assert_eq!(
        reply.get("v").and_then(Json::as_i64),
        Some(ENVELOPE_VERSION),
        "reply carries the envelope version"
    );
    let loops = reply
        .get("plan")
        .and_then(|p| p.get("summary"))
        .and_then(|s| s.get("loops"))
        .and_then(Json::as_i64)
        .expect("reply carries the plan summary");
    assert!(loops >= 1, "blackscholes has loops to plan");

    // The reply matches a local plan of the same module byte-for-byte.
    let w = noelle::workloads::by_name("blackscholes").expect("workload");
    let mut n = Noelle::new(w.build(), AliasTier::Full);
    let local = plan_module(&mut n, &PlanOptions::default()).to_json();
    assert_eq!(
        reply.get("plan").map(Json::to_string_compact),
        Some(local.to_string_compact()),
        "wire plan == local plan"
    );

    for method in ["stats", "metrics"] {
        let doc = c.call(method, Json::object([])).expect(method);
        let runs = doc
            .get("plan")
            .and_then(|p| p.get("runs"))
            .and_then(Json::as_i64);
        assert_eq!(runs, Some(1), "{method} must surface the plan counters");
        let planned = doc
            .get("plan")
            .and_then(|p| p.get("planned"))
            .and_then(Json::as_i64)
            .expect("counters carry planned totals");
        assert!(planned >= 1);
    }
    server.shutdown_and_join();
}

// ---------------------------------------------------------------------------
// Unified error envelope: an unknown method is a structured, feature-probe
// friendly `unknown_method` error — not a generic bad_request.
// ---------------------------------------------------------------------------

#[test]
fn unknown_method_error_is_structured() {
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    let reply = c
        .request("no-such-method", Json::object([]))
        .expect("transport succeeds");
    let err = reply.get("error").expect("error reply");
    assert_eq!(
        err.get("code").and_then(Json::as_str),
        Some("unknown_method"),
        "{reply:?}"
    );
    assert!(
        err.get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("no-such-method")),
        "{reply:?}"
    );
    server.shutdown_and_join();
}
