//! Property-based tests over the core data structures and invariants:
//! randomly generated straight-line/branchy programs must round-trip
//! through the printer/parser, verify, and execute deterministically; the
//! dominator and dependence structures must satisfy their defining
//! properties on arbitrary CFGs.
//!
//! The generator is a deterministic xorshift PRNG (the registry is offline,
//! so no proptest) — every failure reproduces from its case index.

use noelle::ir::builder::FunctionBuilder;
use noelle::ir::cfg::Cfg;
use noelle::ir::dom::{DomTree, PostDomTree};
use noelle::ir::inst::{BinOp, IcmpPred};
use noelle::ir::types::Type;
use noelle::ir::value::Value;
use noelle::ir::Module;
use noelle::runtime::{run_module, RunConfig};

const CASES: u64 = 64;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A tiny random program: a chain of arithmetic on an argument, optional
/// diamonds, and a counted loop with a random body mix.
#[derive(Debug, Clone)]
struct ProgSpec {
    ops: Vec<(u8, i64)>,
    trip: i64,
    diamond_on_bit: bool,
}

fn gen_spec(rng: &mut Rng) -> ProgSpec {
    let n_ops = rng.range(1, 12) as usize;
    let ops = (0..n_ops)
        .map(|_| (rng.range(0, 5) as u8, rng.range(1, 50)))
        .collect();
    ProgSpec {
        ops,
        trip: rng.range(1, 40),
        diamond_on_bit: rng.bool(),
    }
}

fn build(spec: &ProgSpec) -> Module {
    let mut m = Module::new("prop");
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(1))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, Value::const_i64(spec.trip));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let mut x = acc;
    for &(op, k) in &spec.ops {
        let kv = Value::const_i64(k);
        x = match op {
            0 => b.binop(BinOp::Add, Type::I64, x, kv),
            1 => b.binop(BinOp::Mul, Type::I64, x, kv),
            2 => b.binop(BinOp::Xor, Type::I64, x, kv),
            3 => b.binop(BinOp::And, Type::I64, x, Value::const_i64(k | 0xFF)),
            _ => b.binop(BinOp::Div, Type::I64, x, kv),
        };
    }
    let acc2 = if spec.diamond_on_bit {
        // Diamond: pick between two updates based on the low bit.
        let bit = b.binop(BinOp::And, Type::I64, x, Value::const_i64(1));
        let cond = b.icmp(IcmpPred::Eq, Type::I64, bit, Value::const_i64(0));
        let even = b.block("even");
        let odd = b.block("odd");
        let join = b.block("join");
        b.cond_br(cond, even, odd);
        b.switch_to(even);
        let xe = b.binop(BinOp::Add, Type::I64, x, Value::const_i64(3));
        b.br(join);
        b.switch_to(odd);
        let xo = b.binop(BinOp::Mul, Type::I64, x, Value::const_i64(2));
        b.br(join);
        b.switch_to(join);
        let merged = b.phi(Type::I64, vec![(even, xe), (odd, xo)]);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, b.func().block_order()[6], i2);
        b.add_incoming(acc, b.func().block_order()[6], merged);
        merged
    } else {
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(acc, body, x);
        x
    };
    let _ = acc2;
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

/// Run `check` over the deterministic case corpus, reporting the failing
/// case index and spec on panic.
fn for_each_case(check: impl Fn(&ProgSpec)) {
    for case in 0..CASES {
        let spec = gen_spec(&mut Rng::new(case));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&spec)));
        if let Err(e) = result {
            eprintln!("failing case {case}: {spec:?}");
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn generated_programs_verify_and_round_trip() {
    for_each_case(|spec| {
        let m = build(spec);
        noelle::ir::verifier::verify_module(&m).expect("generated program verifies");
        // Printer/parser round trip preserves the program exactly.
        let text = noelle::ir::printer::print_module(&m);
        let m2 = noelle::ir::parser::parse_module(&text).expect("reparses");
        assert_eq!(noelle::ir::printer::print_module(&m2), text);
        // Execution is deterministic and identical across the round trip.
        let r1 = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");
        let r2 = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
        assert_eq!(r1.ret_i64(), r2.ret_i64());
        assert_eq!(r1.cycles, r2.cycles);
    });
}

#[test]
fn dominance_properties_hold() {
    for_each_case(|spec| {
        let m = build(spec);
        let f = m.func_by_name("main").unwrap();
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let pdt = PostDomTree::new(f, &cfg);
        let entry = f.entry();
        for &x in &cfg.rpo {
            // The entry dominates every reachable block; dominance is
            // reflexive; the idom strictly dominates its node.
            assert!(dt.dominates(entry, x));
            assert!(dt.dominates(x, x));
            if let Some(d) = dt.idom(x) {
                assert!(dt.strictly_dominates(d, x));
            }
            // Every dominator of x also dominates x's idom chain upward.
            if let Some(d) = dt.idom(x) {
                for &y in &cfg.rpo {
                    if dt.strictly_dominates(y, x) {
                        assert!(dt.dominates(y, d) || y == d);
                    }
                }
            }
            // Post-dominance mirrors: every block post-dominates itself.
            assert!(pdt.postdominates(x, x));
        }
    });
}

#[test]
fn licm_preserves_random_program_semantics() {
    for_each_case(|spec| {
        use noelle::core::noelle::{AliasTier, Noelle};
        let m = build(spec);
        let before = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");
        let mut n = Noelle::new(m, AliasTier::Full);
        noelle::transforms::licm::run(&mut n);
        let m2 = n.into_module();
        noelle::ir::verifier::verify_module(&m2).expect("verifies after LICM");
        let after = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
        assert_eq!(before.ret_i64(), after.ret_i64());
    });
}

#[test]
fn sccdag_partitions_loop_instructions() {
    for_each_case(|spec| {
        use noelle_analysis::alias::BasicAlias;
        use noelle_pdg::pdg::PdgBuilder;
        use noelle_pdg::sccdag::SccDag;
        let m = build(spec);
        let fid = m.func_ids().next().unwrap();
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = noelle::ir::loops::LoopForest::new(f, &cfg, &dt);
        for l in forest.loops() {
            let basic = BasicAlias::new(&m);
            let builder = PdgBuilder::new(&m, &basic);
            let g = builder.loop_pdg(fid, l);
            let dag = SccDag::new(f, l, &g);
            // Every internal instruction is in exactly one SCC, and the SCC
            // DAG's topological order covers every node exactly once.
            let covered: usize = dag.nodes().iter().map(|n| n.insts.len()).sum();
            assert_eq!(covered, g.num_internal());
            let topo = dag.topo_order();
            assert_eq!(topo.len(), dag.nodes().len());
            for i in g.internal_nodes() {
                assert!(dag.scc_of(i).is_some());
            }
        }
    });
}
