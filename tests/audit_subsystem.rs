//! End-to-end tests of the parallelism auditor: each checked-in corpus
//! exemplar must produce exactly its NL01xx blocker category with the
//! intended resolution hint, the interprocedural attribution must reach the
//! call site in `@main` that creates the aliasing, the whole-workload audit
//! must match the checked-in golden JSON byte-for-byte, and — the contract
//! the fuzz oracle enforces seed-by-seed — no verdict across the 42-workload
//! suite may be a false "clean": every clean verdict survives actually
//! running the transform, every blocked verdict names at least one concrete
//! instruction carrying a hint.

use std::path::PathBuf;

use noelle::core::audit::{BlockerKind, Hint, ModuleAudit, Technique};
use noelle::core::json::Json;
use noelle::core::noelle::{AliasTier, Noelle};
use noelle::ir::parser::parse_module;
use noelle::ir::verifier::verify_module;
use noelle::transforms::{doall, dswp, helix, LoopTargetOpts};
use noelle_lint::{audit_code, audit_findings, run_audit};
use noelle_server::{Client, Server, ServerConfig};

fn corpus_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("audit")
        .join(file)
}

fn audit_corpus(file: &str) -> (Noelle, ModuleAudit) {
    let src = std::fs::read_to_string(corpus_path(file)).expect("audit corpus exists");
    let m = parse_module(&src).expect("corpus module parses");
    let mut n = Noelle::new(m, AliasTier::Full);
    let audit = run_audit(&mut n);
    (n, audit)
}

/// The kernel loop's verdict for `t` — every exemplar puts its loop in
/// `@kernel`.
fn kernel_verdict(audit: &ModuleAudit, t: Technique) -> &noelle::core::audit::TechniqueAudit {
    let l = audit
        .loops
        .iter()
        .find(|l| l.function == "kernel")
        .expect("exemplar has a loop in @kernel");
    l.verdict(t)
}

/// Assert the exemplar's kernel loop is blocked for `t` by exactly the
/// expected category/hint, and that the NL01xx finding surfaces through the
/// lint rendering pipeline.
fn assert_exemplar(file: &str, t: Technique, kind: BlockerKind, hint: Hint) {
    let (n, audit) = audit_corpus(file);
    let v = kernel_verdict(&audit, t);
    assert!(
        !v.clean,
        "{file}: {} must be blocked, got clean",
        t.as_str()
    );
    let b = v
        .blockers
        .iter()
        .find(|b| b.kind == kind)
        .unwrap_or_else(|| {
            panic!(
                "{file}: expected a {} blocker, got {:?}",
                kind.as_str(),
                v.blockers.iter().map(|b| b.kind).collect::<Vec<_>>()
            )
        });
    assert_eq!(
        b.hint,
        hint,
        "{file}: {} should resolve via {}, got {}",
        kind.as_str(),
        hint.as_str(),
        b.hint.as_str()
    );
    assert!(!b.detail.is_empty(), "{file}: blocker carries specifics");

    let code = audit_code(kind);
    let findings = audit_findings(n.module(), &audit);
    assert!(
        findings
            .iter()
            .any(|f| f.code == code && f.loc.function == "kernel"),
        "{file}: diagnostics must carry {code} on @kernel, got {:?}",
        findings.iter().map(|f| f.code).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// One exemplar per blocker category, asserting the exact code + hint.
// ---------------------------------------------------------------------------

#[test]
fn carried_dep_exemplar_is_nl0101_with_reduction_hint() {
    assert_exemplar(
        "carried_dep.nir",
        Technique::Doall,
        BlockerKind::CarriedMemoryDep,
        Hint::Reduction,
    );
}

#[test]
fn unproven_alias_exemplar_is_nl0102_with_speculate_hint() {
    assert_exemplar(
        "unproven_alias.nir",
        Technique::Doall,
        BlockerKind::UnprovenAlias,
        Hint::Speculate,
    );
}

#[test]
fn escaping_induction_exemplar_is_nl0103_with_restructure_hint() {
    assert_exemplar(
        "escaping_induction.nir",
        Technique::Doall,
        BlockerKind::EscapingInduction,
        Hint::Restructure,
    );
}

#[test]
fn impure_call_exemplar_is_nl0104_with_queue_mediate_hint() {
    assert_exemplar(
        "impure_call.nir",
        Technique::Doall,
        BlockerKind::ImpureCall,
        Hint::QueueMediate,
    );
}

#[test]
fn dswp_cyclic_exemplar_is_nl0106_with_speculate_hint() {
    assert_exemplar(
        "dswp_cyclic.nir",
        Technique::Dswp,
        BlockerKind::CyclicSccSpan,
        Hint::Speculate,
    );
}

// ---------------------------------------------------------------------------
// Interprocedural attribution: the unproven-alias blocker must point past
// the kernel, at the @main call site whose actuals alias, and name the
// abstract heap object behind the failed query.
// ---------------------------------------------------------------------------

#[test]
fn unproven_alias_attribution_reaches_the_main_call_site() {
    let (n, audit) = audit_corpus("unproven_alias.nir");
    let v = kernel_verdict(&audit, Technique::Doall);
    let b = v
        .blockers
        .iter()
        .find(|b| b.kind == BlockerKind::UnprovenAlias)
        .expect("unproven-alias blocker present");
    assert!(
        !b.objects.is_empty(),
        "alias blocker names the points-to objects behind the failed query"
    );
    let cross_fns: Vec<&str> = b
        .cross
        .iter()
        .map(|(fid, _)| n.module().func(*fid).name.as_str())
        .collect();
    assert!(
        cross_fns.contains(&"main"),
        "attribution must reach the aliasing call site in @main, got {cross_fns:?}"
    );
}

// ---------------------------------------------------------------------------
// Determinism: the audit JSON is byte-identical across independent builds.
// ---------------------------------------------------------------------------

#[test]
fn audit_json_is_byte_identical_across_runs() {
    let render = || {
        let (_, audit) = audit_corpus("unproven_alias.nir");
        audit.to_json().to_string_compact()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "audit JSON must be deterministic");
    assert!(a.contains("\"unproven-alias\""));
}

// ---------------------------------------------------------------------------
// Golden diff: the checked-in whole-suite audit must match a fresh run,
// constructed exactly as `noelle-lint workload:all --audit --format json`
// builds it.
// ---------------------------------------------------------------------------

fn workloads_all() -> Vec<(String, noelle::ir::module::Module)> {
    noelle::workloads::all()
        .into_iter()
        .chain(std::iter::once(noelle::workloads::pdg_stress()))
        .map(|w| (w.name.to_string(), w.build()))
        .collect()
}

#[test]
fn workload_audit_matches_checked_in_golden() {
    let audits: Vec<(String, Json)> = workloads_all()
        .into_iter()
        .map(|(name, m)| {
            let mut n = Noelle::new(m, AliasTier::Full);
            (name, run_audit(&mut n).to_json())
        })
        .collect();
    assert_eq!(audits.len(), 42, "the full suite plus pdg_stress");
    let fresh = noelle::core::json::envelope(
        "audit",
        Json::object([("audits".to_string(), Json::object(audits))]),
    )
    .to_string_pretty();
    let golden = std::fs::read_to_string(corpus_path("golden_workloads.json"))
        .expect("golden audit JSON is checked in");
    assert_eq!(
        fresh.trim(),
        golden.trim(),
        "workload audit diverges from tests/corpus/audit/golden_workloads.json; \
         regenerate with `noelle-lint workload:all --audit --format json` if the \
         change is intentional"
    );
}

// ---------------------------------------------------------------------------
// Zero false "clean" across the suite: every clean verdict must survive
// running its transform pinned to exactly the audited loop, and every
// blocked verdict must name at least one concrete instruction with a hint.
// (Behavioral equivalence of the transformed modules is the differential
// fuzz oracle's job — `noelle-fuzz --check-audit` — so this sweep stops at
// "applies and verifies".)
// ---------------------------------------------------------------------------

#[test]
fn no_false_clean_verdicts_across_all_workloads() {
    let mut clean_checked = 0usize;
    let mut blocked_checked = 0usize;
    for (name, m) in workloads_all() {
        let mut n = Noelle::new(m.clone(), AliasTier::Full);
        let audit = run_audit(&mut n);
        for la in &audit.loops {
            let loop_name = format!("{name} @{}:{}", la.function, la.header_name);
            for v in &la.verdicts {
                if !v.clean {
                    blocked_checked += 1;
                    assert!(
                        !v.blockers.is_empty(),
                        "{loop_name}: blocked {} verdict names no blocker",
                        v.technique.as_str()
                    );
                    for b in &v.blockers {
                        assert!(
                            !b.detail.is_empty(),
                            "{loop_name}: blocker without specifics"
                        );
                        assert!(
                            audit_code(b.kind).starts_with("NL01"),
                            "{loop_name}: blocker outside the NL01xx series"
                        );
                    }
                    continue;
                }
                clean_checked += 1;
                let target = LoopTargetOpts::pinned(&la.function, la.header);
                let mut tn = Noelle::new(m.clone(), AliasTier::Full);
                let report = match v.technique {
                    Technique::Doall => doall::run(&mut tn, &doall::DoallOptions { target }),
                    Technique::Helix => helix::run(
                        &mut tn,
                        &helix::HelixOptions {
                            target,
                            ..helix::HelixOptions::default()
                        },
                    ),
                    Technique::Dswp => dswp::run(
                        &mut tn,
                        &dswp::DswpOptions {
                            target: target.with_workers(2),
                        },
                    ),
                };
                assert!(
                    report
                        .parallelized
                        .iter()
                        .any(|(f, h)| *f == la.function && *h == la.header),
                    "{loop_name}: clean {} verdict but the transform refused: {}",
                    v.technique.as_str(),
                    report
                        .skipped
                        .iter()
                        .find(|(f, h, _)| *f == la.function && *h == la.header)
                        .map(|(_, _, r)| r.as_str())
                        .unwrap_or("loop not attempted")
                );
                let tm = tn.into_module();
                verify_module(&tm).unwrap_or_else(|e| {
                    panic!(
                        "{loop_name}: clean {} verdict, transformed module rejects: {e:?}",
                        v.technique.as_str()
                    )
                });
            }
        }
    }
    assert!(
        clean_checked >= 30 && blocked_checked >= 30,
        "the suite must exercise both directions (clean {clean_checked}, \
         blocked {blocked_checked})"
    );
}

// ---------------------------------------------------------------------------
// The daemon's `audit` method: report + diagnostics in one reply, counters
// visible in both `stats` and `metrics`.
// ---------------------------------------------------------------------------

#[test]
fn server_audit_method_reports_and_counts() {
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let mut c = Client::connect(&server.addr.to_string()).expect("connect");
    let ok = c
        .call(
            "load",
            Json::object([
                (
                    "path".to_string(),
                    Json::Str("workload:blackscholes".into()),
                ),
                ("session".to_string(), Json::Str("bs".into())),
            ]),
        )
        .expect("load succeeds");
    assert_eq!(ok.get("session").and_then(Json::as_str), Some("bs"));

    let reply = c
        .call(
            "audit",
            Json::object([("session".to_string(), Json::Str("bs".into()))]),
        )
        .expect("audit succeeds");
    let loops = reply
        .get("audit")
        .and_then(|a| a.get("summary"))
        .and_then(|s| s.get("loops"))
        .and_then(Json::as_i64)
        .expect("reply carries the audit summary");
    assert!(loops >= 1, "blackscholes has loops to audit");
    assert!(
        reply.get("diagnostics").is_some(),
        "reply carries the NL01xx findings alongside the report"
    );

    for method in ["stats", "metrics"] {
        let doc = c.call(method, Json::object([])).expect(method);
        let runs = doc
            .get("audit")
            .and_then(|a| a.get("runs"))
            .and_then(Json::as_i64);
        assert_eq!(runs, Some(1), "{method} must surface the audit counters");
        let blockers = doc
            .get("audit")
            .and_then(|a| a.get("blockers"))
            .and_then(Json::as_i64)
            .expect("counters carry blocker totals");
        assert!(blockers >= 0);
    }
    server.shutdown_and_join();
}
