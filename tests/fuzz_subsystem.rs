//! End-to-end tests of the `noelle-fuzz` subsystem wired to the real tool
//! registry — the same composition the `noelle-fuzz` binary uses: generate
//! seed-driven modules, differential-check every pipeline transform,
//! dynamically validate the PDG, and shrink failures into repros.

use std::path::PathBuf;

use noelle::core::noelle::Noelle;
use noelle::ir::parser::parse_module;
use noelle::ir::verifier::verify_module;
use noelle::runtime::{run_module, RtError, RunConfig};
use noelle_fuzz::driver::{run_campaign, FuzzConfig};
use noelle_fuzz::generator::GenConfig;
use noelle_fuzz::oracle::FuzzTool;
use noelle_fuzz::reducer::{reduce, DEFAULT_MAX_ROUNDS};
use noelle_tools::registry::{self, ToolOptions};

/// The semantics-preserving pipeline fuzzed by `noelle-fuzz --tool all`.
const PIPELINE: &[&str] = &["licm", "dead", "doall", "dswp", "helix", "perspective"];

fn pipeline_tools() -> Vec<FuzzTool> {
    registry::tools()
        .iter()
        .filter(|t| PIPELINE.contains(&t.name))
        .map(|t| {
            let run = t.run;
            FuzzTool::new(t.name, move |n: &mut Noelle| {
                run(n, &ToolOptions { cores: 3 })
            })
        })
        .collect()
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("fuzz")
}

#[test]
fn fuzz_campaign_over_the_registry_pipeline_is_clean_and_deterministic() {
    let cfg = FuzzConfig {
        seeds: 25,
        trace_deps: true,
        corpus_dir: Some(corpus_dir()),
        persist: false, // never write into the repo from a test
        gen: GenConfig {
            max_kernels: 2,
            size_budget: 100,
            min_n: 4,
            max_n: 16,
        },
        ..FuzzConfig::default()
    };
    let a = run_campaign(&cfg, &pipeline_tools());
    assert!(a.ok(), "campaign found violations:\n{}", a.render());
    assert!(a.corpus_replayed >= 1, "checked-in corpus should replay");
    assert!(a.deps_checked > 0, "PDG-soundness oracle should fire");
    let b = run_campaign(&cfg, &pipeline_tools());
    assert_eq!(a.render(), b.render(), "campaigns must be deterministic");
}

/// The unreduced form of the checked-in type-confusion repro: an indirect
/// call through a lying function-pointer cast, padded with unrelated work.
/// The verifier accepts it (indirect callees are unchecked), and the
/// runtime used to abort the whole process on it (`as_i` on a float).
const TYPE_CONFUSION_FULL: &str = r#"
module "type_confusion" {
define f64 @f() {
entry:
  ret f64 1.5
}
define i64 @main() {
entry:
  %slot = alloca i64, i64 1
  %junk = alloca i64, i64 8
  %fi = ptrtoint fn f64()* @f to i64
  store i64 %fi, %slot
  %x = add i64 i64 40, i64 2
  %p = gep i64, %junk, i64 3
  store i64 %x, %p
  %raw = load i64, %slot
  %fp = inttoptr i64 %raw to fn i64()*
  %v = call i64 %fp()
  %y = load i64, %p
  %r = add i64 %v, %y
  ret %r
}
}
"#;

fn confuses_types(m: &noelle::ir::Module) -> bool {
    if verify_module(m).is_err() {
        return false;
    }
    matches!(
        run_module(m, "main", &[], &RunConfig::default()),
        Err(RtError::TypeConfusion(_))
    )
}

#[test]
fn type_confusion_is_reported_and_minimizes_to_the_checked_in_repro() {
    let full = parse_module(TYPE_CONFUSION_FULL).expect("parses");
    verify_module(&full).expect("verifier accepts the lying cast");
    assert!(confuses_types(&full), "runtime must report, not abort");

    let (min, stats) = reduce(&full, &confuses_types, DEFAULT_MAX_ROUNDS);
    assert!(confuses_types(&min), "minimized repro must still reproduce");
    assert!(
        stats.insts_after < stats.insts_before,
        "the padding must shrink away: {stats:?}"
    );

    let checked_in = std::fs::read_to_string(corpus_dir().join("type_confusion.min.nir"))
        .expect("corpus repro exists");
    assert_eq!(
        noelle::ir::printer::print_module(&min),
        checked_in,
        "checked-in repro should be exactly the reducer's output"
    );
}

/// Maintenance helper, not part of the suite: regenerate the checked-in
/// minimized repro from the full reproducer. Run with
/// `cargo test --test fuzz_subsystem regenerate -- --ignored`.
#[test]
#[ignore]
fn regenerate_type_confusion_corpus_file() {
    let full = parse_module(TYPE_CONFUSION_FULL).expect("parses");
    let (min, _) = reduce(&full, &confuses_types, DEFAULT_MAX_ROUNDS);
    std::fs::create_dir_all(corpus_dir()).expect("mkdir corpus");
    std::fs::write(
        corpus_dir().join("type_confusion.min.nir"),
        noelle::ir::printer::print_module(&min),
    )
    .expect("write repro");
}

#[test]
fn corpus_repros_replay_as_reported_errors_not_aborts() {
    // Replaying the corpus with the full pipeline must be clean: repros
    // whose baseline errors (like type confusion) are skipped — which is
    // the point: the runtime reports them instead of killing the process.
    let cfg = FuzzConfig {
        seeds: 0,
        trace_deps: true,
        corpus_dir: Some(corpus_dir()),
        persist: false,
        ..FuzzConfig::default()
    };
    let summary = run_campaign(&cfg, &pipeline_tools());
    assert!(summary.ok(), "corpus violations:\n{}", summary.render());
    assert!(summary.corpus_replayed >= 1);
}
