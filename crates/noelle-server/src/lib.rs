//! # noelle-server
//!
//! A persistent, concurrent NOELLE analysis daemon. The paper's pitch is
//! that expensive abstractions — PDG, SCCDAG, call graph, induction
//! variables — are built once, demand-driven, and shared by many small
//! custom tools. A one-shot CLI throws those caches away on every exit;
//! this crate keeps them resident: `noelle-served` holds a table of loaded
//! modules, each behind a warm [`Noelle`](noelle_core::noelle::Noelle)
//! manager, and serves `load` / `pdg` / `sccdag` / `loops` / `induction` /
//! `invariants` / `callgraph` / `run-tool` / `stats` / `metrics` queries
//! from many clients over localhost TCP.
//!
//! Production-shaping properties:
//!
//! - **Framed wire protocol** ([`protocol`]): 4-byte length-prefixed JSON,
//!   hardened against trailing garbage and oversized frames.
//! - **Session sharding** ([`server`]): sessions hash-route across shards,
//!   each owning a table slice, a bounded request queue, and its share of
//!   the worker pool; connections are cheap readers.
//! - **Admission control** ([`server`]): a full shard queue sheds new
//!   requests with a structured `overloaded` error instead of growing the
//!   tail, keeping latency bounded for admitted work.
//! - **Durable warm starts** ([`server`]): with `--store-dir`, analysis
//!   artifacts persist in a content-addressed on-disk store
//!   (`noelle-store`), so a restarted daemon skips recomputation.
//! - **In-flight coalescing** ([`session`]): concurrent identical builds
//!   share one execution via the per-session build lock; warm `pdg`
//!   replies are served from a serialized-reply cache.
//! - **LRU eviction** ([`session`]): entry and byte budgets bound resident
//!   memory.
//! - **Deadlines**: every request gets a timeout error instead of a hung
//!   connection.
//! - **Observability** ([`metrics`]): per-method counters and latency
//!   quantiles, per-shard queue depth and shed counts, store hit/miss
//!   counters, plus per-session build/cache counters.
//! - **Graceful shutdown**: queued requests drain before workers exit.

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::Client;
pub use server::{RunningServer, Server, ServerConfig, ToolRunner};
