//! A blocking client for the daemon's framed TCP protocol, shared by
//! `noelle-query`, the protocol tests, and the throughput benchmark.

use crate::protocol::{read_frame, write_frame, Request, PROTOCOL_VERSION};
use noelle_core::json::Json;
use std::io;
use std::net::TcpStream;

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
    next_id: i64,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, next_id: 0 })
    }

    /// Send one request and wait for its reply (the full reply object,
    /// `ok` or `error`).
    ///
    /// # Errors
    /// IO/framing failures and premature connection close surface as
    /// `io::Error`.
    pub fn request(&mut self, method: &str, params: Json) -> io::Result<Json> {
        self.request_with_deadline(method, params, None)
    }

    /// [`Client::request`] with a per-request deadline override.
    ///
    /// # Errors
    /// Same as [`Client::request`].
    pub fn request_with_deadline(
        &mut self,
        method: &str,
        params: Json,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            method: method.to_string(),
            params,
            deadline_ms,
            v: Some(PROTOCOL_VERSION),
        };
        write_frame(&mut self.stream, &req.to_json())?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
    }

    /// Send a request and return just the `ok` payload, turning protocol
    /// errors into `io::Error`.
    ///
    /// # Errors
    /// Error replies map to `io::ErrorKind::Other` with the wire message.
    pub fn call(&mut self, method: &str, params: Json) -> io::Result<Json> {
        let reply = self.request(method, params)?;
        match reply.get("ok") {
            Some(v) => Ok(v.clone()),
            None => {
                let msg = reply
                    .get("error")
                    .map(|e| e.to_string_compact())
                    .unwrap_or_else(|| "malformed reply".to_string());
                Err(io::Error::other(msg))
            }
        }
    }
}
