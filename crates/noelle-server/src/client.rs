//! A blocking client for the daemon's framed TCP protocol, shared by
//! `noelle-query`, the protocol tests, and the throughput benchmark.

use crate::protocol::{read_frame, read_frame_text, write_frame, Request, PROTOCOL_VERSION};
use noelle_core::json::Json;
use std::io::{self, BufReader};
use std::net::TcpStream;

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: i64,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            stream,
            reader,
            next_id: 0,
        })
    }

    /// Send one request and wait for its reply (the full reply object,
    /// `ok` or `error`).
    ///
    /// # Errors
    /// IO/framing failures and premature connection close surface as
    /// `io::Error`.
    pub fn request(&mut self, method: &str, params: Json) -> io::Result<Json> {
        self.request_with_deadline(method, params, None)
    }

    /// [`Client::request`] with a per-request deadline override.
    ///
    /// # Errors
    /// Same as [`Client::request`].
    pub fn request_with_deadline(
        &mut self,
        method: &str,
        params: Json,
        deadline_ms: Option<u64>,
    ) -> io::Result<Json> {
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            method: method.to_string(),
            params,
            deadline_ms,
            v: Some(PROTOCOL_VERSION),
        };
        write_frame(&mut self.stream, &req.to_json())?;
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
    }

    /// Write one request frame without reading the reply: the pipelined
    /// half of [`Client::request`]. The daemon answers pipelined requests
    /// strictly in send order, so `N` `send`s followed by `N`
    /// [`Client::recv`]s pair up by position (the ids — returned here —
    /// confirm it). Keeping many requests in flight on one connection
    /// overlaps their server-side work and amortizes the per-frame
    /// round-trip.
    ///
    /// # Errors
    /// Propagates IO/framing failures.
    pub fn send(&mut self, method: &str, params: Json) -> io::Result<i64> {
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            method: method.to_string(),
            params,
            deadline_ms: None,
            v: Some(PROTOCOL_VERSION),
        };
        write_frame(&mut self.stream, &req.to_json())?;
        Ok(self.next_id)
    }

    /// Read the next reply frame as raw text (pairs with [`Client::send`]).
    ///
    /// # Errors
    /// IO/framing failures and premature close surface as `io::Error`.
    pub fn recv_text(&mut self) -> io::Result<String> {
        read_frame_text(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
    }

    /// Read the next reply frame as a value (pairs with [`Client::send`]).
    ///
    /// # Errors
    /// Same as [`Client::recv_text`], plus JSON parse failures.
    pub fn recv(&mut self) -> io::Result<Json> {
        read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })
    }

    /// Send a request and return the raw reply frame text, verifying only
    /// that it is an `ok` reply. No `Json` tree is built — the choice of a
    /// throughput-sensitive caller that doesn't need the payload, where
    /// parsing a multi-kilobyte reply costs more than the server spent
    /// producing it.
    ///
    /// # Errors
    /// IO/framing failures, premature close, and non-`ok` replies surface
    /// as `io::Error`.
    pub fn call_text(&mut self, method: &str, params: Json) -> io::Result<String> {
        self.next_id += 1;
        let req = Request {
            id: self.next_id,
            method: method.to_string(),
            params,
            deadline_ms: None,
            v: Some(PROTOCOL_VERSION),
        };
        write_frame(&mut self.stream, &req.to_json())?;
        let text = read_frame_text(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            )
        })?;
        // Replies serialize object keys in order, so an `ok` reply is
        // exactly `{"id":<id>,"ok":...` and an error starts `{"error":...`.
        let body = text.strip_prefix("{\"id\":").unwrap_or("");
        let body = body.trim_start_matches(|c: char| c.is_ascii_digit() || c == '-');
        if body.starts_with(",\"ok\":") {
            Ok(text)
        } else {
            Err(io::Error::other(text))
        }
    }

    /// Send a request and return just the `ok` payload, turning protocol
    /// errors into `io::Error`.
    ///
    /// # Errors
    /// Error replies map to `io::ErrorKind::Other` with the wire message.
    pub fn call(&mut self, method: &str, params: Json) -> io::Result<Json> {
        let reply = self.request(method, params)?;
        match reply {
            Json::Object(mut o) => match o.remove("ok") {
                Some(v) => Ok(v),
                None => {
                    let msg = o
                        .get("error")
                        .map(Json::to_string_compact)
                        .unwrap_or_else(|| "malformed reply".to_string());
                    Err(io::Error::other(msg))
                }
            },
            _ => Err(io::Error::other("malformed reply")),
        }
    }
}
