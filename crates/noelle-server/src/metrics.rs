//! Request counters and latency histograms.
//!
//! The daemon's `metrics` method reports, per wire method, how many
//! requests ran, how many failed or timed out, and p50/p95/p99 latency.
//! Latencies land in lock-free power-of-two microsecond buckets, so
//! recording from many worker threads never contends; quantiles are read
//! back as the upper bound of the bucket holding the target rank —
//! resolution is a factor of two, which is plenty for tail monitoring.

use noelle_core::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days: effectively unbounded

/// A power-of-two latency histogram (microseconds).
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The latency (µs, bucket upper bound) at quantile `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }
}

/// Counters for one wire method.
#[derive(Default)]
pub struct MethodMetrics {
    /// Completed requests (ok or error), excluding timeouts.
    pub count: AtomicU64,
    /// Requests answered with an error reply.
    pub errors: AtomicU64,
    /// Requests that missed their deadline.
    pub timeouts: AtomicU64,
    /// Requests shed at admission (full shard queue); no work ran.
    pub sheds: AtomicU64,
    /// Latency of completed requests.
    pub latency: LatencyHistogram,
}

/// How a request ended, for metric accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Replied with `ok`.
    Ok,
    /// Replied with a non-timeout error.
    Error,
    /// Replied with a timeout error.
    Timeout,
    /// Shed at admission with an `overloaded` error before any work ran.
    Shed,
}

/// The daemon-wide metric registry.
#[derive(Default)]
pub struct Metrics {
    methods: Mutex<BTreeMap<String, Arc<MethodMetrics>>>,
}

impl Metrics {
    /// New empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn method(&self, name: &str) -> Arc<MethodMetrics> {
        let mut map = self.methods.lock().expect("metrics lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Record one finished request.
    pub fn observe(&self, method: &str, latency: Duration, outcome: Outcome) {
        let m = self.method(method);
        match outcome {
            Outcome::Ok => {
                m.count.fetch_add(1, Ordering::Relaxed);
                m.latency.record(latency);
            }
            Outcome::Error => {
                m.count.fetch_add(1, Ordering::Relaxed);
                m.errors.fetch_add(1, Ordering::Relaxed);
                m.latency.record(latency);
            }
            Outcome::Timeout => {
                m.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            // Shed requests never ran, so they have no latency to record.
            Outcome::Shed => {
                m.sheds.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot every method's counters and latency quantiles.
    pub fn to_json(&self) -> Json {
        let map = self.methods.lock().expect("metrics lock");
        let methods = map
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    Json::object([
                        (
                            "count".to_string(),
                            Json::Int(m.count.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "errors".to_string(),
                            Json::Int(m.errors.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "timeouts".to_string(),
                            Json::Int(m.timeouts.load(Ordering::Relaxed) as i64),
                        ),
                        (
                            "sheds".to_string(),
                            Json::Int(m.sheds.load(Ordering::Relaxed) as i64),
                        ),
                        ("mean_us".to_string(), Json::Int(m.latency.mean_us() as i64)),
                        (
                            "p50_us".to_string(),
                            Json::Int(m.latency.quantile_us(0.50) as i64),
                        ),
                        (
                            "p95_us".to_string(),
                            Json::Int(m.latency.quantile_us(0.95) as i64),
                        ),
                        (
                            "p99_us".to_string(),
                            Json::Int(m.latency.quantile_us(0.99) as i64),
                        ),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::object(methods)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_buckets() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket upper bound 128
        }
        h.record(Duration::from_millis(50)); // the tail outlier
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 128);
        assert_eq!(h.quantile_us(0.95), 128);
        assert!(h.quantile_us(1.0) >= 50_000);
        assert!(h.mean_us() >= 100);
    }

    #[test]
    fn outcome_accounting() {
        let m = Metrics::new();
        m.observe("pdg", Duration::from_micros(10), Outcome::Ok);
        m.observe("pdg", Duration::from_micros(10), Outcome::Error);
        m.observe("pdg", Duration::from_micros(10), Outcome::Timeout);
        m.observe("pdg", Duration::from_micros(10), Outcome::Shed);
        let j = m.to_json();
        let pdg = j.get("pdg").unwrap();
        assert_eq!(pdg.get("count").and_then(Json::as_i64), Some(2));
        assert_eq!(pdg.get("errors").and_then(Json::as_i64), Some(1));
        assert_eq!(pdg.get("timeouts").and_then(Json::as_i64), Some(1));
        assert_eq!(pdg.get("sheds").and_then(Json::as_i64), Some(1));
    }
}
