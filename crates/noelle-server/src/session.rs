//! The session table: loaded modules and their warm abstractions.
//!
//! A **session** is one loaded module wrapped in a demand-driven [`Noelle`]
//! manager. The manager *is* the cache: the first `pdg` request pays the
//! build, later requests get the `Arc` handle back. The per-session
//! `Mutex<Noelle>` doubles as the build lock — when N identical requests
//! race, one takes the lock and builds while the rest queue behind it and
//! then read the cached result, so exactly one build runs (in-flight
//! coalescing). Distinct sessions never share the lock, so the worker pool
//! stays busy across modules.
//!
//! The table evicts least-recently-used sessions when either budget —
//! entry count or approximate resident bytes — is exceeded. Byte usage is
//! a coarse estimate (instruction count when loaded, plus PDG edges once
//! built); the point is bounding growth, not accounting to the byte.

use noelle_core::json::Json;
use noelle_core::noelle::Noelle;
use noelle_ir::module::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Rough per-instruction resident cost (module + per-function structures).
const BYTES_PER_INST: usize = 256;
/// Rough per-PDG-edge resident cost once the graph is built.
const BYTES_PER_EDGE: usize = 96;

/// Estimate the resident footprint of a freshly loaded module.
pub fn estimate_module_bytes(m: &Module) -> usize {
    let insts: usize = m.functions().iter().map(|f| f.inst_ids().len()).sum();
    insts.max(1) * BYTES_PER_INST
}

/// One loaded module and its warm manager.
pub struct Session {
    /// Session name (client-chosen or generated).
    pub name: String,
    /// The demand-driven manager; its mutex is the per-session build lock.
    pub noelle: Mutex<Noelle>,
    /// LRU clock value of the last touch.
    touched: AtomicU64,
    /// Approximate resident bytes (grows once the PDG is built).
    approx_bytes: AtomicUsize,
    /// Module-content epoch: bumped (under the `noelle` build lock) every
    /// time a request mutates the module, i.e. on `run-tool`. Cached reply
    /// texts are versioned by the epoch they were serialized under.
    epoch: AtomicU64,
    /// Serialized ok-payload texts by method, each tagged with the epoch it
    /// was built under. Serializing a whole-program reply to JSON dominates
    /// a warm request, so the daemon pays it once per module version and
    /// splices the cached text into each reply frame — without even taking
    /// the build lock on the fast path.
    replies: Mutex<HashMap<&'static str, (u64, Arc<String>)>>,
}

impl Session {
    /// Current byte estimate.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes.load(Ordering::Relaxed)
    }

    /// Grow the byte estimate after an abstraction build (e.g. by
    /// `edges * BYTES_PER_EDGE` once the PDG exists).
    pub fn note_pdg_built(&self, num_edges: usize) {
        self.approx_bytes
            .fetch_add(num_edges * BYTES_PER_EDGE, Ordering::Relaxed);
    }

    /// The current module-content epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Advance the epoch after a mutating request. Call while holding the
    /// `noelle` lock so cached texts stay in step with module content.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The cached serialized ok-payload for `method`, if one was built
    /// under epoch `epoch`.
    pub fn cached_reply(&self, method: &str, epoch: u64) -> Option<Arc<String>> {
        let cache = self.replies.lock().expect("reply cache lock");
        match cache.get(method) {
            Some((v, text)) if *v == epoch => Some(Arc::clone(text)),
            _ => None,
        }
    }

    /// Cache the serialized ok-payload for `method` as of epoch `epoch`.
    /// Call while holding the `noelle` lock (with the epoch read under that
    /// same hold), so a concurrent mutator cannot tag stale text with a
    /// fresh epoch.
    pub fn store_reply(&self, method: &'static str, epoch: u64, text: Arc<String>) {
        self.replies
            .lock()
            .expect("reply cache lock")
            .insert(method, (epoch, text));
    }
}

/// The LRU-evicting session table.
pub struct SessionTable {
    max_entries: usize,
    max_bytes: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
    auto_name: AtomicU64,
    inner: Mutex<HashMap<String, Arc<Session>>>,
}

impl SessionTable {
    /// A table bounded by `max_entries` sessions and `max_bytes` of
    /// (approximate) resident abstraction memory.
    pub fn new(max_entries: usize, max_bytes: usize) -> SessionTable {
        SessionTable {
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
            clock: AtomicU64::new(1),
            evictions: AtomicU64::new(0),
            auto_name: AtomicU64::new(0),
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// A fresh generated session name (`s1`, `s2`, ...).
    pub fn generate_name(&self) -> String {
        format!("s{}", self.auto_name.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Insert (or replace) a session holding `noelle`, then evict if over
    /// budget. The new session is the most recently used, so eviction
    /// targets older sessions first.
    pub fn insert(&self, name: &str, noelle: Noelle) -> Arc<Session> {
        let bytes = estimate_module_bytes(noelle.module());
        let s = Arc::new(Session {
            name: name.to_string(),
            noelle: Mutex::new(noelle),
            touched: AtomicU64::new(self.tick()),
            approx_bytes: AtomicUsize::new(bytes),
            epoch: AtomicU64::new(0),
            replies: Mutex::new(HashMap::new()),
        });
        {
            let mut map = self.inner.lock().expect("session lock");
            map.insert(name.to_string(), Arc::clone(&s));
        }
        self.evict_over_budget();
        s
    }

    /// Look up a session, refreshing its LRU position.
    pub fn get(&self, name: &str) -> Option<Arc<Session>> {
        let map = self.inner.lock().expect("session lock");
        let s = map.get(name).cloned()?;
        s.touched.store(self.tick(), Ordering::Relaxed);
        Some(s)
    }

    /// Drop least-recently-used sessions until both budgets hold (always
    /// keeping the most recent one).
    pub fn evict_over_budget(&self) {
        let mut map = self.inner.lock().expect("session lock");
        loop {
            let total: usize = map.values().map(|s| s.approx_bytes()).sum();
            if map.len() <= 1 || (map.len() <= self.max_entries && total <= self.max_bytes) {
                return;
            }
            let oldest = map
                .values()
                .min_by_key(|s| s.touched.load(Ordering::Relaxed))
                .map(|s| s.name.clone())
                .expect("non-empty");
            map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All live sessions, sorted by name (for deterministic reports).
    pub fn snapshot(&self) -> Vec<Arc<Session>> {
        let map = self.inner.lock().expect("session lock");
        let mut v: Vec<Arc<Session>> = map.values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("session lock").len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// One stats row per session, sorted by name: footprint, function
    /// count, and the manager's per-function cache counters (in-memory and
    /// durable-store). The building block of `stats_json` and of the
    /// server's cross-shard aggregation.
    pub fn session_rows(&self) -> Vec<(String, Json)> {
        let map = self.inner.lock().expect("session lock");
        let mut sessions: Vec<(String, Arc<Session>)> = map
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        sessions.sort_by(|a, b| a.0.cmp(&b.0));
        drop(map);
        sessions
            .iter()
            .map(|(name, s)| {
                let (funcs, func_cache) = s
                    .noelle
                    .lock()
                    .map(|n| {
                        let c = n.func_cache_counters();
                        (
                            n.module().functions().len() as i64,
                            Json::object([
                                ("pdg_hits".to_string(), Json::Int(c.pdg_hits as i64)),
                                ("pdg_misses".to_string(), Json::Int(c.pdg_misses as i64)),
                                ("struct_hits".to_string(), Json::Int(c.struct_hits as i64)),
                                (
                                    "struct_misses".to_string(),
                                    Json::Int(c.struct_misses as i64),
                                ),
                                ("store_hits".to_string(), Json::Int(c.store_hits as i64)),
                                ("store_misses".to_string(), Json::Int(c.store_misses as i64)),
                                (
                                    "invalidations".to_string(),
                                    Json::Int(c.invalidations as i64),
                                ),
                            ]),
                        )
                    })
                    .unwrap_or((-1, Json::Null));
                (
                    name.clone(),
                    Json::object([
                        (
                            "approx_bytes".to_string(),
                            Json::Int(s.approx_bytes() as i64),
                        ),
                        ("functions".to_string(), Json::Int(funcs)),
                        ("func_cache".to_string(), func_cache),
                    ]),
                )
            })
            .collect()
    }

    /// Table-level stats: budgets, usage, and one line per session.
    pub fn stats_json(&self) -> Json {
        let rows = self.session_rows();
        Json::object([
            ("count".to_string(), Json::Int(rows.len() as i64)),
            ("sessions".to_string(), Json::object(rows)),
            (
                "max_entries".to_string(),
                Json::Int(self.max_entries as i64),
            ),
            ("max_bytes".to_string(), Json::Int(self.max_bytes as i64)),
            ("evictions".to_string(), Json::Int(self.evictions() as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;

    fn tiny_module(name: &str) -> Module {
        Module::new(name)
    }

    #[test]
    fn lru_eviction_by_entry_budget() {
        let t = SessionTable::new(2, usize::MAX);
        t.insert("a", Noelle::new(tiny_module("a"), AliasTier::Basic));
        t.insert("b", Noelle::new(tiny_module("b"), AliasTier::Basic));
        // Touch `a` so `b` becomes the LRU victim.
        assert!(t.get("a").is_some());
        t.insert("c", Noelle::new(tiny_module("c"), AliasTier::Basic));
        assert_eq!(t.len(), 2);
        assert!(t.get("b").is_none(), "LRU session evicted");
        assert!(t.get("a").is_some() && t.get("c").is_some());
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn byte_budget_keeps_most_recent() {
        let t = SessionTable::new(16, 1); // any session overflows 1 byte
        t.insert("a", Noelle::new(tiny_module("a"), AliasTier::Basic));
        t.insert("b", Noelle::new(tiny_module("b"), AliasTier::Basic));
        // Over budget, but the most recent session always survives.
        assert_eq!(t.len(), 1);
        assert!(t.get("b").is_some());
    }

    #[test]
    fn generated_names_are_unique() {
        let t = SessionTable::new(4, usize::MAX);
        assert_ne!(t.generate_name(), t.generate_name());
    }
}
