//! The daemon: sharded dispatch, admission control, deadlines, shutdown.
//!
//! Sessions are **hash-routed across shards**: each shard owns a slice of
//! the session table, a bounded request queue, and its own worker threads,
//! so one module's expensive builds can back up only its own shard's queue
//! while other shards keep answering. Connections are cheap reader
//! threads; a connection thread frames one request, routes it by session
//! name, and enqueues it with `try_send` — a full shard queue **sheds**
//! the request immediately with a structured `overloaded` error instead of
//! letting latency grow without bound. Cheap control-plane methods
//! (`ping`, `stats`, `metrics`, `shutdown`) run inline on the connection
//! thread and never queue behind analysis work.
//!
//! The admitted path keeps its deadline: if the reply does not arrive in
//! time, the client gets a `timeout` error and the (still running) build
//! finishes in the background and warms the cache for the next attempt.
//! When the daemon is configured with a store directory, every loaded
//! session writes its analysis artifacts through the content-addressed
//! durable store, so a restarted daemon warm-starts from disk.
//!
//! Shutdown is graceful: the `shutdown` method flips a flag; the accept
//! loop stops, connection readers wind down, and each shard's workers
//! drain their queue before exiting, so no admitted request is dropped
//! unanswered (modulo its own deadline).

use crate::metrics::{Metrics, Outcome};
use crate::protocol::{
    read_frame, response_err, response_ok, response_ok_text, write_frame_text, ErrorCode, Request,
    PROTOCOL_VERSION,
};
use crate::session::{Session, SessionTable};
use noelle_core::json::{envelope, Json};
use noelle_core::noelle::{Abstraction, AliasTier, Noelle};
use noelle_core::wire;
use noelle_ide::{Change, DocCounters, DocSession};
use noelle_ir::module::{FuncId, Module};
use noelle_store::Store;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A tool dispatcher injected by the binary that owns the tool registry
/// (`noelle-served` wires in `noelle_tools::registry`), keeping this crate
/// free of a dependency cycle on the transforms. Receives the raw request
/// params; the registry parses them into its own typed invocation so tool
/// options are interpreted identically across every entry point.
pub type ToolRunner = Arc<dyn Fn(&mut Noelle, &Json) -> Result<String, String> + Send + Sync>;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Total worker pool size, divided across shards (at least one worker
    /// per shard).
    pub workers: usize,
    /// Number of session shards; each owns a table slice, a bounded
    /// request queue, and its share of the workers.
    pub shards: usize,
    /// Bounded per-shard queue depth; a full queue sheds new requests with
    /// an `overloaded` error.
    pub queue_capacity: usize,
    /// Session-table entry budget (split evenly across shards).
    pub max_sessions: usize,
    /// Session-table approximate byte budget (split evenly across shards).
    pub max_bytes: usize,
    /// Default per-request deadline (ms) when the request carries none.
    pub default_deadline_ms: u64,
    /// Directory of the durable content-addressed artifact store. `None`
    /// runs fully in-memory (the pre-store behavior).
    pub store_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 2,
            queue_capacity: 64,
            max_sessions: 8,
            max_bytes: 256 << 20,
            default_deadline_ms: 30_000,
            store_dir: None,
        }
    }
}

/// One session shard: a slice of the session table plus the bounded queue
/// feeding this shard's workers.
pub struct Shard {
    /// The sessions this shard owns (all names hashing to its index).
    pub sessions: SessionTable,
    queue: SyncSender<Job>,
    depth: AtomicUsize,
    shed: AtomicU64,
}

impl Shard {
    /// Requests currently queued (admitted but not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Requests shed at admission because the queue was full.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// The IDE document table and its counters. Documents are *not* sessions:
/// they hold text (possibly unparseable) plus a last-good analysis, live
/// outside the shard tables, and their methods run inline on the
/// connection thread — an edit's damage-scoped repair is the latency
/// budget, not a queue hop.
#[derive(Default)]
pub struct IdeState {
    docs: Mutex<BTreeMap<String, DocSession>>,
    auto_name: AtomicU64,
    opens: AtomicU64,
    closes: AtomicU64,
    /// Diagnostics payloads pushed to clients (every `ide/open` and
    /// `ide/change` reply carries one; `ide/diagnostics` pulls count too).
    diag_pushes: AtomicU64,
    // Counters of already-closed documents, folded in at close so the
    // daemon-wide stats survive the documents they describe.
    retired: Mutex<DocCounters>,
}

impl IdeState {
    /// Open documents right now.
    pub fn open_docs(&self) -> usize {
        self.docs.lock().expect("ide doc table lock").len()
    }

    /// Diagnostics payloads pushed so far.
    pub fn diag_pushes(&self) -> u64 {
        self.diag_pushes.load(Ordering::Relaxed)
    }

    /// Daemon-wide document counters: live documents plus everything
    /// already closed.
    fn totals(&self) -> DocCounters {
        let mut t = *self.retired.lock().expect("ide retired lock");
        for d in self.docs.lock().expect("ide doc table lock").values() {
            let c = d.counters();
            t.changes += c.changes;
            t.incremental_reparses += c.incremental_reparses;
            t.full_reparses += c.full_reparses;
            t.parse_failures += c.parse_failures;
            t.relinted_functions += c.relinted_functions;
            t.reaudited_functions += c.reaudited_functions;
        }
        t
    }

    /// The `"ide"` section of `stats`/`metrics`.
    pub fn stats_json(&self) -> Json {
        let t = self.totals();
        Json::object([
            ("open_docs".to_string(), Json::Int(self.open_docs() as i64)),
            (
                "opens".to_string(),
                Json::Int(self.opens.load(Ordering::Relaxed) as i64),
            ),
            (
                "closes".to_string(),
                Json::Int(self.closes.load(Ordering::Relaxed) as i64),
            ),
            (
                "diag_pushes".to_string(),
                Json::Int(self.diag_pushes() as i64),
            ),
            ("changes".to_string(), Json::Int(t.changes as i64)),
            (
                "incremental_reparses".to_string(),
                Json::Int(t.incremental_reparses as i64),
            ),
            (
                "full_reparses".to_string(),
                Json::Int(t.full_reparses as i64),
            ),
            (
                "parse_failures".to_string(),
                Json::Int(t.parse_failures as i64),
            ),
            (
                "relinted_functions".to_string(),
                Json::Int(t.relinted_functions as i64),
            ),
            (
                "reaudited_functions".to_string(),
                Json::Int(t.reaudited_functions as i64),
            ),
        ])
    }
}

/// Shared daemon state.
pub struct ServerState {
    cfg: ServerConfig,
    shards: Vec<Shard>,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    /// The durable artifact store, when configured.
    pub store: Option<Arc<Store>>,
    /// IDE document sessions (`ide/*` methods).
    pub ide: IdeState,
    /// Parallelism-auditor counters (`audit` method).
    pub audit: AuditCounters,
    /// Parallelization-planner counters (`plan` method).
    pub plan: PlanCounters,
    tool_runner: Option<ToolRunner>,
    shutdown: AtomicBool,
    auto_name: AtomicU64,
    started: Instant,
}

/// Daemon-wide counters for the parallelism auditor, surfaced under the
/// `audit` key of both `stats` and `metrics`.
#[derive(Default)]
pub struct AuditCounters {
    /// `audit` requests served.
    pub runs: AtomicU64,
    /// Loops audited across all runs.
    pub loops: AtomicU64,
    /// Loops with at least one clean technique verdict.
    pub parallelizable: AtomicU64,
    /// Blockers attributed across all runs.
    pub blockers: AtomicU64,
}

impl AuditCounters {
    fn record(&self, audit: &noelle_core::audit::ModuleAudit) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.loops
            .fetch_add(audit.loops.len() as u64, Ordering::Relaxed);
        self.parallelizable
            .fetch_add(audit.parallelizable() as u64, Ordering::Relaxed);
        self.blockers
            .fetch_add(audit.num_blockers() as u64, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        Json::object([
            (
                "runs".to_string(),
                Json::Int(self.runs.load(Ordering::Relaxed) as i64),
            ),
            (
                "loops".to_string(),
                Json::Int(self.loops.load(Ordering::Relaxed) as i64),
            ),
            (
                "parallelizable".to_string(),
                Json::Int(self.parallelizable.load(Ordering::Relaxed) as i64),
            ),
            (
                "blockers".to_string(),
                Json::Int(self.blockers.load(Ordering::Relaxed) as i64),
            ),
        ])
    }
}

/// Daemon-wide counters for the parallelization planner, surfaced under
/// the `plan` key of both `stats` and `metrics`.
#[derive(Default)]
pub struct PlanCounters {
    /// `plan` requests served.
    pub runs: AtomicU64,
    /// Loops considered across all runs.
    pub loops: AtomicU64,
    /// Loops with a chosen technique across all runs.
    pub planned: AtomicU64,
}

impl PlanCounters {
    fn record(&self, plan: &noelle_plan::ModulePlan) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        self.loops
            .fetch_add(plan.loops.len() as u64, Ordering::Relaxed);
        self.planned
            .fetch_add(plan.planned() as u64, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        Json::object([
            (
                "runs".to_string(),
                Json::Int(self.runs.load(Ordering::Relaxed) as i64),
            ),
            (
                "loops".to_string(),
                Json::Int(self.loops.load(Ordering::Relaxed) as i64),
            ),
            (
                "planned".to_string(),
                Json::Int(self.planned.load(Ordering::Relaxed) as i64),
            ),
        ])
    }
}

impl ServerState {
    fn new(
        cfg: ServerConfig,
        tool_runner: Option<ToolRunner>,
        store: Option<Arc<Store>>,
    ) -> (ServerState, Vec<Receiver<Job>>) {
        let num_shards = cfg.shards.max(1);
        let per_entries = (cfg.max_sessions / num_shards).max(1);
        let per_bytes = (cfg.max_bytes / num_shards).max(1);
        let capacity = cfg.queue_capacity.max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let mut receivers = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (tx, rx) = sync_channel::<Job>(capacity);
            shards.push(Shard {
                sessions: SessionTable::new(per_entries, per_bytes),
                queue: tx,
                depth: AtomicUsize::new(0),
                shed: AtomicU64::new(0),
            });
            receivers.push(rx);
        }
        let state = ServerState {
            shards,
            metrics: Metrics::new(),
            store,
            ide: IdeState::default(),
            audit: AuditCounters::default(),
            plan: PlanCounters::default(),
            tool_runner,
            shutdown: AtomicBool::new(false),
            auto_name: AtomicU64::new(0),
            started: Instant::now(),
            cfg,
        };
        (state, receivers)
    }

    /// The shards (for in-process harnesses reading queue stats).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Which shard owns session `name`.
    pub fn shard_index(&self, name: &str) -> usize {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, name: &str) -> &Shard {
        &self.shards[self.shard_index(name)]
    }

    /// Look up a session by name in its owning shard.
    pub fn find_session(&self, name: &str) -> Option<Arc<Session>> {
        self.shard_of(name).sessions.get(name)
    }

    /// A fresh generated session name, unique daemon-wide (`s1`, `s2`, ...).
    pub fn generate_name(&self) -> String {
        format!("s{}", self.auto_name.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Sessions evicted so far, across every shard.
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.sessions.evictions()).sum()
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown (what the `shutdown` method does).
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Open the configured store directory, if any.
fn open_store(cfg: &ServerConfig) -> io::Result<Option<Arc<Store>>> {
    match &cfg.store_dir {
        None => Ok(None),
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            Ok(Some(Arc::new(Store::open(dir)?)))
        }
    }
}

/// A configured (not yet started) daemon.
pub struct Server {
    cfg: ServerConfig,
    tool_runner: Option<ToolRunner>,
}

impl Server {
    /// A daemon with `cfg`.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            cfg,
            tool_runner: None,
        }
    }

    /// Attach a tool registry dispatcher for the `run-tool` method.
    #[must_use]
    pub fn with_tool_runner(mut self, r: ToolRunner) -> Server {
        self.tool_runner = Some(r);
        self
    }

    /// Bind the TCP listener, open the store (when configured), and spawn
    /// the accept loop plus each shard's workers. Returns a handle carrying
    /// the bound address.
    ///
    /// # Errors
    /// Propagates bind failures and store-open failures.
    pub fn start(self) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&self.cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let store = open_store(&self.cfg)?;
        let num_shards = self.cfg.shards.max(1);
        let per_shard_workers = (self.cfg.workers / num_shards).max(1);
        let (state, receivers) = ServerState::new(self.cfg, self.tool_runner, store);
        let state = Arc::new(state);

        let mut worker_handles: Vec<JoinHandle<()>> = Vec::new();
        for (shard_idx, rx) in receivers.into_iter().enumerate() {
            let rx = Arc::new(Mutex::new(rx));
            for w in 0..per_shard_workers {
                let rx = Arc::clone(&rx);
                let st = Arc::clone(&state);
                worker_handles.push(
                    std::thread::Builder::new()
                        .name(format!("noelle-worker-{shard_idx}-{w}"))
                        .spawn(move || worker_loop(&st, shard_idx, &rx))
                        .expect("spawn worker"),
                );
            }
        }

        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_state = Arc::clone(&state);
        let accept_conns = Arc::clone(&conn_handles);
        let accept_handle = std::thread::Builder::new()
            .name("noelle-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_state, &accept_conns))
            .expect("spawn accept loop");

        Ok(RunningServer {
            addr,
            state,
            accept_handle,
            worker_handles,
            conn_handles,
        })
    }

    /// Build the daemon state without binding a socket or spawning
    /// threads: an in-process daemon for embedders (the latency benches,
    /// the `noelle-ide` tool's default mode) that drive it synchronously
    /// through [`run_request_text`]. The shard queues exist but have no
    /// workers; only the inline paths are meaningful.
    ///
    /// # Errors
    /// Propagates store-open failures.
    pub fn embedded(self) -> io::Result<Arc<ServerState>> {
        let store = open_store(&self.cfg)?;
        let (state, _receivers) = ServerState::new(self.cfg, self.tool_runner, store);
        Ok(Arc::new(state))
    }

    /// Serve one connection over stdin/stdout using newline-delimited JSON
    /// (the `--stdio` test mode): one request per line, one reply per line,
    /// synchronous, until EOF or `shutdown`.
    ///
    /// # Errors
    /// Propagates stdout write failures and store-open failures.
    pub fn serve_stdio(self, input: &mut impl BufRead, output: &mut impl Write) -> io::Result<()> {
        let store = open_store(&self.cfg)?;
        // The stdio server is synchronous: the shard queues and their
        // receivers are never used, only the sharded session tables.
        let (state, _receivers) = ServerState::new(self.cfg, self.tool_runner, store);
        let state = Arc::new(state);
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = match Json::parse(&line) {
                None => response_err(0, ErrorCode::BadRequest, "line is not valid JSON")
                    .to_string_compact(),
                Some(v) => match Request::from_json(&v) {
                    Err(e) => response_err(0, ErrorCode::BadRequest, &e).to_string_compact(),
                    Ok(req) => run_request_text(&state, &req),
                },
            };
            writeln!(output, "{reply}")?;
            output.flush()?;
            if state.is_shutting_down() {
                break;
            }
        }
        Ok(())
    }
}

/// A started daemon.
pub struct RunningServer {
    /// The bound listen address (resolved ephemeral port included).
    pub addr: SocketAddr,
    /// Shared state (exposed so in-process harnesses can read metrics).
    pub state: Arc<ServerState>,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RunningServer {
    /// Ask the daemon to stop (same as a `shutdown` request).
    pub fn trigger_shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Block until the accept loop, every connection reader, and every
    /// worker have exited. Queued requests are drained first.
    pub fn join(self) {
        let _ = self.accept_handle.join();
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("conn lock"));
        for h in handles {
            let _ = h.join();
        }
        for h in self.worker_handles {
            let _ = h.join();
        }
    }

    /// Trigger shutdown and wait for a full drain.
    pub fn shutdown_and_join(self) {
        self.trigger_shutdown();
        self.join();
    }
}

/// One admitted request: compute on a shard worker, then send the
/// serialized reply back to the connection thread (which may have given up
/// on its deadline).
struct Job {
    req: Request,
    reply: Sender<String>,
}

const ACCEPT_POLL: Duration = Duration::from_millis(20);
const READ_POLL: Duration = Duration::from_millis(50);
const WORKER_POLL: Duration = Duration::from_millis(50);

fn worker_loop(state: &Arc<ServerState>, shard_idx: usize, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = { rx.lock().expect("job queue lock").recv_timeout(WORKER_POLL) };
        match job {
            Ok(job) => {
                state.shards[shard_idx]
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                let reply = run_request_text(state, &job.req);
                let _ = job.reply.send(reply); // receiver may have timed out
            }
            // The queue senders live in `ServerState`, so disconnect never
            // fires in practice; the poll lets the worker notice shutdown
            // once its queue is drained.
            Err(RecvTimeoutError::Timeout) => {
                if state.is_shutting_down() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let st = Arc::clone(state);
                let h = std::thread::Builder::new()
                    .name("noelle-conn".to_string())
                    .spawn(move || connection_loop(stream, &st))
                    .expect("spawn connection");
                conn_handles.lock().expect("conn lock").push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // A fatal accept error is indistinguishable from shutdown
                // for every other thread; flip the flag so workers exit.
                state.trigger_shutdown();
                return;
            }
        }
    }
}

/// Read one frame, tolerating read-timeout polls so the thread can notice
/// shutdown between frames. Returns `None` on EOF, error, or shutdown.
fn read_frame_polling(stream: &mut impl io::Read, state: &ServerState) -> Option<Json> {
    loop {
        match read_frame(stream) {
            Ok(v) => return v,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.is_shutting_down() {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Clone `req` with `session` forced into its params (anonymous `load`
/// requests get their generated name *before* routing, so the session is
/// owned by the shard its name hashes to).
fn with_session(req: &Request, name: &str) -> Request {
    let mut params = req.params.as_object().cloned().unwrap_or_default();
    params.insert("session".to_string(), Json::Str(name.to_string()));
    Request {
        params: Json::Object(params),
        ..req.clone()
    }
}

/// Which shard queue `req` belongs on, or `None` for inline methods
/// (control-plane queries and requests that will fail fast without a
/// session).
fn routed_shard(state: &ServerState, req: &Request) -> Option<usize> {
    match req.method.as_str() {
        "ping" | "stats" | "metrics" | "shutdown" => None,
        // IDE methods run inline: a document's damage-scoped repair is the
        // fast path by construction, and serializing it behind a shard's
        // analysis builds would forfeit exactly the latency the diff-parser
        // buys.
        m if m.starts_with("ide/") => None,
        _ => param_str(req, "session").map(|name| state.shard_index(name)),
    }
}

/// Most replies a connection may owe before its reader stops pulling new
/// frames (backpressure on abusive pipelining; also bounds the reply
/// buffer a slow-reading client can pin).
const PIPELINE_DEPTH: usize = 128;

/// One reply owed to a connection, in request order.
enum PendingReply {
    /// Already serialized: inline methods, warm cache hits, shed or
    /// malformed requests.
    Ready(String),
    /// Owed by a shard worker; resolved under the request's deadline when
    /// its turn to be written comes.
    Waiting {
        rx: Receiver<String>,
        deadline: Instant,
        budget: Duration,
        id: i64,
        method: String,
    },
}

/// A connection is a reader/writer thread pair speaking a **pipelined**
/// protocol: the client may write any number of frames before reading, and
/// replies come back strictly in request order. The reader admits each
/// frame as it arrives (inline methods run immediately, shard work is
/// enqueued without waiting), so N pipelined analysis requests overlap on
/// the workers instead of serializing on the connection; the writer
/// resolves the FIFO of pending replies, applying each request's deadline
/// where the old sequential loop did. The bounded hand-off channel is the
/// pipelining depth.
fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Reads go through a buffer (one syscall pulls a whole frame, header
    // included); writes stay on the raw socket, owned by the writer.
    let mut reader = match stream.try_clone() {
        Ok(s) => io::BufReader::new(s),
        Err(_) => return,
    };
    let (tx, rx) = sync_channel::<PendingReply>(PIPELINE_DEPTH);
    let writer_state = Arc::clone(state);
    let writer = std::thread::Builder::new()
        .name("noelle-conn-writer".to_string())
        .spawn(move || reply_writer(stream, &writer_state, &rx))
        .expect("spawn connection writer");
    while !state.is_shutting_down() {
        let Some(frame) = read_frame_polling(&mut reader, state) else {
            break;
        };
        let pending = match Request::from_json(&frame) {
            Err(e) => {
                PendingReply::Ready(response_err(0, ErrorCode::BadRequest, &e).to_string_compact())
            }
            Ok(req) => {
                let req = if req.method == "load" && param_str(&req, "session").is_none() {
                    with_session(&req, &state.generate_name())
                } else {
                    req
                };
                match routed_shard(state, &req) {
                    // Control-plane methods (and fast-failing session-less
                    // requests) never queue behind analysis work.
                    None => PendingReply::Ready(run_request_text(state, &req)),
                    Some(shard_idx) => match fast_reply(state, shard_idx, &req) {
                        Some(r) => PendingReply::Ready(r),
                        None => submit(state, shard_idx, &req),
                    },
                }
            }
        };
        // A failed send means the writer died on a broken socket.
        if tx.send(pending).is_err() {
            break;
        }
    }
    drop(tx); // writer drains the owed replies, then exits
    let _ = writer.join();
}

/// The writer half of a connection: resolve owed replies in FIFO order and
/// frame them out. A request that misses its deadline gets a `timeout`
/// error here (the still-running build finishes in the background and
/// warms the cache), exactly as the sequential loop did.
fn reply_writer(mut stream: TcpStream, state: &Arc<ServerState>, rx: &Receiver<PendingReply>) {
    while let Ok(pending) = rx.recv() {
        let reply = match pending {
            PendingReply::Ready(r) => r,
            PendingReply::Waiting {
                rx,
                deadline,
                budget,
                id,
                method,
            } => {
                let left = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(left) {
                    Ok(r) => r,
                    Err(RecvTimeoutError::Timeout) => {
                        state.metrics.observe(&method, budget, Outcome::Timeout);
                        response_err(
                            id,
                            ErrorCode::Timeout,
                            &format!("deadline of {}ms exceeded", budget.as_millis()),
                        )
                        .to_string_compact()
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        response_err(id, ErrorCode::Shutdown, "daemon is shutting down")
                            .to_string_compact()
                    }
                }
            }
        };
        if write_frame_text(&mut stream, &reply).is_err() {
            // Dropping the receiver makes the reader's next send fail, so
            // both halves wind down together.
            return;
        }
    }
}

/// Serve a warm `pdg`/`loops` reply straight from the session's
/// serialized-reply cache, skipping the shard queue and its two thread
/// hops — without taking the build lock (the epoch check makes a stale
/// text unservable). Anything cold or stale falls back to `admit`, which
/// is what enforces deadlines and admission control.
fn fast_reply(state: &Arc<ServerState>, shard_idx: usize, req: &Request) -> Option<String> {
    let cacheable =
        req.method == "pdg" || (req.method == "loops" && param_str(req, "func").is_none());
    if !cacheable {
        return None;
    }
    let name = param_str(req, "session")?;
    let s = state.shards[shard_idx].sessions.get(name)?;
    let t = Instant::now();
    let text = s.cached_reply(&req.method, s.epoch())?;
    state.metrics.observe(&req.method, t.elapsed(), Outcome::Ok);
    Some(response_ok_text(req.id, &text))
}

/// Enqueue `req` on shard `shard_idx` without waiting for the reply (the
/// writer resolves it in order under the deadline). A full queue sheds
/// immediately with `overloaded`.
fn submit(state: &Arc<ServerState>, shard_idx: usize, req: &Request) -> PendingReply {
    let shard = &state.shards[shard_idx];
    let budget = Duration::from_millis(req.deadline_ms.unwrap_or(state.cfg.default_deadline_ms));
    let (reply_tx, reply_rx) = channel();
    let job = Job {
        req: req.clone(),
        reply: reply_tx,
    };
    // Count the slot before offering it so a racing worker's decrement
    // cannot underflow the gauge; undo on shed.
    shard.depth.fetch_add(1, Ordering::Relaxed);
    match shard.queue.try_send(job) {
        Ok(()) => PendingReply::Waiting {
            rx: reply_rx,
            deadline: Instant::now() + budget,
            budget,
            id: req.id,
            method: req.method.clone(),
        },
        Err(TrySendError::Full(_)) => {
            shard.depth.fetch_sub(1, Ordering::Relaxed);
            shard.shed.fetch_add(1, Ordering::Relaxed);
            state
                .metrics
                .observe(&req.method, Duration::ZERO, Outcome::Shed);
            PendingReply::Ready(
                response_err(
                    req.id,
                    ErrorCode::Overloaded,
                    &format!(
                        "shard {shard_idx} queue is full ({} pending); retry after backoff",
                        state.cfg.queue_capacity.max(1)
                    ),
                )
                .to_string_compact(),
            )
        }
        Err(TrySendError::Disconnected(_)) => {
            shard.depth.fetch_sub(1, Ordering::Relaxed);
            PendingReply::Ready(
                response_err(req.id, ErrorCode::Shutdown, "daemon is shutting down")
                    .to_string_compact(),
            )
        }
    }
}

/// The `ok` payload of a reply: either a value tree, or compact text
/// cached from an earlier serialization (the warm `pdg` fast path).
enum Body {
    Value(Json),
    Text(Arc<String>),
}

/// Execute `req` against `state` and serialize the reply, recording
/// metrics. This is the single dispatch point shared by the shard workers,
/// the inline control-plane path, and `--stdio` mode.
pub fn run_request_text(state: &Arc<ServerState>, req: &Request) -> String {
    let t = Instant::now();
    let result = dispatch(state, req);
    let latency = t.elapsed();
    match result {
        Ok(body) => {
            state.metrics.observe(&req.method, latency, Outcome::Ok);
            match body {
                Body::Value(v) => response_ok(req.id, v).to_string_compact(),
                Body::Text(text) => response_ok_text(req.id, &text),
            }
        }
        Err((code, msg)) => {
            state.metrics.observe(&req.method, latency, Outcome::Error);
            response_err(req.id, code, &msg).to_string_compact()
        }
    }
}

/// [`run_request_text`] returning the parsed reply value (for embedders
/// and tests that inspect replies structurally).
pub fn run_request(state: &Arc<ServerState>, req: &Request) -> Json {
    Json::parse(&run_request_text(state, req)).expect("replies are valid JSON")
}

type MethodResult = Result<Body, (ErrorCode, String)>;

fn bad(msg: impl Into<String>) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg.into())
}

fn param_str<'a>(req: &'a Request, key: &str) -> Option<&'a str> {
    req.params.get(key).and_then(Json::as_str)
}

fn load_module(path: &str) -> Result<Module, String> {
    // `workload:scale:N` builds the synthetic compilation-scale module with
    // N defined functions (deterministic), so benches and smoke tests can
    // exercise daemon behavior at sizes the bundled corpus does not reach.
    if let Some(n) = path.strip_prefix("workload:scale:") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad scale size '{n}' (expected a function count)"))?;
        return Ok(noelle_workloads::scale_module(n, 42));
    }
    if let Some(name) = path.strip_prefix("workload:") {
        return noelle_workloads::by_name(name)
            .map(|w| w.build())
            .ok_or_else(|| format!("unknown workload '{name}'"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    noelle_ir::parser::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

/// Resolve the *text* a document opens with: inline `text`, or a `path`
/// (file, `workload:NAME`, `workload:scale:N`) printed to `.nir` source so
/// the IDE session always edits real text.
fn load_document_text(req: &Request) -> Result<String, String> {
    if let Some(text) = param_str(req, "text") {
        return Ok(text.to_string());
    }
    let path = param_str(req, "path").ok_or("need 'text' or 'path'")?;
    if path.starts_with("workload:") {
        return Ok(noelle_ir::printer::print_module(&load_module(path)?));
    }
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// The tier an IDE document analyzes under. Unlike `load`, the default is
/// `basic`: the Full tier re-solves whole-module Andersen on edits, which
/// is the wrong trade for keystroke-latency diagnostics.
fn ide_tier(req: &Request) -> Result<AliasTier, (ErrorCode, String)> {
    match param_str(req, "tier").unwrap_or("basic") {
        "basic" => Ok(AliasTier::Basic),
        "full" => Ok(AliasTier::Full),
        other => Err(bad(format!("unknown tier '{other}'"))),
    }
}

/// Decode the `ide/change` payload: full `text`, or a line-range splice
/// `start_line`/`end_line`/`lines`.
fn ide_change_of(req: &Request) -> Result<Change, (ErrorCode, String)> {
    if let Some(text) = param_str(req, "text") {
        return Ok(Change::Full(text.to_string()));
    }
    let start_line = req.params.get("start_line").and_then(Json::as_u64);
    let end_line = req.params.get("end_line").and_then(Json::as_u64);
    let (Some(start_line), Some(end_line)) = (start_line, end_line) else {
        return Err(bad(
            "need 'text' or a splice ('start_line', 'end_line', 'lines')",
        ));
    };
    let lines = match req.params.get("lines") {
        None => Vec::new(),
        Some(Json::Array(xs)) => xs
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| bad("'lines' must be an array of strings"))
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(bad("'lines' must be an array of strings")),
    };
    Ok(Change::Splice {
        start_line: start_line as usize,
        end_line: end_line as usize,
        lines,
    })
}

fn session_of(state: &ServerState, req: &Request) -> Result<Arc<Session>, (ErrorCode, String)> {
    let name = param_str(req, "session").ok_or_else(|| bad("missing 'session' param"))?;
    state.find_session(name).ok_or_else(|| {
        (
            ErrorCode::NoSession,
            format!("no session '{name}' (evicted or never loaded)"),
        )
    })
}

fn func_by_name(m: &Module, name: &str) -> Option<FuncId> {
    m.func_ids().find(|&fid| m.func(fid).name == name)
}

/// Store counters as a JSON object (`null` when no store is configured).
fn store_json(state: &ServerState) -> Json {
    match &state.store {
        None => Json::Null,
        Some(store) => {
            let s = store.stats();
            Json::object([
                ("entries".to_string(), Json::Int(s.entries as i64)),
                (
                    "bytes_on_disk".to_string(),
                    Json::Int(s.bytes_on_disk as i64),
                ),
                ("hits".to_string(), Json::Int(s.hits as i64)),
                ("misses".to_string(), Json::Int(s.misses as i64)),
                ("writes".to_string(), Json::Int(s.writes as i64)),
                ("corrupt".to_string(), Json::Int(s.corrupt as i64)),
            ])
        }
    }
}

/// One stats row per shard: queue health and table occupancy.
fn shards_json(state: &ServerState) -> Json {
    Json::Array(
        state
            .shards
            .iter()
            .map(|sh| {
                Json::object([
                    ("sessions".to_string(), Json::Int(sh.sessions.len() as i64)),
                    (
                        "queue_depth".to_string(),
                        Json::Int(sh.queue_depth() as i64),
                    ),
                    (
                        "queue_capacity".to_string(),
                        Json::Int(state.cfg.queue_capacity.max(1) as i64),
                    ),
                    ("shed".to_string(), Json::Int(sh.shed_count() as i64)),
                    (
                        "evictions".to_string(),
                        Json::Int(sh.sessions.evictions() as i64),
                    ),
                ])
            })
            .collect(),
    )
}

/// The cross-shard session table view: every shard's rows merged and
/// sorted, with the daemon-wide budgets.
fn table_json(state: &ServerState) -> Json {
    let mut rows: Vec<(String, Json)> = Vec::new();
    for sh in &state.shards {
        rows.extend(sh.sessions.session_rows());
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    Json::object([
        ("count".to_string(), Json::Int(rows.len() as i64)),
        ("sessions".to_string(), Json::object(rows)),
        (
            "max_entries".to_string(),
            Json::Int(state.cfg.max_sessions as i64),
        ),
        (
            "max_bytes".to_string(),
            Json::Int(state.cfg.max_bytes as i64),
        ),
        ("evictions".to_string(), Json::Int(state.evictions() as i64)),
    ])
}

fn dispatch(state: &Arc<ServerState>, req: &Request) -> MethodResult {
    if let Some(v) = req.v {
        if v != PROTOCOL_VERSION {
            return Err((
                ErrorCode::VersionMismatch,
                format!("client speaks protocol v{v}, daemon speaks v{PROTOCOL_VERSION}"),
            ));
        }
    }
    if state.is_shutting_down() && req.method != "shutdown" {
        return Err((ErrorCode::Shutdown, "daemon is shutting down".into()));
    }
    match req.method.as_str() {
        "ping" => Ok(Body::Value(Json::object([
            ("pong".to_string(), Json::Bool(true)),
            (
                "uptime_ms".to_string(),
                Json::Int(state.started.elapsed().as_millis() as i64),
            ),
        ]))),
        "load" => {
            let path = param_str(req, "path").ok_or_else(|| bad("missing 'path' param"))?;
            let tier = match param_str(req, "tier").unwrap_or("full") {
                "basic" => AliasTier::Basic,
                "full" => AliasTier::Full,
                other => return Err(bad(format!("unknown tier '{other}'"))),
            };
            let m = load_module(path).map_err(|e| (ErrorCode::Internal, e))?;
            // TCP connections inject a generated name before routing; the
            // fallback covers stdio mode and direct embedders.
            let name = match param_str(req, "session") {
                Some(s) => s.to_string(),
                None => state.generate_name(),
            };
            let functions = m.functions().len();
            let mut noelle = Noelle::new(m, tier);
            if let Some(store) = &state.store {
                noelle.set_store(Arc::clone(store));
            }
            let s = state.shard_of(&name).sessions.insert(&name, noelle);
            Ok(Body::Value(Json::object([
                ("session".to_string(), Json::Str(name)),
                ("functions".to_string(), Json::Int(functions as i64)),
                (
                    "approx_bytes".to_string(),
                    Json::Int(s.approx_bytes() as i64),
                ),
            ])))
        }
        "pdg" => {
            let s = session_of(state, req)?;
            let text = {
                let mut n = s.noelle.lock().expect("session build lock");
                let before = n
                    .build_stats()
                    .get(&Abstraction::Pdg)
                    .map_or(0, |st| st.builds);
                let pdg = n.pdg();
                let builds = n.build_stats()[&Abstraction::Pdg].builds;
                if builds > before {
                    s.note_pdg_built(pdg.num_edges());
                }
                // The serialized reply is versioned by the session epoch,
                // read under the build lock: any mutating request bumps it
                // there, so a stale payload is never served. A rebuild
                // without a content change (store-warm reconstruction,
                // first build) yields identical text, so reuse is safe.
                let epoch = s.epoch();
                match s.cached_reply("pdg", epoch) {
                    Some(text) => text,
                    None => {
                        let text =
                            Arc::new(wire::pdg_to_json(n.module(), &pdg).to_string_compact());
                        s.store_reply("pdg", epoch, Arc::clone(&text));
                        text
                    }
                }
            };
            // The graph may have grown the session's footprint past budget.
            state.shard_of(&s.name).sessions.evict_over_budget();
            Ok(Body::Text(text))
        }
        "loops" => {
            let s = session_of(state, req)?;
            let mut n = s.noelle.lock().expect("session build lock");
            let whole_module = param_str(req, "func").is_none();
            let epoch = s.epoch();
            if whole_module {
                if let Some(text) = s.cached_reply("loops", epoch) {
                    return Ok(Body::Text(text));
                }
            }
            let fids: Vec<FuncId> = match param_str(req, "func") {
                Some(name) => vec![func_by_name(n.module(), name)
                    .ok_or_else(|| bad(format!("no function '{name}'")))?],
                None => n
                    .module()
                    .func_ids()
                    .filter(|&f| !n.module().func(f).is_declaration())
                    .collect(),
            };
            let mut per_fn = Vec::new();
            for fid in fids {
                let fname = n.module().func(fid).name.clone();
                let loops = n.loops_of(fid);
                per_fn.push((
                    fname,
                    Json::Array(loops.iter().map(wire::loop_to_json).collect()),
                ));
            }
            if whole_module {
                let text = Arc::new(Json::object(per_fn).to_string_compact());
                s.store_reply("loops", epoch, Arc::clone(&text));
                return Ok(Body::Text(text));
            }
            Ok(Body::Value(Json::object(per_fn)))
        }
        "sccdag" | "induction" | "invariants" => {
            let s = session_of(state, req)?;
            let fname = param_str(req, "func")
                .ok_or_else(|| bad("missing 'func' param"))?
                .to_string();
            let idx = req.params.get("loop").and_then(Json::as_u64).unwrap_or(0) as usize;
            let mut n = s.noelle.lock().expect("session build lock");
            let fid = func_by_name(n.module(), &fname)
                .ok_or_else(|| bad(format!("no function '{fname}'")))?;
            let loops = n.loops_of(fid);
            let l = loops
                .get(idx)
                .ok_or_else(|| bad(format!("function '{fname}' has {} loops", loops.len())))?
                .clone();
            let la = n.loop_abstraction(fid, l);
            Ok(Body::Value(match req.method.as_str() {
                "sccdag" => wire::sccdag_to_json(&la.sccdag),
                "induction" => wire::ivs_to_json(&la.ivs),
                _ => wire::invariants_to_json(&la.invariants),
            }))
        }
        "callgraph" => {
            let s = session_of(state, req)?;
            let mut n = s.noelle.lock().expect("session build lock");
            let _ = n.call_graph();
            let cg = n.cached_call_graph().expect("just built");
            Ok(Body::Value(wire::callgraph_to_json(n.module(), cg)))
        }
        "run-tool" => {
            let runner = state
                .tool_runner
                .as_ref()
                .ok_or_else(|| bad("this daemon was started without a tool registry"))?;
            let s = session_of(state, req)?;
            let tool = param_str(req, "tool").ok_or_else(|| bad("missing 'tool' param"))?;
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let summary = runner(&mut n, &req.params);
            // The tool may have edited the module even on failure: advance
            // the epoch under the build lock so no stale cached reply text
            // survives the mutation.
            s.bump_epoch();
            let summary = summary.map_err(|e| (ErrorCode::Internal, e))?;
            let requested = n
                .requested()
                .iter()
                .map(|a| Json::Str(a.short_name().to_string()))
                .collect();
            Ok(Body::Value(Json::object([
                ("tool".to_string(), Json::Str(tool.to_string())),
                ("summary".to_string(), Json::Str(summary)),
                ("requested".to_string(), Json::Array(requested)),
            ])))
        }
        "lint" => {
            let s = session_of(state, req)?;
            let check = param_str(req, "check").unwrap_or("all");
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let findings =
                noelle_lint::run_checks(&mut n, check).map_err(|e| (ErrorCode::BadRequest, e))?;
            Ok(Body::Value(envelope(
                "lint",
                noelle_lint::render_json(&findings),
            )))
        }
        "audit" => {
            let s = session_of(state, req)?;
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let audit = noelle_lint::run_audit(&mut n);
            state.audit.record(&audit);
            let findings = noelle_lint::audit_findings(n.module(), &audit);
            Ok(Body::Value(envelope(
                "audit",
                Json::object([
                    ("audit".to_string(), audit.to_json()),
                    (
                        "diagnostics".to_string(),
                        noelle_lint::render_json(&findings),
                    ),
                ]),
            )))
        }
        "plan" => {
            let s = session_of(state, req)?;
            let workers = req
                .params
                .get("workers")
                .and_then(Json::as_u64)
                .map(|w| w as usize)
                .unwrap_or(noelle_plan::PlanOptions::default().workers);
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let plan = noelle_plan::plan_module(
                &mut n,
                &noelle_plan::PlanOptions {
                    workers,
                    ..noelle_plan::PlanOptions::default()
                },
            );
            state.plan.record(&plan);
            Ok(Body::Value(envelope(
                "plan",
                Json::object([("plan".to_string(), plan.to_json())]),
            )))
        }
        "ide/open" => {
            let tier = ide_tier(req)?;
            let text = load_document_text(req).map_err(|e| (ErrorCode::Internal, e))?;
            let name = match param_str(req, "doc") {
                Some(d) => d.to_string(),
                None => format!(
                    "d{}",
                    state.ide.auto_name.fetch_add(1, Ordering::Relaxed) + 1
                ),
            };
            let doc = DocSession::open(name.clone(), &text, tier);
            let functions = doc.noelle().map_or(0, |n| n.module().functions().len());
            let diagnostics = doc.diagnostics_json();
            state
                .ide
                .docs
                .lock()
                .expect("ide doc table lock")
                .insert(name.clone(), doc);
            state.ide.opens.fetch_add(1, Ordering::Relaxed);
            state.ide.diag_pushes.fetch_add(1, Ordering::Relaxed);
            Ok(Body::Value(Json::object([
                ("doc".to_string(), Json::Str(name)),
                ("version".to_string(), Json::Int(1)),
                ("functions".to_string(), Json::Int(functions as i64)),
                ("diagnostics".to_string(), diagnostics),
            ])))
        }
        "ide/change" => {
            let name = param_str(req, "doc").ok_or_else(|| bad("missing 'doc' param"))?;
            let version = req
                .params
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing integer 'version' param"))?;
            let change = ide_change_of(req)?;
            let mut docs = state.ide.docs.lock().expect("ide doc table lock");
            let doc = docs
                .get_mut(name)
                .ok_or_else(|| (ErrorCode::NoSession, format!("no open document '{name}'")))?;
            let outcome = doc.change(version, change).map_err(bad)?;
            // Push semantics: the reply carries only the audit hints this
            // change re-derived; `ide/diagnostics` pulls the full set.
            let diagnostics = doc.push_diagnostics_json();
            drop(docs);
            state.ide.diag_pushes.fetch_add(1, Ordering::Relaxed);
            Ok(Body::Value(Json::object([
                ("doc".to_string(), Json::Str(name.to_string())),
                ("version".to_string(), Json::Int(outcome.version as i64)),
                ("incremental".to_string(), Json::Bool(outcome.incremental)),
                (
                    "changed_functions".to_string(),
                    Json::Array(
                        outcome
                            .changed_functions
                            .iter()
                            .map(|f| Json::Str(f.clone()))
                            .collect(),
                    ),
                ),
                ("relinted".to_string(), Json::Int(outcome.relinted as i64)),
                ("diagnostics".to_string(), diagnostics),
            ])))
        }
        "ide/diagnostics" => {
            let name = param_str(req, "doc").ok_or_else(|| bad("missing 'doc' param"))?;
            let docs = state.ide.docs.lock().expect("ide doc table lock");
            let doc = docs
                .get(name)
                .ok_or_else(|| (ErrorCode::NoSession, format!("no open document '{name}'")))?;
            let diagnostics = doc.diagnostics_json();
            drop(docs);
            state.ide.diag_pushes.fetch_add(1, Ordering::Relaxed);
            Ok(Body::Value(diagnostics))
        }
        "ide/close" => {
            let name = param_str(req, "doc").ok_or_else(|| bad("missing 'doc' param"))?;
            let doc = state
                .ide
                .docs
                .lock()
                .expect("ide doc table lock")
                .remove(name)
                .ok_or_else(|| (ErrorCode::NoSession, format!("no open document '{name}'")))?;
            let c = doc.counters();
            {
                let mut retired = state.ide.retired.lock().expect("ide retired lock");
                retired.changes += c.changes;
                retired.incremental_reparses += c.incremental_reparses;
                retired.full_reparses += c.full_reparses;
                retired.parse_failures += c.parse_failures;
                retired.relinted_functions += c.relinted_functions;
                retired.reaudited_functions += c.reaudited_functions;
            }
            state.ide.closes.fetch_add(1, Ordering::Relaxed);
            Ok(Body::Value(Json::object([
                ("doc".to_string(), Json::Str(name.to_string())),
                ("closed".to_string(), Json::Bool(true)),
                ("changes".to_string(), Json::Int(c.changes as i64)),
                (
                    "incremental_reparses".to_string(),
                    Json::Int(c.incremental_reparses as i64),
                ),
                (
                    "full_reparses".to_string(),
                    Json::Int(c.full_reparses as i64),
                ),
            ])))
        }
        "stats" => Ok(Body::Value(Json::object([
            (
                "uptime_ms".to_string(),
                Json::Int(state.started.elapsed().as_millis() as i64),
            ),
            ("protocol_version".to_string(), Json::Int(PROTOCOL_VERSION)),
            ("table".to_string(), table_json(state)),
            ("shards".to_string(), shards_json(state)),
            ("store".to_string(), store_json(state)),
            ("ide".to_string(), state.ide.stats_json()),
            ("audit".to_string(), state.audit.to_json()),
            ("plan".to_string(), state.plan.to_json()),
        ]))),
        "metrics" => {
            let mut managers: Vec<(String, Json)> = Vec::new();
            for sh in &state.shards {
                for s in sh.sessions.snapshot() {
                    let stats = s
                        .noelle
                        .lock()
                        .map(|n| wire::manager_stats_to_json(&n))
                        .unwrap_or(Json::Null);
                    managers.push((s.name.clone(), stats));
                }
            }
            managers.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(Body::Value(Json::object([
                ("requests".to_string(), state.metrics.to_json()),
                ("sessions".to_string(), Json::object(managers)),
                ("evictions".to_string(), Json::Int(state.evictions() as i64)),
                ("shards".to_string(), shards_json(state)),
                ("store".to_string(), store_json(state)),
                ("ide".to_string(), state.ide.stats_json()),
                ("audit".to_string(), state.audit.to_json()),
                ("plan".to_string(), state.plan.to_json()),
            ])))
        }
        "shutdown" => {
            state.trigger_shutdown();
            Ok(Body::Value(Json::object([(
                "stopping".to_string(),
                Json::Bool(true),
            )])))
        }
        other => Err((
            ErrorCode::UnknownMethod,
            format!("unknown method '{other}'"),
        )),
    }
}
