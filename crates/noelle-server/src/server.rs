//! The daemon: request dispatch, worker pool, deadlines, shutdown.
//!
//! Connections are cheap reader threads; the analysis work runs on a
//! **fixed worker pool** so a flood of clients cannot oversubscribe the
//! machine. A connection thread frames one request, enqueues it, and waits
//! for the reply with a deadline — if the deadline passes, the client gets
//! a `timeout` error immediately and the (still running) build finishes in
//! the background and warms the cache for the next attempt.
//!
//! Shutdown is graceful: the `shutdown` method flips a flag; the accept
//! loop stops, connection readers wind down, and the workers drain every
//! queued request before exiting, so no accepted request is dropped
//! unanswered (modulo its own deadline).

use crate::metrics::{Metrics, Outcome};
use crate::protocol::{
    read_frame, response_err, response_ok, write_frame, ErrorCode, Request, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionTable};
use noelle_core::json::Json;
use noelle_core::noelle::{Abstraction, AliasTier, Noelle};
use noelle_core::wire;
use noelle_ir::module::{FuncId, Module};
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A tool dispatcher injected by the binary that owns the tool registry
/// (`noelle-served` wires in `noelle_tools::registry`), keeping this crate
/// free of a dependency cycle on the transforms. Receives the raw request
/// params; the registry parses them into its own typed invocation so tool
/// options are interpreted identically across every entry point.
pub type ToolRunner = Arc<dyn Fn(&mut Noelle, &Json) -> Result<String, String> + Send + Sync>;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Fixed worker pool size.
    pub workers: usize,
    /// Session-table entry budget.
    pub max_sessions: usize,
    /// Session-table approximate byte budget.
    pub max_bytes: usize,
    /// Default per-request deadline (ms) when the request carries none.
    pub default_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_sessions: 8,
            max_bytes: 256 << 20,
            default_deadline_ms: 30_000,
        }
    }
}

/// Shared daemon state.
pub struct ServerState {
    cfg: ServerConfig,
    /// Loaded sessions.
    pub sessions: SessionTable,
    /// Request counters and latency histograms.
    pub metrics: Metrics,
    tool_runner: Option<ToolRunner>,
    shutdown: AtomicBool,
    started: Instant,
}

impl ServerState {
    fn new(cfg: ServerConfig, tool_runner: Option<ToolRunner>) -> ServerState {
        ServerState {
            sessions: SessionTable::new(cfg.max_sessions, cfg.max_bytes),
            metrics: Metrics::new(),
            tool_runner,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown (what the `shutdown` method does).
    pub fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A configured (not yet started) daemon.
pub struct Server {
    cfg: ServerConfig,
    tool_runner: Option<ToolRunner>,
}

impl Server {
    /// A daemon with `cfg`.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            cfg,
            tool_runner: None,
        }
    }

    /// Attach a tool registry dispatcher for the `run-tool` method.
    #[must_use]
    pub fn with_tool_runner(mut self, r: ToolRunner) -> Server {
        self.tool_runner = Some(r);
        self
    }

    /// Bind the TCP listener and spawn the accept loop plus the worker
    /// pool. Returns a handle carrying the bound address.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(self) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&self.cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = self.cfg.workers.max(1);
        let state = Arc::new(ServerState::new(self.cfg, self.tool_runner));

        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("noelle-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker")
            })
            .collect();

        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_state = Arc::clone(&state);
        let accept_conns = Arc::clone(&conn_handles);
        let accept_handle = std::thread::Builder::new()
            .name("noelle-accept".to_string())
            .spawn(move || {
                accept_loop(&listener, &accept_state, &job_tx, &accept_conns);
                // job_tx drops here; once connection threads finish, the
                // workers see a closed queue and drain out.
            })
            .expect("spawn accept loop");

        Ok(RunningServer {
            addr,
            state,
            accept_handle,
            worker_handles,
            conn_handles,
        })
    }

    /// Serve one connection over stdin/stdout using newline-delimited JSON
    /// (the `--stdio` test mode): one request per line, one reply per line,
    /// synchronous, until EOF or `shutdown`.
    ///
    /// # Errors
    /// Propagates stdout write failures.
    pub fn serve_stdio(self, input: &mut impl BufRead, output: &mut impl Write) -> io::Result<()> {
        let state = Arc::new(ServerState::new(self.cfg, self.tool_runner));
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let reply = match Json::parse(&line) {
                None => response_err(0, ErrorCode::BadRequest, "line is not valid JSON"),
                Some(v) => match Request::from_json(&v) {
                    Err(e) => response_err(0, ErrorCode::BadRequest, &e),
                    Ok(req) => run_request(&state, &req),
                },
            };
            writeln!(output, "{}", reply.to_string_compact())?;
            output.flush()?;
            if state.is_shutting_down() {
                break;
            }
        }
        Ok(())
    }
}

/// A started daemon.
pub struct RunningServer {
    /// The bound listen address (resolved ephemeral port included).
    pub addr: SocketAddr,
    /// Shared state (exposed so in-process harnesses can read metrics).
    pub state: Arc<ServerState>,
    accept_handle: JoinHandle<()>,
    worker_handles: Vec<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RunningServer {
    /// Ask the daemon to stop (same as a `shutdown` request).
    pub fn trigger_shutdown(&self) {
        self.state.trigger_shutdown();
    }

    /// Block until the accept loop, every connection reader, and every
    /// worker have exited. Queued requests are drained first.
    pub fn join(self) {
        let _ = self.accept_handle.join();
        let handles = std::mem::take(&mut *self.conn_handles.lock().expect("conn lock"));
        for h in handles {
            let _ = h.join();
        }
        for h in self.worker_handles {
            let _ = h.join();
        }
    }

    /// Trigger shutdown and wait for a full drain.
    pub fn shutdown_and_join(self) {
        self.trigger_shutdown();
        self.join();
    }
}

/// One queued request: compute, then send the reply back to the
/// connection thread (which may have given up on its deadline).
struct Job {
    state: Arc<ServerState>,
    req: Request,
    reply: Sender<Json>,
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = match rx.lock().expect("job queue lock").recv() {
            Ok(j) => j,
            Err(_) => return, // queue closed and drained
        };
        let reply = run_request(&job.state, &job.req);
        let _ = job.reply.send(reply); // receiver may have timed out
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(20);
const READ_POLL: Duration = Duration::from_millis(50);

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    job_tx: &Sender<Job>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !state.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _)) => {
                let st = Arc::clone(state);
                let tx = job_tx.clone();
                let h = std::thread::Builder::new()
                    .name("noelle-conn".to_string())
                    .spawn(move || connection_loop(stream, &st, &tx))
                    .expect("spawn connection");
                conn_handles.lock().expect("conn lock").push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    }
}

/// Read one frame, tolerating read-timeout polls so the thread can notice
/// shutdown between frames. Returns `None` on EOF, error, or shutdown.
fn read_frame_polling(stream: &mut TcpStream, state: &ServerState) -> Option<Json> {
    loop {
        match read_frame(stream) {
            Ok(v) => return v,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if state.is_shutting_down() {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn connection_loop(mut stream: TcpStream, state: &Arc<ServerState>, job_tx: &Sender<Job>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    while !state.is_shutting_down() {
        let Some(frame) = read_frame_polling(&mut stream, state) else {
            return;
        };
        let req = match Request::from_json(&frame) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_frame(&mut stream, &response_err(0, ErrorCode::BadRequest, &e));
                continue;
            }
        };
        let deadline =
            Duration::from_millis(req.deadline_ms.unwrap_or(state.cfg.default_deadline_ms));
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            state: Arc::clone(state),
            req: req.clone(),
            reply: reply_tx,
        };
        if job_tx.send(job).is_err() {
            let _ = write_frame(
                &mut stream,
                &response_err(req.id, ErrorCode::Shutdown, "daemon is shutting down"),
            );
            return;
        }
        let reply = match reply_rx.recv_timeout(deadline) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => {
                state
                    .metrics
                    .observe(&req.method, deadline, Outcome::Timeout);
                response_err(
                    req.id,
                    ErrorCode::Timeout,
                    &format!("deadline of {}ms exceeded", deadline.as_millis()),
                )
            }
            Err(RecvTimeoutError::Disconnected) => {
                response_err(req.id, ErrorCode::Shutdown, "daemon is shutting down")
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Execute `req` against `state`, recording metrics. This is the single
/// dispatch point shared by the worker pool and `--stdio` mode.
pub fn run_request(state: &Arc<ServerState>, req: &Request) -> Json {
    let t = Instant::now();
    let result = dispatch(state, req);
    let latency = t.elapsed();
    match result {
        Ok(v) => {
            state.metrics.observe(&req.method, latency, Outcome::Ok);
            response_ok(req.id, v)
        }
        Err((code, msg)) => {
            state.metrics.observe(&req.method, latency, Outcome::Error);
            response_err(req.id, code, &msg)
        }
    }
}

type MethodResult = Result<Json, (ErrorCode, String)>;

fn bad(msg: impl Into<String>) -> (ErrorCode, String) {
    (ErrorCode::BadRequest, msg.into())
}

fn param_str<'a>(req: &'a Request, key: &str) -> Option<&'a str> {
    req.params.get(key).and_then(Json::as_str)
}

fn load_module(path: &str) -> Result<Module, String> {
    if let Some(name) = path.strip_prefix("workload:") {
        return noelle_workloads::by_name(name)
            .map(|w| w.build())
            .ok_or_else(|| format!("unknown workload '{name}'"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    noelle_ir::parser::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

fn session_of(state: &ServerState, req: &Request) -> Result<Arc<Session>, (ErrorCode, String)> {
    let name = param_str(req, "session").ok_or_else(|| bad("missing 'session' param"))?;
    state.sessions.get(name).ok_or_else(|| {
        (
            ErrorCode::NoSession,
            format!("no session '{name}' (evicted or never loaded)"),
        )
    })
}

fn func_by_name(m: &Module, name: &str) -> Option<FuncId> {
    m.func_ids().find(|&fid| m.func(fid).name == name)
}

fn dispatch(state: &Arc<ServerState>, req: &Request) -> MethodResult {
    if let Some(v) = req.v {
        if v != PROTOCOL_VERSION {
            return Err((
                ErrorCode::VersionMismatch,
                format!("client speaks protocol v{v}, daemon speaks v{PROTOCOL_VERSION}"),
            ));
        }
    }
    if state.is_shutting_down() && req.method != "shutdown" {
        return Err((ErrorCode::Shutdown, "daemon is shutting down".into()));
    }
    match req.method.as_str() {
        "ping" => Ok(Json::object([
            ("pong".to_string(), Json::Bool(true)),
            (
                "uptime_ms".to_string(),
                Json::Int(state.started.elapsed().as_millis() as i64),
            ),
        ])),
        "load" => {
            let path = param_str(req, "path").ok_or_else(|| bad("missing 'path' param"))?;
            let tier = match param_str(req, "tier").unwrap_or("full") {
                "basic" => AliasTier::Basic,
                "full" => AliasTier::Full,
                other => return Err(bad(format!("unknown tier '{other}'"))),
            };
            let m = load_module(path).map_err(|e| (ErrorCode::Internal, e))?;
            let name = match param_str(req, "session") {
                Some(s) => s.to_string(),
                None => state.sessions.generate_name(),
            };
            let functions = m.functions().len();
            let s = state.sessions.insert(&name, Noelle::new(m, tier));
            Ok(Json::object([
                ("session".to_string(), Json::Str(name)),
                ("functions".to_string(), Json::Int(functions as i64)),
                (
                    "approx_bytes".to_string(),
                    Json::Int(s.approx_bytes() as i64),
                ),
            ]))
        }
        "pdg" => {
            let s = session_of(state, req)?;
            let out = {
                let mut n = s.noelle.lock().expect("session build lock");
                let before = n
                    .build_stats()
                    .get(&Abstraction::Pdg)
                    .map_or(0, |st| st.builds);
                let pdg = n.pdg();
                if n.build_stats()[&Abstraction::Pdg].builds > before {
                    s.note_pdg_built(pdg.num_edges());
                }
                wire::pdg_to_json(n.module(), &pdg)
            };
            // The graph may have grown the session's footprint past budget.
            state.sessions.evict_over_budget();
            Ok(out)
        }
        "loops" => {
            let s = session_of(state, req)?;
            let mut n = s.noelle.lock().expect("session build lock");
            let fids: Vec<FuncId> = match param_str(req, "func") {
                Some(name) => vec![func_by_name(n.module(), name)
                    .ok_or_else(|| bad(format!("no function '{name}'")))?],
                None => n
                    .module()
                    .func_ids()
                    .filter(|&f| !n.module().func(f).is_declaration())
                    .collect(),
            };
            let mut per_fn = Vec::new();
            for fid in fids {
                let fname = n.module().func(fid).name.clone();
                let loops = n.loops_of(fid);
                per_fn.push((
                    fname,
                    Json::Array(loops.iter().map(wire::loop_to_json).collect()),
                ));
            }
            Ok(Json::object(per_fn))
        }
        "sccdag" | "induction" | "invariants" => {
            let s = session_of(state, req)?;
            let fname = param_str(req, "func")
                .ok_or_else(|| bad("missing 'func' param"))?
                .to_string();
            let idx = req.params.get("loop").and_then(Json::as_u64).unwrap_or(0) as usize;
            let mut n = s.noelle.lock().expect("session build lock");
            let fid = func_by_name(n.module(), &fname)
                .ok_or_else(|| bad(format!("no function '{fname}'")))?;
            let loops = n.loops_of(fid);
            let l = loops
                .get(idx)
                .ok_or_else(|| bad(format!("function '{fname}' has {} loops", loops.len())))?
                .clone();
            let la = n.loop_abstraction(fid, l);
            Ok(match req.method.as_str() {
                "sccdag" => wire::sccdag_to_json(&la.sccdag),
                "induction" => wire::ivs_to_json(&la.ivs),
                _ => wire::invariants_to_json(&la.invariants),
            })
        }
        "callgraph" => {
            let s = session_of(state, req)?;
            let mut n = s.noelle.lock().expect("session build lock");
            let _ = n.call_graph();
            let cg = n.cached_call_graph().expect("just built");
            Ok(wire::callgraph_to_json(n.module(), cg))
        }
        "run-tool" => {
            let runner = state
                .tool_runner
                .as_ref()
                .ok_or_else(|| bad("this daemon was started without a tool registry"))?;
            let s = session_of(state, req)?;
            let tool = param_str(req, "tool").ok_or_else(|| bad("missing 'tool' param"))?;
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let summary = runner(&mut n, &req.params).map_err(|e| (ErrorCode::Internal, e))?;
            let requested = n
                .requested()
                .iter()
                .map(|a| Json::Str(a.short_name().to_string()))
                .collect();
            Ok(Json::object([
                ("tool".to_string(), Json::Str(tool.to_string())),
                ("summary".to_string(), Json::Str(summary)),
                ("requested".to_string(), Json::Array(requested)),
            ]))
        }
        "lint" => {
            let s = session_of(state, req)?;
            let check = param_str(req, "check").unwrap_or("all");
            let mut n = s.noelle.lock().expect("session build lock");
            n.reset_requests();
            let findings =
                noelle_lint::run_checks(&mut n, check).map_err(|e| (ErrorCode::BadRequest, e))?;
            Ok(noelle_lint::render_json(&findings))
        }
        "stats" => Ok(Json::object([
            (
                "uptime_ms".to_string(),
                Json::Int(state.started.elapsed().as_millis() as i64),
            ),
            ("protocol_version".to_string(), Json::Int(PROTOCOL_VERSION)),
            ("table".to_string(), state.sessions.stats_json()),
        ])),
        "metrics" => {
            let managers = state
                .sessions
                .snapshot()
                .into_iter()
                .map(|s| {
                    let stats = s
                        .noelle
                        .lock()
                        .map(|n| wire::manager_stats_to_json(&n))
                        .unwrap_or(Json::Null);
                    (s.name.clone(), stats)
                })
                .collect::<Vec<_>>();
            Ok(Json::object([
                ("requests".to_string(), state.metrics.to_json()),
                ("sessions".to_string(), Json::object(managers)),
                (
                    "evictions".to_string(),
                    Json::Int(state.sessions.evictions() as i64),
                ),
            ]))
        }
        "shutdown" => {
            state.trigger_shutdown();
            Ok(Json::object([("stopping".to_string(), Json::Bool(true))]))
        }
        other => Err(bad(format!("unknown method '{other}'"))),
    }
}
