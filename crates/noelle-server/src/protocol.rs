//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on a TCP connection is one **frame**: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON holding exactly
//! one value (the hardened [`Json::parse`] rejects trailing garbage). In
//! `--stdio` mode the daemon speaks newline-delimited JSON instead — one
//! request or reply per line — so shell pipelines and CI smoke tests can
//! drive it without binary framing.
//!
//! Requests are objects `{"id": <int>, "method": <str>, "params": <obj>}`
//! with an optional `"deadline_ms"` and an optional protocol version `"v"`.
//! A request carrying a `"v"` other than [`PROTOCOL_VERSION`] is rejected
//! with a structured `version_mismatch` error (not a parse failure), so old
//! clients get a debuggable reply instead of a dropped connection; requests
//! without `"v"` are accepted for compatibility with version-1 clients.
//! Replies echo the id, carry `"v"`, and hold either `"ok"` (the result
//! value) or `"error"` (`{"code", "message"}`).

use noelle_core::json::Json;
use std::io::{self, Read, Write};

/// Current protocol version. Version 1 is the original unversioned wire
/// format; version 2 added the `"v"` field itself, per-function cache
/// counters in `stats`/`metrics`, and registry-parsed `run-tool` params.
pub const PROTOCOL_VERSION: i64 = 2;

/// Upper bound on a frame payload; anything larger is a protocol error
/// rather than an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one length-prefixed frame.
///
/// # Errors
/// Propagates IO failures; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, v: &Json) -> io::Result<()> {
    write_frame_text(w, &v.to_string_compact())
}

/// Write one length-prefixed frame from already-serialized compact JSON.
/// The hot path for cached replies: no value tree is rebuilt or re-printed
/// per request.
///
/// # Errors
/// Propagates IO failures; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame_text(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    // One assembled buffer -> one write syscall -> one TCP segment under
    // nodelay; a split header/payload write costs a second packet per frame.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF before any
/// prefix byte.
///
/// # Errors
/// IO failures, oversized frames, invalid UTF-8, and JSON syntax errors
/// (including trailing garbage) all surface as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    match read_frame_text(r)? {
        None => Ok(None),
        Some(text) => Json::parse(&text)
            .map(Some)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame is not valid JSON")),
    }
}

/// Read one length-prefixed frame as raw text, skipping the JSON parse.
/// The throughput-sensitive twin of [`read_frame`] for callers that only
/// inspect the envelope. `Ok(None)` on clean EOF before any prefix byte.
///
/// # Errors
/// IO failures, oversized frames, and invalid UTF-8 surface as
/// `InvalidData`.
pub fn read_frame_text(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// A decoded request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen id echoed in the reply.
    pub id: i64,
    /// Method name (`load`, `pdg`, `stats`, ...).
    pub method: String,
    /// Method parameters (an object; `{}` when omitted).
    pub params: Json,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Protocol version the client speaks (`None` for version-1 clients,
    /// which predate the field).
    pub v: Option<i64>,
}

impl Request {
    /// Decode a request frame.
    ///
    /// # Errors
    /// Returns a human-readable message when the frame is not a request
    /// object.
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let obj = v.as_object().ok_or("request must be an object")?;
        let id = obj
            .get("id")
            .and_then(Json::as_i64)
            .ok_or("request needs an integer 'id'")?;
        let method = obj
            .get("method")
            .and_then(Json::as_str)
            .ok_or("request needs a string 'method'")?
            .to_string();
        let params = obj
            .get("params")
            .cloned()
            .unwrap_or_else(|| Json::object([]));
        if params.as_object().is_none() {
            return Err("'params' must be an object".into());
        }
        let deadline_ms = obj.get("deadline_ms").and_then(Json::as_u64);
        let v = obj.get("v").and_then(Json::as_i64);
        Ok(Request {
            id,
            method,
            params,
            deadline_ms,
            v,
        })
    }

    /// Encode a request (the client side of [`Request::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Int(self.id)),
            ("method".to_string(), Json::Str(self.method.clone())),
            ("params".to_string(), self.params.clone()),
        ];
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Int(d as i64)));
        }
        if let Some(v) = self.v {
            fields.push(("v".to_string(), Json::Int(v)));
        }
        Json::object(fields)
    }
}

/// Error codes a reply can carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// Malformed request or unknown method/params.
    BadRequest,
    /// Named session does not exist (or was evicted).
    NoSession,
    /// The request missed its deadline.
    Timeout,
    /// The daemon is shutting down.
    Shutdown,
    /// Analysis or tool failure.
    Internal,
    /// The client speaks a different protocol version.
    VersionMismatch,
    /// The target shard's request queue is full; the request was shed
    /// before any work ran. Retrying after a backoff is safe.
    Overloaded,
    /// The method name is not part of the protocol. Distinct from
    /// [`ErrorCode::BadRequest`] so clients can feature-probe: a newer
    /// client talking to an older daemon sees `unknown_method` and can
    /// degrade gracefully instead of treating the request as malformed.
    UnknownMethod,
}

impl ErrorCode {
    /// Wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NoSession => "no_session",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
            ErrorCode::VersionMismatch => "version_mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::UnknownMethod => "unknown_method",
        }
    }
}

/// A successful reply.
pub fn response_ok(id: i64, result: Json) -> Json {
    Json::object([
        ("id".to_string(), Json::Int(id)),
        ("ok".to_string(), result),
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
    ])
}

/// A successful reply spliced around an already-compact `ok` payload.
/// Byte-identical to `response_ok(id, v).to_string_compact()` when
/// `ok_compact == v.to_string_compact()` — objects serialize their keys in
/// `BTreeMap` order, and `"id" < "ok" < "v"`.
pub fn response_ok_text(id: i64, ok_compact: &str) -> String {
    format!("{{\"id\":{id},\"ok\":{ok_compact},\"v\":{PROTOCOL_VERSION}}}")
}

/// An error reply.
pub fn response_err(id: i64, code: ErrorCode, message: &str) -> Json {
    Json::object([
        ("id".to_string(), Json::Int(id)),
        (
            "error".to_string(),
            Json::object([
                ("code".to_string(), Json::Str(code.name().into())),
                ("message".to_string(), Json::Str(message.into())),
            ]),
        ),
        ("v".to_string(), Json::Int(PROTOCOL_VERSION)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = Json::object([
            ("id".to_string(), Json::Int(7)),
            ("method".to_string(), Json::Str("pdg".into())),
        ]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        assert_eq!(&buf[..4], &(buf.len() as u32 - 4).to_be_bytes());
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(v));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_and_garbage_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
        let mut bad = Vec::new();
        bad.extend_from_slice(&5u32.to_be_bytes());
        bad.extend_from_slice(b"{} {}"); // trailing garbage inside the frame
        assert!(read_frame(&mut &bad[..]).is_err());
    }

    #[test]
    fn spliced_ok_reply_matches_tree_serialization() {
        let ok = Json::object([
            ("num_edges".to_string(), Json::Int(41)),
            (
                "nodes".to_string(),
                Json::Array(vec![Json::Str("a".into())]),
            ),
        ]);
        let spliced = response_ok_text(7, &ok.to_string_compact());
        assert_eq!(spliced, response_ok(7, ok).to_string_compact());
    }

    #[test]
    fn request_decoding() {
        let v = Json::parse(r#"{"id":1,"method":"load","params":{"path":"x"},"deadline_ms":50}"#)
            .unwrap();
        let r = Request::from_json(&v).unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(r.method, "load");
        assert_eq!(r.deadline_ms, Some(50));
        assert_eq!(Request::from_json(&r.to_json()).unwrap().method, "load");
        assert!(Request::from_json(&Json::Int(3)).is_err());
        assert!(Request::from_json(&Json::parse(r#"{"id":1}"#).unwrap()).is_err());
    }
}
