//! Canned data-flow analyses built on the [DFE](crate::dfe).
//!
//! The paper notes NOELLE "provides a set of common data flow analyses that
//! rely on DFE"; these are the ones the custom tools consume: liveness (ENV,
//! scheduler) and reaching stores (CARAT, COOS).

use crate::dfe::{BitSet, DataFlowEngine, DataFlowProblem, Direction, Meet};
use noelle_ir::cfg::Cfg;
use noelle_ir::inst::{Inst, InstId};
use noelle_ir::module::{BlockId, Function};
use noelle_ir::value::Value;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// Live-variable analysis over SSA values (arguments and instruction
/// results).
///
/// Phi operands are conservatively treated as used at the head of the phi's
/// block, which slightly over-approximates liveness along the other incoming
/// edges — safe for every consumer in this code base (environment sizing and
/// scheduling legality).
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Values live on entry to each block.
    pub live_in: HashMap<BlockId, HashSet<Value>>,
    /// Values live on exit from each block.
    pub live_out: HashMap<BlockId, HashSet<Value>>,
}

struct LivenessProblem<'f> {
    f: &'f Function,
    index_of: HashMap<Value, usize>,
    n: usize,
}

impl LivenessProblem<'_> {
    fn gen_kill(&self, b: BlockId) -> (BitSet, BitSet) {
        // Walk the block backwards accumulating upward-exposed uses.
        let mut gen = BitSet::new(self.n);
        let mut kill = BitSet::new(self.n);
        for &id in self.f.block(b).insts.iter().rev() {
            if let Some(&di) = self.index_of.get(&Value::Inst(id)) {
                kill.insert(di);
                gen.remove(di);
            }
            for op in self.f.inst(id).operands() {
                if let Some(&ui) = self.index_of.get(&op) {
                    gen.insert(ui);
                }
            }
        }
        (gen, kill)
    }
}

impl DataFlowProblem for LivenessProblem<'_> {
    fn universe(&self) -> usize {
        self.n
    }
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_of(&self, b: BlockId) -> BitSet {
        self.gen_kill(b).0
    }
    fn kill_of(&self, b: BlockId) -> BitSet {
        self.gen_kill(b).1
    }
}

impl Liveness {
    /// Compute liveness for `f`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        // Universe: arguments + value-producing instructions.
        let mut values: Vec<Value> = (0..f.params.len() as u32).map(Value::Arg).collect();
        for id in f.inst_ids() {
            if f.inst(id).result_type().is_value_type() {
                values.push(Value::Inst(id));
            }
        }
        let index_of: HashMap<Value, usize> =
            values.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let problem = LivenessProblem {
            f,
            index_of: index_of.clone(),
            n: values.len(),
        };
        let res = DataFlowEngine::new().solve(f, cfg, &problem);
        let to_set = |bits: &BitSet| -> HashSet<Value> { bits.iter().map(|i| values[i]).collect() };
        Liveness {
            live_in: res.inb.iter().map(|(&b, s)| (b, to_set(s))).collect(),
            live_out: res.outb.iter().map(|(&b, s)| (b, to_set(s))).collect(),
        }
    }

    /// True if `v` is live on entry to `b`.
    pub fn is_live_in(&self, b: BlockId, v: Value) -> bool {
        self.live_in
            .get(&b)
            .map(|s| s.contains(&v))
            .unwrap_or(false)
    }

    /// True if `v` is live on exit from `b`.
    pub fn is_live_out(&self, b: BlockId, v: Value) -> bool {
        self.live_out
            .get(&b)
            .map(|s| s.contains(&v))
            .unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// Reaching stores
// ---------------------------------------------------------------------------

/// Forward "reaching stores" analysis: which store instructions may reach
/// each block entry without an intervening store to the *same* pointer value.
///
/// Kills are syntactic (identical pointer `Value`), which is sound: a store
/// kills at least itself.
#[derive(Clone, Debug)]
pub struct ReachingStores {
    /// Stores reaching each block entry.
    pub reach_in: HashMap<BlockId, HashSet<InstId>>,
    /// Stores reaching each block exit.
    pub reach_out: HashMap<BlockId, HashSet<InstId>>,
    stores: Vec<InstId>,
}

struct ReachingProblem<'f> {
    f: &'f Function,
    stores: Vec<InstId>,
    index_of: HashMap<InstId, usize>,
    by_ptr: HashMap<Value, Vec<usize>>,
}

impl DataFlowProblem for ReachingProblem<'_> {
    fn universe(&self) -> usize {
        self.stores.len()
    }
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_of(&self, b: BlockId) -> BitSet {
        let mut gen = BitSet::new(self.stores.len());
        for &id in &self.f.block(b).insts {
            if let Inst::Store { ptr, .. } = self.f.inst(id) {
                // A later store to the same pointer kills earlier gens.
                if let Some(group) = self.by_ptr.get(ptr) {
                    for &g in group {
                        gen.remove(g);
                    }
                }
                gen.insert(self.index_of[&id]);
            }
        }
        gen
    }
    fn kill_of(&self, b: BlockId) -> BitSet {
        let mut kill = BitSet::new(self.stores.len());
        for &id in &self.f.block(b).insts {
            if let Inst::Store { ptr, .. } = self.f.inst(id) {
                if let Some(group) = self.by_ptr.get(ptr) {
                    for &g in group {
                        kill.insert(g);
                    }
                }
            }
        }
        kill
    }
}

impl ReachingStores {
    /// Compute reaching stores for `f`.
    pub fn compute(f: &Function, cfg: &Cfg) -> ReachingStores {
        let stores: Vec<InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|&i| matches!(f.inst(i), Inst::Store { .. }))
            .collect();
        let index_of: HashMap<InstId, usize> =
            stores.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut by_ptr: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, &s) in stores.iter().enumerate() {
            if let Inst::Store { ptr, .. } = f.inst(s) {
                by_ptr.entry(*ptr).or_default().push(i);
            }
        }
        let problem = ReachingProblem {
            f,
            stores: stores.clone(),
            index_of,
            by_ptr,
        };
        let res = DataFlowEngine::new().solve(f, cfg, &problem);
        let to_set =
            |bits: &BitSet| -> HashSet<InstId> { bits.iter().map(|i| stores[i]).collect() };
        ReachingStores {
            reach_in: res.inb.iter().map(|(&b, s)| (b, to_set(s))).collect(),
            reach_out: res.outb.iter().map(|(&b, s)| (b, to_set(s))).collect(),
            stores,
        }
    }

    /// All store instructions of the function, in layout order.
    pub fn stores(&self) -> &[InstId] {
        &self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::types::Type;

    #[test]
    fn liveness_in_loop() {
        // n is live throughout the loop; i2 is live only across the back edge.
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        let n = Value::Arg(0);
        assert!(lv.is_live_in(header, n));
        assert!(lv.is_live_in(body, n)); // needed next iteration
        assert!(!lv.is_live_in(exit, n));
        assert!(lv.is_live_out(body, i2));
        assert!(lv.is_live_in(exit, i)); // returned
    }

    #[test]
    fn liveness_dead_value_not_live() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let dead = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        let live = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(3),
            Value::const_i64(4),
        );
        b.ret(Some(live));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.is_live_out(entry, dead));
        // `live` is consumed by the terminator inside the same block, so it
        // is not live-out either.
        assert!(!lv.is_live_out(entry, live));
    }

    #[test]
    fn reaching_stores_killed_by_same_pointer() {
        // store 1 -> p; store 2 -> p; only the second reaches the exit block.
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let next = b.block("next");
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        b.store(Type::I64, Value::const_i64(1), p);
        b.store(Type::I64, Value::const_i64(2), p);
        b.br(next);
        b.switch_to(next);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rs = ReachingStores::compute(&f, &cfg);
        assert_eq!(rs.stores().len(), 2);
        let reach = &rs.reach_in[&next];
        assert_eq!(reach.len(), 1);
        assert!(reach.contains(&rs.stores()[1]));
    }

    #[test]
    fn reaching_stores_merge_at_join() {
        // Two stores on different branches both reach the join.
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let l = b.block("l");
        let r = b.block("r");
        let j = b.block("j");
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.cond_br(b.arg(0), l, r);
        b.switch_to(l);
        b.store(Type::I64, Value::const_i64(1), p);
        b.br(j);
        b.switch_to(r);
        b.store(Type::I64, Value::const_i64(2), q);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rs = ReachingStores::compute(&f, &cfg);
        assert_eq!(rs.reach_in[&j].len(), 2);
    }
}
