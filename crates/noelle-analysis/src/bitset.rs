//! Sparse bitset rows for the points-to solver.
//!
//! Andersen's analysis is dominated by set unions over small-integer object
//! ids. A `BTreeSet<usize>` pays a pointer chase and an allocation per
//! element; a packed `Vec<u64>` pays one word per 64 ids and unions with a
//! straight-line `|=` loop.
//!
//! Rows are *windowed*: the word array starts at the row's lowest occupied
//! word (`base`), not at word 0. Object ids are assigned in module order, so
//! a function's points-to rows cluster around the ids its own objects and
//! its callers' allocations were given — often a narrow band high up in a
//! large module's id space. A dense-from-zero row would pay
//! `O(max_id)` words for such a band, making solver time and memory grow
//! with *module* size instead of row population; the window keeps both
//! proportional to the span actually used.

/// A growable bitset over `usize` ids, packed into 64-bit words starting at
/// a per-row word offset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    /// Index of the first word `words[0]` covers (ids `base*64..`).
    base: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set.
    pub fn new() -> BitSet {
        BitSet::default()
    }

    /// Grow the window so it covers word index `w`.
    fn cover(&mut self, w: usize) {
        if self.words.is_empty() {
            self.base = w;
            self.words.push(0);
        } else if w < self.base {
            let shift = self.base - w;
            let old = std::mem::take(&mut self.words);
            self.words = vec![0; old.len() + shift];
            self.words[shift..].copy_from_slice(&old);
            self.base = w;
        } else if w >= self.base + self.words.len() {
            self.words.resize(w - self.base + 1, 0);
        }
    }

    /// Insert `i`; returns true if it was not already present.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.cover(w);
        let mask = 1u64 << b;
        let word = &mut self.words[w - self.base];
        let had = *word & mask != 0;
        *word |= mask;
        !had
    }

    /// True if `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w < self.base {
            return false;
        }
        self.words
            .get(w - self.base)
            .is_some_and(|x| x & (1u64 << b) != 0)
    }

    /// Union `other` into `self`; returns true if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        if other.words.is_empty() {
            return false;
        }
        // Trim `other`'s window to its occupied extent before aligning, so
        // a row that was once widened but since stayed sparse doesn't force
        // this row's window open.
        let lo = match other.words.iter().position(|&w| w != 0) {
            Some(i) => i,
            None => return false,
        };
        let hi = other.words.iter().rposition(|&w| w != 0).unwrap();
        self.cover(other.base + lo);
        self.cover(other.base + hi);
        let mut grew = false;
        for k in lo..=hi {
            let b = other.words[k];
            if b == 0 {
                continue;
            }
            let a = &mut self.words[other.base + k - self.base];
            let merged = *a | b;
            grew |= merged != *a;
            *a = merged;
        }
        grew
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of ids present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let base = self.base;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((base + wi) * 64 + b)
            })
        })
    }

    /// Heap bytes backing this row.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_iter_match_btreeset() {
        let ids = [0usize, 1, 63, 64, 65, 130, 1000, 64, 0];
        let mut bs = BitSet::new();
        let mut reference = BTreeSet::new();
        for &i in &ids {
            assert_eq!(bs.insert(i), reference.insert(i), "insert {i}");
        }
        assert_eq!(bs.len(), reference.len());
        assert_eq!(
            bs.iter().collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
        for i in 0..1100 {
            assert_eq!(bs.contains(i), reference.contains(&i), "contains {i}");
        }
        assert!(!bs.is_empty());
        assert!(BitSet::new().is_empty());
    }

    #[test]
    fn high_first_insert_keeps_window_small() {
        // A row whose first id is high must not allocate words from zero.
        let mut bs = BitSet::new();
        bs.insert(1_000_000);
        assert!(
            bs.heap_bytes() <= 64,
            "window not applied: {}",
            bs.heap_bytes()
        );
        assert!(bs.contains(1_000_000));
        assert!(!bs.contains(0));
        assert!(!bs.contains(999_935));
        // Growing downward afterwards still works.
        bs.insert(3);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![3, 1_000_000]);
        assert_eq!(bs.len(), 2);
    }

    #[test]
    fn union_reports_growth() {
        let mut a = BitSet::new();
        a.insert(3);
        a.insert(200);
        let mut b = BitSet::new();
        b.insert(3);
        assert!(!b.is_empty());
        // b ∪ a grows b; a ∪ b does not grow a.
        assert!(b.union_with(&a));
        assert!(!a.union_with(&b));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![3, 200]);
        // Unioning an equal set is a no-op.
        assert!(!b.union_with(&a));
    }

    #[test]
    fn union_aligns_disjoint_windows() {
        let mut hi = BitSet::new();
        hi.insert(10_000);
        let mut lo = BitSet::new();
        lo.insert(5);
        assert!(hi.union_with(&lo));
        assert_eq!(hi.iter().collect::<Vec<_>>(), vec![5, 10_000]);
        let empty = BitSet::new();
        assert!(!hi.union_with(&empty));
        let mut into_empty = BitSet::new();
        assert!(into_empty.union_with(&hi));
        assert_eq!(into_empty.iter().collect::<Vec<_>>(), vec![5, 10_000]);
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let mut a = BitSet::new();
        assert_eq!(a.heap_bytes(), 0);
        a.insert(512);
        assert!(a.heap_bytes() >= 8);
    }
}
