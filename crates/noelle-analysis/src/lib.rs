//! # noelle-analysis
//!
//! The low-level code analyses that power NOELLE-rs abstractions:
//!
//! - [`dfe`] — the paper's *data-flow engine* (DFE): an optimized bit-vector
//!   solver with basic-block granularity, a work-list algorithm, and
//!   RPO/loop-based priority;
//! - [`analyses`] — canned data-flow analyses built on the DFE (liveness,
//!   reaching definitions), used by ENV, the scheduler, and custom tools;
//! - [`alias`] — two alias-analysis stacks: a *basic* LLVM-like stack and a
//!   *state-of-the-art* stack adding Andersen-style inclusion-based points-to
//!   analysis (standing in for the external SCAF and SVF analyses the paper
//!   integrates);
//! - [`modref`] — mod/ref summaries for call instructions;
//! - [`scev`] — scalar-evolution-lite: affine recurrence recognition and
//!   constant trip counts, powering the IV abstraction.

pub mod alias;
pub mod analyses;
pub mod bitset;
pub mod dfe;
pub mod modref;
pub mod scev;

pub use alias::{AliasAnalysis, AliasResult, AndersenAlias, BasicAlias, MemoryObject};
pub use dfe::{BitSet, DataFlowEngine, DataFlowProblem, Direction, Meet};
