//! Scalar-evolution-lite: affine recurrence recognition and constant trip
//! counts.
//!
//! The paper lists *scalar evolution* among the LLVM abstractions NOELLE
//! re-implements with user-controlled lifetime. This module recognizes
//! `{start, +, step}` add-recurrences rooted at loop-header phis and derives
//! constant trip counts for governed loops; the IV abstraction in
//! `noelle-core` builds on it.

use noelle_ir::inst::{BinOp, IcmpPred, Inst, InstId, Terminator};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Function;
use noelle_ir::value::{Constant, Value};

/// An affine recurrence `value(k) = start + k * step` carried by a header
/// phi (`step` is negated for `sub` updates).
#[derive(Clone, Debug, PartialEq)]
pub struct AddRec {
    /// The header phi carrying the recurrence.
    pub phi: InstId,
    /// Value on loop entry.
    pub start: Value,
    /// Loop-invariant step added each iteration.
    pub step: Value,
    /// The instruction computing the next value (the `add`/`sub` feeding the
    /// phi around the back edge).
    pub update: InstId,
    /// True if the update subtracts the step instead of adding it.
    pub negated: bool,
}

impl AddRec {
    /// The step as a signed constant, if it is one (negated for subtracting
    /// updates).
    pub fn const_step(&self) -> Option<i64> {
        match self.step {
            Value::Const(Constant::Int(v, _)) => Some(if self.negated { -v } else { v }),
            _ => None,
        }
    }

    /// The start as a signed constant, if it is one.
    pub fn const_start(&self) -> Option<i64> {
        match self.start {
            Value::Const(Constant::Int(v, _)) => Some(v),
            _ => None,
        }
    }
}

/// True if `v` is trivially invariant with respect to loop `l`: a constant,
/// argument, global, or an instruction defined outside the loop. (The full
/// PDG-powered invariant analysis lives in `noelle-core`; this weaker check
/// is all recurrence *detection* needs.)
pub fn trivially_loop_invariant(f: &Function, l: &LoopInfo, v: Value) -> bool {
    match v {
        Value::Const(_) | Value::Arg(_) | Value::Global(_) | Value::Func(_) => true,
        Value::Inst(id) => !l.contains(f.parent_block(id)),
    }
}

/// Find every affine recurrence rooted at a header phi of `l`.
pub fn affine_recurrences(f: &Function, l: &LoopInfo) -> Vec<AddRec> {
    let mut out = Vec::new();
    for phi_id in f.phis(l.header) {
        let incomings = match f.inst(phi_id) {
            Inst::Phi { incomings, .. } => incomings.clone(),
            _ => unreachable!("phis() returns phis"),
        };
        let mut start: Option<Value> = None;
        let mut update_val: Option<Value> = None;
        let mut ok = true;
        for (pred, v) in &incomings {
            if l.contains(*pred) {
                match update_val {
                    None => update_val = Some(*v),
                    Some(u) if u == *v => {}
                    _ => ok = false,
                }
            } else {
                match start {
                    None => start = Some(*v),
                    Some(s) if s == *v => {}
                    _ => ok = false,
                }
            }
        }
        let (Some(start), Some(update_val), true) = (start, update_val, ok) else {
            continue;
        };
        let Some(update) = update_val.as_inst() else {
            continue;
        };
        if !l.contains(f.parent_block(update)) {
            continue;
        }
        if let Inst::Bin { op, lhs, rhs, .. } = f.inst(update) {
            let (step, negated) = match op {
                BinOp::Add => {
                    if *lhs == Value::Inst(phi_id) {
                        (*rhs, false)
                    } else if *rhs == Value::Inst(phi_id) {
                        (*lhs, false)
                    } else {
                        continue;
                    }
                }
                BinOp::Sub => {
                    if *lhs == Value::Inst(phi_id) {
                        (*rhs, true)
                    } else {
                        continue;
                    }
                }
                _ => continue,
            };
            if trivially_loop_invariant(f, l, step) {
                out.push(AddRec {
                    phi: phi_id,
                    start,
                    step,
                    update,
                    negated,
                });
            }
        }
    }
    out
}

/// The exit condition of a counted loop: the compare governing the exit
/// branch, which recurrence it tests, and the loop-invariant bound.
#[derive(Clone, Debug)]
pub struct ExitCondition {
    /// The compare instruction.
    pub cmp: InstId,
    /// The recurrence being compared (index into the `affine_recurrences`
    /// result passed in).
    pub rec_index: usize,
    /// True if the compared value is the *updated* IV (post-increment),
    /// false if it is the phi itself.
    pub compares_update: bool,
    /// The loop-invariant bound.
    pub bound: Value,
    /// Predicate, normalized so the recurrence is the left operand.
    pub pred: IcmpPred,
    /// True if the branch *continues* the loop when the predicate holds.
    pub continue_on_true: bool,
}

/// Find the exit condition of `l` tested in an exiting block, if its shape is
/// `icmp(iv-or-update, invariant)` feeding a conditional branch with one edge
/// leaving the loop.
pub fn exit_condition(f: &Function, l: &LoopInfo, recs: &[AddRec]) -> Option<ExitCondition> {
    for &exiting in &l.exiting_blocks() {
        let Some(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        }) = f.terminator(exiting)
        else {
            continue;
        };
        let cmp = cond.as_inst()?;
        let Inst::Icmp { pred, lhs, rhs, .. } = f.inst(cmp) else {
            continue;
        };
        let classify = |v: Value| -> Option<(usize, bool)> {
            recs.iter().enumerate().find_map(|(i, r)| {
                if v == Value::Inst(r.phi) {
                    Some((i, false))
                } else if v == Value::Inst(r.update) {
                    Some((i, true))
                } else {
                    None
                }
            })
        };
        let (rec_index, compares_update, bound, pred) = match (classify(*lhs), classify(*rhs)) {
            (Some((i, upd)), None) if trivially_loop_invariant(f, l, *rhs) => (i, upd, *rhs, *pred),
            (None, Some((i, upd))) if trivially_loop_invariant(f, l, *lhs) => {
                (i, upd, *lhs, pred.swapped())
            }
            _ => continue,
        };
        let then_in = l.contains(*then_bb);
        let else_in = l.contains(*else_bb);
        let continue_on_true = match (then_in, else_in) {
            (true, false) => true,
            (false, true) => false,
            _ => continue,
        };
        return Some(ExitCondition {
            cmp,
            rec_index,
            compares_update,
            bound,
            pred,
            continue_on_true,
        });
    }
    None
}

/// Constant trip count of `l` — the number of times the loop body runs — if
/// the governing recurrence, bound, and shape are all statically known.
pub fn const_trip_count(f: &Function, l: &LoopInfo) -> Option<i64> {
    let recs = affine_recurrences(f, l);
    let cond = exit_condition(f, l, &recs)?;
    let rec = &recs[cond.rec_index];
    let start = rec.const_start()?;
    let step = rec.const_step()?;
    let bound = match cond.bound {
        Value::Const(Constant::Int(v, _)) => v,
        _ => return None,
    };
    if step == 0 {
        return None;
    }
    // Normalize to a "continue while pred(iv_tested, bound)" predicate.
    let pred = if cond.continue_on_true {
        cond.pred
    } else {
        // Continue when the predicate is false: invert it.
        match cond.pred {
            IcmpPred::Eq => IcmpPred::Ne,
            IcmpPred::Ne => IcmpPred::Eq,
            IcmpPred::Slt => IcmpPred::Sge,
            IcmpPred::Sle => IcmpPred::Sgt,
            IcmpPred::Sgt => IcmpPred::Sle,
            IcmpPred::Sge => IcmpPred::Slt,
            IcmpPred::Ult => IcmpPred::Uge,
            IcmpPred::Ule => IcmpPred::Ugt,
            IcmpPred::Ugt => IcmpPred::Ule,
            IcmpPred::Uge => IcmpPred::Ult,
        }
    };
    // The value seen by the k-th test (0-based) is start + k*step when the
    // phi is tested, or start + (k+1)*step when the updated value is tested.
    let first = start + if cond.compares_update { step } else { 0 };

    // For unsigned predicates, only handle the non-negative range where they
    // coincide with the signed ones.
    if matches!(
        pred,
        IcmpPred::Ult | IcmpPred::Ule | IcmpPred::Ugt | IcmpPred::Uge
    ) && (first < 0 || bound < 0)
    {
        return None;
    }

    // N = number of consecutive passing tests, starting from the k = 0 test.
    let passes: i64 = match pred {
        IcmpPred::Slt | IcmpPred::Ult => {
            if step <= 0 {
                return None; // moving away from the bound or not at all
            }
            if first >= bound {
                0
            } else {
                (bound - first + step - 1).div_euclid(step)
            }
        }
        IcmpPred::Sle | IcmpPred::Ule => {
            if step <= 0 {
                return None;
            }
            if first > bound {
                0
            } else {
                (bound - first).div_euclid(step) + 1
            }
        }
        IcmpPred::Sgt | IcmpPred::Ugt => {
            if step >= 0 {
                return None;
            }
            if first <= bound {
                0
            } else {
                (first - bound + (-step) - 1).div_euclid(-step)
            }
        }
        IcmpPred::Sge | IcmpPred::Uge => {
            if step >= 0 {
                return None;
            }
            if first < bound {
                0
            } else {
                (first - bound).div_euclid(-step) + 1
            }
        }
        IcmpPred::Ne => {
            let diff = bound - first;
            if diff == 0 {
                0
            } else if diff % step == 0 && diff / step > 0 {
                diff / step
            } else {
                return None; // never hits the bound exactly: endless
            }
        }
        IcmpPred::Eq => return None,
    };

    // While-shaped loops run the body once per passing test; do-while loops
    // run the body once before the first test as well.
    let runs = passes + i64::from(l.is_do_while());
    (runs >= 0).then_some(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::loops::LoopForest;
    use noelle_ir::types::Type;

    fn counted_loop(start: i64, step: i64, bound: i64) -> (Function, LoopInfo) {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(start))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, Value::const_i64(bound));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(step));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (f, l)
    }

    #[test]
    fn recognizes_affine_recurrence() {
        let (f, l) = counted_loop(0, 1, 10);
        let recs = affine_recurrences(&f, &l);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.const_start(), Some(0));
        assert_eq!(r.const_step(), Some(1));
        assert!(!r.negated);
    }

    #[test]
    fn trip_counts_for_common_shapes() {
        for (start, step, bound, expect) in [
            (0, 1, 10, 10),
            (0, 2, 10, 5),
            (0, 3, 10, 4),
            (5, 1, 10, 5),
            (0, 1, 0, 0),
            (7, 1, 3, 0),
        ] {
            let (f, l) = counted_loop(start, step, bound);
            assert_eq!(
                const_trip_count(&f, &l),
                Some(expect),
                "start={start} step={step} bound={bound}"
            );
        }
    }

    #[test]
    fn non_constant_bound_has_no_trip_count() {
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = &forest.loops()[0];
        // Recurrence is found but the bound is an argument.
        assert_eq!(affine_recurrences(&f, l).len(), 1);
        assert_eq!(const_trip_count(&f, l), None);
        // The exit condition is still recognized symbolically.
        let recs = affine_recurrences(&f, l);
        let cond = exit_condition(&f, l, &recs).expect("found");
        assert_eq!(cond.bound, Value::Arg(0));
        assert!(cond.continue_on_true);
    }

    #[test]
    fn down_counting_loop() {
        // for (i = 10; i > 0; i -= 2): 5 iterations
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(10))]);
        let c = b.icmp(IcmpPred::Sgt, Type::I64, i, Value::const_i64(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Sub, Type::I64, i, Value::const_i64(2));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = &forest.loops()[0];
        let recs = affine_recurrences(&f, l);
        assert_eq!(recs[0].const_step(), Some(-2));
        assert_eq!(const_trip_count(&f, l), Some(5));
    }

    #[test]
    fn non_affine_phi_rejected() {
        // i = phi; i2 = i * 2 — geometric, not affine.
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(1))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, Value::const_i64(100));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Mul, Type::I64, i, Value::const_i64(2));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        assert!(affine_recurrences(&f, &forest.loops()[0]).is_empty());
    }

    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::module::Function;
}
