//! Alias analyses.
//!
//! The paper's PDG is powered by a stack of alias analyses: LLVM's own basic
//! rules plus the external SCAF and SVF frameworks. This module provides the
//! equivalent two tiers:
//!
//! - [`BasicAlias`] — the "vanilla LLVM" tier: underlying-object rules
//!   (distinct allocations don't alias), constant-offset `gep` disambiguation,
//!   and strict-aliasing (TBAA-like) type rules;
//! - [`AndersenAlias`] — the "state-of-the-art" tier: a whole-program,
//!   flow-insensitive, inclusion-based (Andersen-style) points-to analysis
//!   with heap cloning by allocation site, escape handling through external
//!   calls, and iterative resolution of indirect-call targets.
//!
//! Figure 3 of the paper compares the fraction of memory dependences each
//! tier disproves; `noelle-bench` reproduces that comparison with these two
//! implementations.

use crate::bitset::BitSet;
use noelle_ir::bytes::{ByteReader, ByteWriter, DecodeError};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{FuncId, GlobalId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::{Constant, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Outcome of an alias query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasResult {
    /// The two pointers never address overlapping memory.
    No,
    /// The two pointers may address overlapping memory.
    May,
    /// The two pointers always address exactly the same memory.
    Must,
}

/// One function's canonicalized points-to rows, as produced by
/// [`AndersenAlias::rows_by_function`]: for each pointer value (keyed
/// `(0, inst_id)` for instruction results, `(1, arg_index)` for arguments),
/// the bounded set of abstract objects it may address.
pub type PointsToRows = BTreeMap<(u8, u32), BTreeSet<MemoryObject>>;

/// An abstract memory object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MemoryObject {
    /// A module-level global.
    Global(GlobalId),
    /// A stack allocation, identified by its `alloca`.
    Alloca(FuncId, InstId),
    /// A heap allocation, identified by its allocation call site.
    Heap(FuncId, InstId),
    /// A function (for function-pointer resolution).
    Function(FuncId),
    /// Memory we cannot model (externally provided, integer-cast pointers).
    Unknown,
}

impl MemoryObject {
    fn encode(&self, w: &mut ByteWriter) {
        match *self {
            MemoryObject::Global(g) => {
                w.u8(0);
                w.varint(u64::from(g.0));
            }
            MemoryObject::Alloca(f, i) => {
                w.u8(1);
                w.varint(u64::from(f.0));
                w.varint(u64::from(i.0));
            }
            MemoryObject::Heap(f, i) => {
                w.u8(2);
                w.varint(u64::from(f.0));
                w.varint(u64::from(i.0));
            }
            MemoryObject::Function(f) => {
                w.u8(3);
                w.varint(u64::from(f.0));
            }
            MemoryObject::Unknown => w.u8(4),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<MemoryObject, DecodeError> {
        let id32 = |r: &mut ByteReader<'_>, ctx| {
            let v = r.varint(ctx)?;
            u32::try_from(v).map_err(|_| DecodeError::new(ctx))
        };
        match r.u8("memory-object: tag")? {
            0 => Ok(MemoryObject::Global(GlobalId(id32(
                r,
                "memory-object: global",
            )?))),
            1 => Ok(MemoryObject::Alloca(
                FuncId(id32(r, "memory-object: alloca func")?),
                InstId(id32(r, "memory-object: alloca inst")?),
            )),
            2 => Ok(MemoryObject::Heap(
                FuncId(id32(r, "memory-object: heap func")?),
                InstId(id32(r, "memory-object: heap inst")?),
            )),
            3 => Ok(MemoryObject::Function(FuncId(id32(
                r,
                "memory-object: function",
            )?))),
            4 => Ok(MemoryObject::Unknown),
            _ => Err(DecodeError::new("memory-object: tag")),
        }
    }
}

/// Stable binary encoding of one function's [`PointsToRows`]. Rows are
/// written in `BTreeMap`/`BTreeSet` order, so equal rows always produce
/// identical bytes — the property the store's round-trip oracle asserts.
pub fn encode_rows(rows: &PointsToRows) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.varint(rows.len() as u64);
    for (&(space, idx), set) in rows {
        w.u8(space);
        w.varint(u64::from(idx));
        w.varint(set.len() as u64);
        for o in set {
            o.encode(&mut w);
        }
    }
    w.into_bytes()
}

/// Decode rows encoded by [`encode_rows`]. Total: malformed input surfaces
/// as a [`DecodeError`], never a panic, and the store treats it as a miss.
///
/// # Errors
/// Truncated input, trailing bytes, out-of-domain tags, non-canonical key
/// or set ordering, and duplicate keys are all rejected.
pub fn decode_rows(bytes: &[u8]) -> Result<PointsToRows, DecodeError> {
    const MAX: usize = 1 << 28;
    let mut r = ByteReader::new(bytes);
    let n = r.count(MAX, "points-to rows: row count")?;
    let mut rows = PointsToRows::new();
    for _ in 0..n {
        let space = r.u8("points-to rows: key space")?;
        if space > 1 {
            return Err(DecodeError::new("points-to rows: key space"));
        }
        let idx = r.varint("points-to rows: key index")?;
        let idx = u32::try_from(idx).map_err(|_| DecodeError::new("points-to rows: key index"))?;
        let key = (space, idx);
        if rows.last_key_value().is_some_and(|(k, _)| *k >= key) {
            return Err(DecodeError::new("points-to rows: key order"));
        }
        let m = r.count(MAX, "points-to rows: set size")?;
        let mut set = BTreeSet::new();
        for _ in 0..m {
            let o = MemoryObject::decode(&mut r)?;
            if set.last().is_some_and(|p| *p >= o) {
                return Err(DecodeError::new("points-to rows: object order"));
            }
            set.insert(o);
        }
        rows.insert(key, set);
    }
    r.finish("points-to rows: trailing bytes")?;
    Ok(rows)
}

/// Interface shared by all alias analyses: answer whether two pointer values
/// of function `fid` may address the same memory.
///
/// `Sync` is a supertrait so `&dyn AliasAnalysis` can be shared across the
/// per-function PDG construction threads; every analysis here is immutable
/// after construction (or, for [`CachedAlias`], internally synchronized).
pub trait AliasAnalysis: Sync {
    /// Query aliasing of pointers `a` and `b`, both values of function `fid`.
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult;

    /// The set of abstract objects pointer `ptr` may address, or `None` when
    /// the analysis cannot bound it. The contract consumed by the PDG's
    /// base-object bucketing: whenever `base_objects` returns disjoint
    /// non-`None` sets for two pointers, `alias` on that pair returns
    /// [`AliasResult::No`] — so the pair can be skipped without querying.
    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        let _ = (fid, ptr);
        None
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Underlying objects
// ---------------------------------------------------------------------------

/// The syntactic base(s) of a pointer value, chased through `gep`s, pointer
/// casts, `select`s and `phi`s (bounded depth). `None` in the returned set
/// means "unknown base".
/// True when the address of alloca `id` escapes the direct load/store
/// idiom in `f`: used as a stored *value*, a call argument, a `gep` base,
/// a cast source, or any other position besides the pointer operand of a
/// load or store. Non-escaping allocas have an exactly known access set,
/// which flow-sensitive clients (dead-store detection, scalar promotion)
/// require before trusting block-local reasoning.
pub fn alloca_address_taken(f: &noelle_ir::module::Function, id: InstId) -> bool {
    let a = Value::Inst(id);
    for other in f.inst_ids() {
        let uses_a = match f.inst(other) {
            // The pointer operand of a load (its only operand) is the
            // non-escaping use.
            Inst::Load { .. } => false,
            Inst::Store { val, .. } => *val == a,
            _ => f.inst(other).operands().contains(&a),
        };
        if uses_a {
            return true;
        }
    }
    false
}

pub fn underlying_objects(m: &Module, fid: FuncId, v: Value) -> BTreeSet<Option<MemoryObject>> {
    underlying_objects_vec(m, fid, v).into_iter().collect()
}

/// Small-vec form of [`underlying_objects`]: the same base set as a sorted,
/// deduplicated `Vec`. This is what the hot query paths use — a `Vec` of a
/// few elements beats a `BTreeSet` allocation per query; consumers that need
/// a set (the `base_objects` trait boundary, external callers) canonicalize
/// once at their own boundary.
pub fn underlying_objects_vec(m: &Module, fid: FuncId, v: Value) -> Vec<Option<MemoryObject>> {
    let mut out = Vec::new();
    let mut visited = Vec::new();
    collect_bases(m, fid, v, &mut out, &mut visited, 32);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_bases(
    m: &Module,
    fid: FuncId,
    v: Value,
    out: &mut Vec<Option<MemoryObject>>,
    visited: &mut Vec<Value>,
    fuel: u32,
) {
    // The walk is fuel-bounded, so the visited list stays small and a linear
    // scan beats hashing.
    if fuel == 0 || visited.contains(&v) {
        out.push(None);
        return;
    }
    visited.push(v);
    let f = m.func(fid);
    match v {
        Value::Global(g) => {
            out.push(Some(MemoryObject::Global(g)));
        }
        Value::Func(callee) => {
            out.push(Some(MemoryObject::Function(callee)));
        }
        Value::Const(_) => {
            // Null / undef / integer constants: no object.
        }
        Value::Arg(_) => {
            out.push(None);
        }
        Value::Inst(id) => match f.inst(id) {
            Inst::Alloca { .. } => {
                out.push(Some(MemoryObject::Alloca(fid, id)));
            }
            Inst::Gep { base, .. } => collect_bases(m, fid, *base, out, visited, fuel - 1),
            Inst::Cast {
                op: noelle_ir::inst::CastOp::Bitcast,
                val,
                ..
            } => collect_bases(m, fid, *val, out, visited, fuel - 1),
            Inst::Cast { .. } => {
                out.push(None);
            }
            Inst::Select { tval, fval, .. } => {
                collect_bases(m, fid, *tval, out, visited, fuel - 1);
                collect_bases(m, fid, *fval, out, visited, fuel - 1);
            }
            Inst::Phi { incomings, .. } => {
                for (_, iv) in incomings {
                    collect_bases(m, fid, *iv, out, visited, fuel - 1);
                }
            }
            Inst::Call { callee, .. } => {
                if let Callee::Direct(cid) = callee {
                    if crate::modref::is_allocator_sym(m.func(*cid).name_sym()) {
                        out.push(Some(MemoryObject::Heap(fid, id)));
                        return;
                    }
                }
                out.push(None);
            }
            _ => {
                out.push(None);
            }
        },
    }
}

/// True when two sorted, deduplicated slices share no element.
fn sorted_disjoint<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Basic (LLVM-tier) alias analysis
// ---------------------------------------------------------------------------

/// The "vanilla LLVM" alias tier. Stateless apart from a borrowed module.
pub struct BasicAlias<'m> {
    module: &'m Module,
}

impl<'m> BasicAlias<'m> {
    /// Create the basic tier over `module`.
    pub fn new(module: &'m Module) -> BasicAlias<'m> {
        BasicAlias { module }
    }

    /// Byte offset of a gep whose indices are all constants, with its base.
    fn const_gep_offset(&self, fid: FuncId, v: Value) -> Option<(Value, i64)> {
        let f = self.module.func(fid);
        let id = v.as_inst()?;
        if let Inst::Gep {
            base,
            base_ty,
            indices,
        } = f.inst(id)
        {
            let mut offset: i64 = 0;
            let mut ty = base_ty.clone();
            for (k, idx) in indices.iter().enumerate() {
                let c = match idx {
                    Value::Const(Constant::Int(c, _)) => *c,
                    _ => return None,
                };
                if k == 0 {
                    offset += c * ty.size_bytes() as i64;
                } else {
                    match &ty {
                        Type::Array(elem, _) => {
                            offset += c * elem.size_bytes() as i64;
                            ty = (**elem).clone();
                        }
                        Type::Struct(_) => {
                            offset += ty.struct_field_offset(c as usize)? as i64;
                            ty = ty.indexed(Some(c as usize))?.clone();
                        }
                        other => {
                            offset += c * other.size_bytes() as i64;
                        }
                    }
                }
            }
            Some((*base, offset))
        } else {
            None
        }
    }

    fn pointee_scalar_kind(&self, fid: FuncId, v: Value) -> Option<Type> {
        let f = self.module.func(fid);
        match f.value_type(self.module, v) {
            Type::Ptr(p) if p.is_scalar() => Some(*p),
            _ => None,
        }
    }
}

impl AliasAnalysis for BasicAlias<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        if a == b {
            return AliasResult::Must;
        }
        // Null pointers address nothing.
        if matches!(a, Value::Const(Constant::Null)) || matches!(b, Value::Const(Constant::Null)) {
            return AliasResult::No;
        }

        // Constant-offset geps off the same base.
        let ga = self.const_gep_offset(fid, a);
        let gb = self.const_gep_offset(fid, b);
        match (&ga, &gb) {
            (Some((ba, oa)), Some((bb, ob))) if ba == bb => {
                // Access sizes: the pointee of each pointer.
                let f = self.module.func(fid);
                let sa = f
                    .value_type(self.module, a)
                    .pointee()
                    .map(Type::size_bytes)
                    .unwrap_or(1) as i64;
                let sb = f
                    .value_type(self.module, b)
                    .pointee()
                    .map(Type::size_bytes)
                    .unwrap_or(1) as i64;
                if oa == ob {
                    return AliasResult::Must;
                }
                if oa + sa <= *ob || ob + sb <= *oa {
                    return AliasResult::No;
                }
                return AliasResult::May;
            }
            (Some((ba, _)), None) if *ba == b => return AliasResult::May,
            (None, Some((bb, _))) if *bb == a => return AliasResult::May,
            _ => {}
        }

        // Underlying-object rules. The sorted-vec form avoids a `BTreeSet`
        // allocation per query; `None` sorts first, so "contains unknown" is
        // a first-element check.
        let oa = underlying_objects_vec(self.module, fid, a);
        let ob = underlying_objects_vec(self.module, fid, b);
        let a_known = oa.first().is_some_and(Option::is_some);
        let b_known = ob.first().is_some_and(Option::is_some);
        if a_known && b_known {
            if sorted_disjoint(&oa, &ob) {
                return AliasResult::No;
            }
        } else if a_known || b_known {
            // One side is a set of identified function-local objects, the
            // other is unknown (e.g. an incoming argument). A fresh alloca
            // cannot be addressed by a pointer that existed before it (LLVM's
            // non-escaping-alloca rule); globals, by contrast, can.
            let (known, _unknown) = if a_known { (&oa, &ob) } else { (&ob, &oa) };
            if known.iter().all(|o| {
                matches!(
                    o,
                    Some(MemoryObject::Alloca(_, _)) | Some(MemoryObject::Heap(_, _))
                )
            }) {
                let escaped = known.iter().any(|o| match o {
                    Some(MemoryObject::Alloca(f2, i)) | Some(MemoryObject::Heap(f2, i)) => {
                        object_escapes(self.module, *f2, *i)
                    }
                    _ => true,
                });
                if !escaped {
                    return AliasResult::No;
                }
            }
        }

        // Strict-aliasing (TBAA-lite): distinct scalar pointee types do not
        // alias.
        if let (Some(ta), Some(tb)) = (
            self.pointee_scalar_kind(fid, a),
            self.pointee_scalar_kind(fid, b),
        ) {
            if ta != tb {
                return AliasResult::No;
            }
        }

        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // Sound for bucketing because the underlying-object rule in `alias`
        // answers `No` on any pair of fully-known disjoint base sets, and the
        // earlier const-gep rules only produce `Must`/`May` for pointers
        // sharing a base (hence sharing base objects). The set is
        // canonicalized from the sorted-vec form only here, at the trait
        // boundary (memoized by `CachedAlias`, so once per distinct query).
        let objs = underlying_objects_vec(self.module, fid, ptr);
        if !objs.first().is_some_and(Option::is_some) {
            return None;
        }
        Some(objs.into_iter().flatten().collect())
    }

    fn name(&self) -> &'static str {
        "basic-aa"
    }
}

/// True if the address of allocation `id` (an alloca or allocation call in
/// `fid`) may escape: stored to memory, passed to a call, returned, or cast
/// to an integer.
pub fn object_escapes(m: &Module, fid: FuncId, id: InstId) -> bool {
    let f = m.func(fid);
    // Worklist over the values derived from the allocation.
    let mut derived: HashSet<InstId> = HashSet::new();
    derived.insert(id);
    let uses = f.compute_uses();
    let mut work = vec![id];
    while let Some(cur) = work.pop() {
        for &u in uses.get(&cur).map(Vec::as_slice).unwrap_or(&[]) {
            match f.inst(u) {
                Inst::Gep { .. }
                | Inst::Cast {
                    op: noelle_ir::inst::CastOp::Bitcast,
                    ..
                }
                | Inst::Select { .. }
                | Inst::Phi { .. } => {
                    if derived.insert(u) {
                        work.push(u);
                    }
                }
                Inst::Load { .. } => {}
                Inst::Store { val, .. } => {
                    // Escapes if the *pointer itself* is stored somewhere.
                    if val.as_inst().map(|i| derived.contains(&i)).unwrap_or(false) {
                        return true;
                    }
                }
                Inst::Icmp { .. } | Inst::Fcmp { .. } => {}
                Inst::Call { .. } => return true,
                Inst::Cast { .. } => return true, // ptrtoint etc.
                Inst::Term(t) => {
                    if matches!(t, noelle_ir::inst::Terminator::Ret(Some(_))) {
                        return true;
                    }
                }
                _ => return true,
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Andersen-style inclusion-based points-to analysis
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum VarKey {
    /// The pointer value produced by an instruction.
    Local(FuncId, InstId),
    /// A formal argument.
    Arg(FuncId, u32),
    /// The return value of a function.
    Ret(FuncId),
    /// The contents of an abstract object (what loads from it yield).
    Content(usize),
    /// Synthetic source whose points-to set is exactly `{Unknown}`.
    UnknownSrc,
}

/// External-callee classification, precomputed per function so call-site
/// generation never re-examines a name string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ExternClass {
    /// Defined in the module.
    Defined,
    /// Known allocation routine.
    Alloc,
    /// External with escaping pointer arguments.
    Opaque,
    /// External that neither allocates nor captures pointers.
    Inert,
}

/// Whole-program Andersen points-to analysis and the alias interface on top.
///
/// Points-to rows are sparse bitsets over object ids ([`BitSet`]); the
/// solver is a worklist over the copy-edge constraint graph, sharded by SCC
/// (see [`Solver::copy_fixpoint`]). The inclusion system has a unique least
/// fixpoint, so the sharded/parallel schedule yields byte-identical rows to
/// the sequential one.
pub struct AndersenAlias {
    vars: HashMap<VarKey, usize>,
    pts: Vec<BitSet>,
    objects: Vec<MemoryObject>,
    obj_ids: HashMap<MemoryObject, usize>,
    /// Resolved callees of each indirect call site.
    indirect_targets: HashMap<(FuncId, InstId), BTreeSet<FuncId>>,
}

struct Solver<'m> {
    m: &'m Module,
    vars: HashMap<VarKey, usize>,
    pts: Vec<BitSet>,
    succs: Vec<Vec<u32>>,  // copy edges: pts(to) ⊇ pts(from)
    loads: Vec<Vec<u32>>,  // loads[p] = dst vars of `dst = load p`
    stores: Vec<Vec<u32>>, // stores[p] = src vars of `store src, p`
    edge_seen: HashSet<(u32, u32)>,
    objects: Vec<MemoryObject>,
    obj_ids: HashMap<MemoryObject, usize>,
    /// Content var of each object, filled eagerly by `prepare` so no var is
    /// created while the solver propagates.
    content_of: Vec<u32>,
    extern_class: Vec<ExternClass>,
    indirect_sites: Vec<(FuncId, InstId)>,
    resolved: HashMap<(FuncId, InstId), BTreeSet<FuncId>>,
    /// Dense lazy mirror of `vars` for the function `cache_fid`:
    /// `inst_var_cache[inst.index()]` / `arg_var_cache[i]` hold the var of
    /// `Local(cache_fid, inst)` / `Arg(cache_fid, i)`, `u32::MAX` = unknown.
    cache_fid: FuncId,
    inst_var_cache: Vec<u32>,
    arg_var_cache: Vec<u32>,
    /// Shared synthetic vars for address-constant operands. These vars only
    /// ever grow *out*-edges (load/store lists, copy edges to call results),
    /// so their rows stay exactly the seeded singleton — one var per global
    /// or function is equivalent to a fresh var per use.
    global_addr_vars: HashMap<GlobalId, usize>,
    func_addr_vars: HashMap<FuncId, usize>,
    /// One permanently-empty var shared by every integer-constant operand.
    const_var: Option<usize>,
}

/// Run the worklist of one SCC shard to its local fixpoint. `rows` holds the
/// shard's points-to rows (extracted from the global table); predecessors
/// outside the shard live at strictly lower condensation levels, already
/// settled, and are read through `settled`. `shard` is sorted, so in-shard
/// membership is a binary search.
fn solve_shard(
    shard: &[u32],
    rows: &mut [BitSet],
    pred_off: &[u32],
    pred_dat: &[u32],
    succs: &[Vec<u32>],
    settled: &[BitSet],
) {
    let preds_of = |v: usize| &pred_dat[pred_off[v] as usize..pred_off[v + 1] as usize];
    let k = shard.len();
    if k == 1 {
        // Singleton SCC: every predecessor is settled (self-edges are never
        // created), so one union pass reaches the fixpoint — no worklist,
        // no queue allocation. The overwhelmingly common case.
        let v = shard[0] as usize;
        let row = &mut rows[0];
        for &p in preds_of(v) {
            row.union_with(&settled[p as usize]);
        }
        return;
    }
    let mut in_q = vec![true; k];
    let mut queue: std::collections::VecDeque<u32> = (0..k as u32).collect();
    while let Some(li) = queue.pop_front() {
        let li = li as usize;
        in_q[li] = false;
        let v = shard[li] as usize;
        // Take the row out so in-shard predecessor rows stay borrowable.
        let mut row = std::mem::take(&mut rows[li]);
        let mut changed = false;
        for &p in preds_of(v) {
            if p as usize == v {
                continue;
            }
            let src = match shard.binary_search(&p) {
                Ok(pj) => &rows[pj],
                Err(_) => &settled[p as usize],
            };
            changed |= row.union_with(src);
        }
        rows[li] = row;
        if changed {
            for &s in &succs[v] {
                if let Ok(sj) = shard.binary_search(&s) {
                    if !in_q[sj] {
                        in_q[sj] = true;
                        queue.push_back(sj as u32);
                    }
                }
            }
        }
    }
}

/// Flattened SCC partition of the copy graph: SCC `i`'s members are
/// `members[off[i]..off[i+1]]`, sorted ascending. Emission order is
/// reverse topological (successors before predecessors). Two flat arrays
/// instead of a `Vec` per SCC: almost every SCC is a singleton, and the
/// partition is rebuilt every fixpoint round.
struct SccSet {
    off: Vec<u32>,
    members: Vec<u32>,
}

impl SccSet {
    fn len(&self) -> usize {
        self.off.len() - 1
    }

    fn scc(&self, i: usize) -> &[u32] {
        &self.members[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// Tarjan's SCCs of the copy graph, flattened.
fn copy_sccs(succs: &[Vec<u32>]) -> SccSet {
    let n = succs.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut counter = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut out = SccSet {
        off: vec![0u32],
        members: Vec::with_capacity(n),
    };
    let mut call_stack: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = counter;
        lowlink[root] = counter;
        counter += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        call_stack.push((root as u32, 0));
        while let Some(&mut (node, ref mut pos)) = call_stack.last_mut() {
            let v = node as usize;
            if (*pos as usize) < succs[v].len() {
                let w = succs[v][*pos as usize] as usize;
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    lowlink[w] = counter;
                    counter += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call_stack.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let start = out.members.len();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        out.members.push(w);
                        if w as usize == v {
                            break;
                        }
                    }
                    out.members[start..].sort_unstable();
                    out.off.push(out.members.len() as u32);
                }
            }
        }
    }
    out
}

/// Below this many vars in a condensation level, shard solving stays
/// sequential — thread spawn overhead dwarfs the work on small modules.
const PARALLEL_MIN_VARS: usize = 2048;

impl<'m> Solver<'m> {
    fn fresh_var(&mut self) -> usize {
        let v = self.pts.len();
        self.pts.push(BitSet::new());
        self.succs.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        v
    }

    fn var(&mut self, key: VarKey) -> usize {
        // Fast path: dense per-function memo for the two hot key shapes.
        // Constraint generation asks for `Local(fid, inst)` and
        // `Arg(fid, i)` once per operand use — a hash probe per use is the
        // bulk of `generate`'s cost on large modules. The memo lazily
        // mirrors `vars` for the function named by `cache_fid`; misses fall
        // through to the map, so it is never a second source of truth.
        match key {
            VarKey::Local(fid, id) if fid == self.cache_fid => {
                let i = id.index();
                if let Some(&c) = self.inst_var_cache.get(i) {
                    if c != u32::MAX {
                        return c as usize;
                    }
                }
                let v = self.var_uncached(key);
                if let Some(slot) = self.inst_var_cache.get_mut(i) {
                    *slot = v as u32;
                }
                v
            }
            VarKey::Arg(fid, k) if fid == self.cache_fid => {
                let i = k as usize;
                if let Some(&c) = self.arg_var_cache.get(i) {
                    if c != u32::MAX {
                        return c as usize;
                    }
                }
                let v = self.var_uncached(key);
                if let Some(slot) = self.arg_var_cache.get_mut(i) {
                    *slot = v as u32;
                }
                v
            }
            _ => self.var_uncached(key),
        }
    }

    fn var_uncached(&mut self, key: VarKey) -> usize {
        if let Some(&v) = self.vars.get(&key) {
            return v;
        }
        let v = self.fresh_var();
        self.vars.insert(key, v);
        v
    }

    /// Point the per-function var memo at `fid`.
    fn set_cache_fn(&mut self, fid: FuncId) {
        self.cache_fid = fid;
        let f = self.m.func(fid);
        let n = f
            .inst_ids()
            .iter()
            .map(|i| i.index() + 1)
            .max()
            .unwrap_or(0);
        self.inst_var_cache.clear();
        self.inst_var_cache.resize(n, u32::MAX);
        self.arg_var_cache.clear();
        self.arg_var_cache.resize(f.params.len(), u32::MAX);
    }

    fn object(&mut self, o: MemoryObject) -> usize {
        if let Some(&i) = self.obj_ids.get(&o) {
            return i;
        }
        let i = self.objects.len();
        self.objects.push(o);
        self.obj_ids.insert(o, i);
        i
    }

    fn add_edge(&mut self, from: usize, to: usize) -> bool {
        if from != to && self.edge_seen.insert((from as u32, to as u32)) {
            self.succs[from].push(to as u32);
            true
        } else {
            false
        }
    }

    /// Make `dst ⊇ value` for an operand value of function `fid`.
    fn flow_value_into(&mut self, fid: FuncId, v: Value, dst: usize) {
        match v {
            Value::Inst(id) => {
                let src = self.var(VarKey::Local(fid, id));
                self.add_edge(src, dst);
            }
            Value::Arg(i) => {
                let src = self.var(VarKey::Arg(fid, i));
                self.add_edge(src, dst);
            }
            Value::Global(g) => {
                let o = self.object(MemoryObject::Global(g));
                self.pts[dst].insert(o);
            }
            Value::Func(f2) => {
                let o = self.object(MemoryObject::Function(f2));
                self.pts[dst].insert(o);
            }
            Value::Const(_) => {}
        }
    }

    fn generate(&mut self) {
        // Globals that hold pointers into other globals / functions.
        for gid in self.m.global_ids().collect::<Vec<_>>() {
            let g = self.m.global(gid);
            let o = self.object(MemoryObject::Global(gid));
            let content = self.var(VarKey::Content(o));
            let _ = (g, content);
        }
        let unknown_obj = self.object(MemoryObject::Unknown);
        let unknown_content = self.var(VarKey::Content(unknown_obj));
        self.pts[unknown_content].insert(unknown_obj);
        let usrc = self.var(VarKey::UnknownSrc);
        self.pts[usrc].insert(unknown_obj);

        // Root functions — never called within the module and never
        // address-taken (e.g. `main`) — receive their pointer arguments from
        // outside the analyzed program, so those may point anywhere. Args of
        // internal functions are bound at their call sites instead.
        let mut referenced: HashSet<FuncId> = HashSet::new();
        for fid in self.m.func_ids() {
            let f = self.m.func(fid);
            for id in f.inst_ids() {
                let inst = f.inst(id);
                if let Inst::Call {
                    callee: Callee::Direct(cid),
                    ..
                } = inst
                {
                    referenced.insert(*cid);
                }
                inst.for_each_operand(|op| {
                    if let Value::Func(cid) = op {
                        referenced.insert(cid);
                    }
                });
            }
        }
        for fid in self.m.func_ids().collect::<Vec<_>>() {
            let f = self.m.func(fid);
            if f.is_declaration() {
                continue;
            }
            self.set_cache_fn(fid);
            if !referenced.contains(&fid) {
                for (i, (_, ty)) in f.params.iter().enumerate() {
                    if ty.is_ptr() {
                        let av = self.var(VarKey::Arg(fid, i as u32));
                        self.pts[av].insert(unknown_obj);
                    }
                }
            }
            for id in f.inst_ids() {
                self.gen_inst(fid, id);
            }
        }
    }

    fn gen_inst(&mut self, fid: FuncId, id: InstId) {
        // Reborrow the module through `'m` so the instruction is matched in
        // place while `&mut self` constraint methods run — the alternative,
        // cloning each instruction, allocates for every phi/call in the
        // module and dominates `generate` on large inputs.
        let m: &'m Module = self.m;
        match m.func(fid).inst(id) {
            Inst::Alloca { .. } => {
                let o = self.object(MemoryObject::Alloca(fid, id));
                let dst = self.var(VarKey::Local(fid, id));
                self.pts[dst].insert(o);
                // Content var exists from first use.
                self.var(VarKey::Content(o));
            }
            Inst::Gep { base, .. } => {
                // Field-insensitive: a gep is a copy of its base.
                let dst = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, *base, dst);
            }
            // Values that cannot hold an address generate no constraints at
            // all: no var, no row, no copy edge. A pointer smuggled through
            // an integer already degrades to `Unknown` at the `IntToPtr`
            // reintroduction point, so skipping integer-typed flows loses no
            // precision — while int-heavy kernels stop paying rows and edges
            // for every scalar load, store, and phi (the bulk of the
            // constraint system on numeric code).
            Inst::Cast { op, val, to, .. } => {
                if !to.is_ptr() {
                    return;
                }
                let dst = self.var(VarKey::Local(fid, id));
                match op {
                    noelle_ir::inst::CastOp::Bitcast => self.flow_value_into(fid, *val, dst),
                    noelle_ir::inst::CastOp::IntToPtr => {
                        let uo = self.object(MemoryObject::Unknown);
                        self.pts[dst].insert(uo);
                    }
                    _ => {}
                }
            }
            Inst::Select { ty, tval, fval, .. } => {
                if !ty.is_ptr() {
                    return;
                }
                let dst = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, *tval, dst);
                self.flow_value_into(fid, *fval, dst);
            }
            Inst::Phi { ty, incomings } => {
                if !ty.is_ptr() {
                    return;
                }
                let dst = self.var(VarKey::Local(fid, id));
                for &(_, v) in incomings {
                    self.flow_value_into(fid, v, dst);
                }
            }
            Inst::Load { ty, ptr } => {
                if !ty.is_ptr() {
                    return;
                }
                let dst = self.var(VarKey::Local(fid, id));
                let p = self.value_var(fid, *ptr);
                self.loads[p].push(dst as u32);
            }
            Inst::Store { val, ptr, ty } => {
                if !ty.is_ptr() {
                    return;
                }
                // Route the stored value through a dedicated var so constants
                // and args are handled uniformly.
                let src = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, *val, src);
                let p = self.value_var(fid, *ptr);
                self.stores[p].push(src as u32);
            }
            Inst::Call { callee, args, .. } => match callee {
                Callee::Direct(cid) => self.gen_direct_call(fid, id, *cid, args),
                Callee::Indirect(fp) => {
                    let _pvar = self.value_var(fid, *fp);
                    self.indirect_sites.push((fid, id));
                }
            },
            _ => {}
        }
    }

    /// Var holding the points-to set of an operand value (materializing a
    /// synthetic var for address constants).
    fn value_var(&mut self, fid: FuncId, v: Value) -> usize {
        match v {
            Value::Inst(id) => self.var(VarKey::Local(fid, id)),
            Value::Arg(i) => self.var(VarKey::Arg(fid, i)),
            Value::Global(g) => {
                // An address constant's var never gains an in-edge (use
                // sites only append to its load/store lists or copy *out*
                // of it), so its row stays the seeded `{Global(g)}` for the
                // whole solve and one var can serve every use of `@g`.
                if let Some(&dst) = self.global_addr_vars.get(&g) {
                    return dst;
                }
                let dst = self.fresh_var();
                let o = self.object(MemoryObject::Global(g));
                self.pts[dst].insert(o);
                self.global_addr_vars.insert(g, dst);
                dst
            }
            Value::Func(f2) => {
                if let Some(&dst) = self.func_addr_vars.get(&f2) {
                    return dst;
                }
                let dst = self.fresh_var();
                let o = self.object(MemoryObject::Function(f2));
                self.pts[dst].insert(o);
                self.func_addr_vars.insert(f2, dst);
                dst
            }
            Value::Const(_) => {
                // Integer constants carry no address: their var is
                // permanently empty, so every constant shares one row.
                match self.const_var {
                    Some(dst) => dst,
                    None => {
                        let dst = self.fresh_var();
                        self.const_var = Some(dst);
                        dst
                    }
                }
            }
        }
    }

    fn gen_direct_call(&mut self, fid: FuncId, id: InstId, cid: FuncId, args: &[Value]) {
        let callee = self.m.func(cid);
        if callee.is_declaration() {
            // Classified once per function in `extern_class` — no name
            // string examined per call site.
            let dst = self.var(VarKey::Local(fid, id));
            match self.extern_class[cid.index()] {
                ExternClass::Alloc => {
                    let o = self.object(MemoryObject::Heap(fid, id));
                    self.pts[dst].insert(o);
                    self.var(VarKey::Content(o));
                }
                ExternClass::Opaque => {
                    // Unknown external: pointer args escape; the result may be
                    // anything reachable from them or fresh unknown memory.
                    let usrc = self.var(VarKey::UnknownSrc);
                    let uo = self.object(MemoryObject::Unknown);
                    self.pts[dst].insert(uo);
                    for &a in args {
                        let av = self.value_var(fid, a);
                        self.stores[av].push(usrc as u32);
                        self.add_edge(av, dst);
                    }
                }
                ExternClass::Inert | ExternClass::Defined => {}
            }
            return;
        }
        for (i, &a) in args.iter().enumerate() {
            if i < callee.params.len() && callee.params[i].1.is_ptr() {
                let pv = self.var(VarKey::Arg(cid, i as u32));
                self.flow_value_into(fid, a, pv);
            } else if i < callee.params.len() {
                // Non-pointer params can still smuggle pointers via casts;
                // ignored (matches field-insensitive precision).
            }
        }
        // Return-value flow only matters when the callee can return an
        // address (same type gate as `gen_inst`: int returns carry none).
        if !callee.ret_ty.is_ptr() {
            return;
        }
        let rv = self.var(VarKey::Ret(cid));
        let dst = self.var(VarKey::Local(fid, id));
        self.add_edge(rv, dst);
        // Returns inside the callee feed Ret(cid); generated lazily here so
        // declarations don't need bodies.
        let callee_f = self.m.func(cid);
        for bid in callee_f.block_order().to_vec() {
            if let Some(noelle_ir::inst::Terminator::Ret(Some(v))) = callee_f.terminator(bid) {
                let v = *v;
                self.flow_value_into(cid, v, rv);
            }
        }
    }

    /// Eagerly materialize the content var of every object created so far,
    /// so propagation never allocates vars. Called once per `solve` round;
    /// `resolve_indirect` can mint new objects, covered by the next round.
    fn prepare(&mut self) {
        while self.content_of.len() < self.objects.len() {
            let o = self.content_of.len();
            let c = self.var(VarKey::Content(o));
            self.content_of.push(c as u32);
        }
    }

    /// Solve the current constraint system to its least fixpoint:
    /// alternate copy-edge closure with load/store edge materialization
    /// until no new edge appears.
    fn solve(&mut self) {
        self.prepare();
        loop {
            self.copy_fixpoint();
            if !self.materialize() {
                break;
            }
        }
    }

    /// Close the points-to rows under the current copy edges.
    ///
    /// The copy graph is condensed into SCCs (Tarjan, reverse-topological
    /// emission) and the SCCs are level-scheduled: `level(scc) = 1 + max
    /// level of predecessors`. All predecessors of a level-k SCC are settled
    /// before level k runs, and SCCs within one level share no edges, so the
    /// level's shards solve independently — in parallel across
    /// `std::thread::scope` when the level is big enough. One topologically
    /// ordered sweep reaches the exact least fixpoint for the current edge
    /// set, and since that fixpoint is unique, the sharded schedule is
    /// byte-identical to a sequential solve.
    fn copy_fixpoint(&mut self) {
        let n = self.pts.len();
        if n == 0 {
            return;
        }
        let sccs = copy_sccs(&self.succs);
        let nsccs = sccs.len();
        let mut scc_of = vec![0u32; n];
        for i in 0..nsccs {
            for &v in sccs.scc(i) {
                scc_of[v as usize] = i as u32;
            }
        }
        // Levels over the condensation; iterate in topological order
        // (reverse of Tarjan's emission).
        let mut level = vec![0u32; nsccs];
        for i in (0..nsccs).rev() {
            for &v in sccs.scc(i) {
                for &s in &self.succs[v as usize] {
                    let t = scc_of[s as usize] as usize;
                    if t != i && level[t] < level[i] + 1 {
                        level[t] = level[i] + 1;
                    }
                }
            }
        }
        let nlevels = level.iter().max().copied().unwrap_or(0) as usize + 1;
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); nlevels];
        for i in (0..nsccs).rev() {
            by_level[level[i] as usize].push(i as u32);
        }
        // Pull-direction adjacency, packed CSR (counting sort) — rebuilt
        // each round, so no per-node Vec allocations.
        let nedges: usize = self.succs.iter().map(Vec::len).sum();
        let mut pred_off = vec![0u32; n + 1];
        for ss in &self.succs {
            for &s in ss {
                pred_off[s as usize + 1] += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut pred_dat = vec![0u32; nedges];
        let mut cur = pred_off.clone();
        for (v, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                pred_dat[cur[s as usize] as usize] = v as u32;
                cur[s as usize] += 1;
            }
        }
        let workers = std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1);
        for shard_ids in &by_level {
            let shards: Vec<&[u32]> = shard_ids.iter().map(|&i| sccs.scc(i as usize)).collect();
            let total: usize = shards.iter().map(|s| s.len()).sum();
            // Extract the level's rows so workers may mutate them while
            // reading settled lower-level rows through a shared borrow of
            // the global table. (Rows of *this* level read through the
            // global table would be empty takes, but same-level SCCs have
            // no cross edges, so they are never read.)
            let mut rows: Vec<Vec<BitSet>> = shards
                .iter()
                .map(|sh| {
                    sh.iter()
                        .map(|&v| std::mem::take(&mut self.pts[v as usize]))
                        .collect()
                })
                .collect();
            if workers > 1 && shards.len() > 1 && total >= PARALLEL_MIN_VARS {
                let settled = &self.pts;
                let succs = &self.succs;
                let pred_off = &pred_off;
                let pred_dat = &pred_dat;
                let mut buckets: Vec<Vec<(&[u32], &mut Vec<BitSet>)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, job) in shards.iter().copied().zip(rows.iter_mut()).enumerate() {
                    buckets[i % workers].push(job);
                }
                std::thread::scope(|sc| {
                    for bucket in buckets {
                        sc.spawn(move || {
                            for (shard, rows) in bucket {
                                solve_shard(shard, rows, pred_off, pred_dat, succs, settled);
                            }
                        });
                    }
                });
            } else {
                for (shard, rows) in shards.iter().zip(rows.iter_mut()) {
                    solve_shard(shard, rows, &pred_off, &pred_dat, &self.succs, &self.pts);
                }
            }
            for (shard, rows) in shards.iter().zip(rows) {
                for (&v, row) in shard.iter().zip(rows) {
                    self.pts[v as usize] = row;
                }
            }
        }
    }

    /// Materialize copy edges for the complex (load/store) constraints
    /// against the current rows: `dst ⊇ content(o)` for every `dst = load p`
    /// with `o ∈ pts(p)`, and `content(o) ⊇ src` for every `store src, p`.
    /// Returns true if any new edge appeared.
    fn materialize(&mut self) -> bool {
        let mut pending: Vec<(u32, u32)> = Vec::new();
        for v in 0..self.pts.len() {
            if self.loads[v].is_empty() && self.stores[v].is_empty() {
                continue;
            }
            for o in self.pts[v].iter() {
                let c = self.content_of[o];
                for &dst in &self.loads[v] {
                    pending.push((c, dst));
                }
                for &src in &self.stores[v] {
                    pending.push((src, c));
                }
            }
        }
        let mut changed = false;
        for (a, b) in pending {
            changed |= self.add_edge(a as usize, b as usize);
        }
        changed
    }

    /// Resolve indirect calls against the current solution; returns true if
    /// new call edges were added.
    fn resolve_indirect(&mut self) -> bool {
        let mut changed = false;
        let sites = self.indirect_sites.clone();
        for (fid, id) in sites {
            let f = self.m.func(fid);
            let (fp, args) = match f.inst(id) {
                Inst::Call {
                    callee: Callee::Indirect(fp),
                    args,
                    ..
                } => (*fp, args.clone()),
                _ => continue,
            };
            let pvar = self.value_var(fid, fp);
            let targets: Vec<FuncId> = self.pts[pvar]
                .iter()
                .filter_map(|o| match self.objects[o] {
                    MemoryObject::Function(cid) => Some(cid),
                    _ => None,
                })
                .collect();
            for cid in targets {
                let entry = self.resolved.entry((fid, id)).or_default();
                if entry.insert(cid) {
                    changed = true;
                    self.gen_direct_call(fid, id, cid, &args);
                }
            }
        }
        changed
    }
}

impl AndersenAlias {
    /// Run the whole-program points-to analysis over `m`.
    pub fn new(m: &Module) -> AndersenAlias {
        let extern_class = m
            .functions()
            .iter()
            .map(|f| {
                if !f.is_declaration() {
                    ExternClass::Defined
                } else if crate::modref::is_allocator_sym(f.name_sym()) {
                    ExternClass::Alloc
                } else if crate::modref::external_effects_sym(f.name_sym()).opaque_pointers {
                    ExternClass::Opaque
                } else {
                    ExternClass::Inert
                }
            })
            .collect();
        let mut s = Solver {
            m,
            vars: HashMap::new(),
            pts: Vec::new(),
            succs: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            edge_seen: HashSet::new(),
            objects: Vec::new(),
            obj_ids: HashMap::new(),
            content_of: Vec::new(),
            extern_class,
            indirect_sites: Vec::new(),
            resolved: HashMap::new(),
            cache_fid: FuncId(u32::MAX),
            inst_var_cache: Vec::new(),
            arg_var_cache: Vec::new(),
            global_addr_vars: HashMap::new(),
            func_addr_vars: HashMap::new(),
            const_var: None,
        };
        s.generate();
        loop {
            s.solve();
            if !s.resolve_indirect() {
                break;
            }
        }
        AndersenAlias {
            vars: s.vars,
            pts: s.pts,
            objects: s.objects,
            obj_ids: s.obj_ids,
            indirect_targets: s.resolved,
        }
    }

    /// Approximate heap footprint of the points-to state, in bytes: bitset
    /// rows plus the var and object tables.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pts.iter().map(BitSet::heap_bytes).sum::<usize>()
            + self.pts.capacity() * size_of::<BitSet>()
            + self.vars.len() * (size_of::<VarKey>() + size_of::<usize>() + 16)
            + self.objects.capacity() * size_of::<MemoryObject>()
            + self.obj_ids.len() * (size_of::<MemoryObject>() + size_of::<usize>() + 16)
    }

    /// Points-to set of a pointer value in function `fid`.
    pub fn points_to(&self, fid: FuncId, v: Value) -> BTreeSet<MemoryObject> {
        match v {
            Value::Inst(id) => self.var_pts(&VarKey::Local(fid, id)),
            Value::Arg(i) => self.var_pts(&VarKey::Arg(fid, i)),
            Value::Global(g) => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Global(g));
                s
            }
            Value::Func(f2) => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Function(f2));
                s
            }
            Value::Const(_) => BTreeSet::new(),
        }
    }

    fn var_pts(&self, key: &VarKey) -> BTreeSet<MemoryObject> {
        match self.vars.get(key) {
            Some(&v) => self.pts[v].iter().map(|o| self.objects[o]).collect(),
            None => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Unknown);
                s
            }
        }
    }

    /// The query-observable points-to rows of every function, keyed by
    /// function: for each instruction-produced or argument pointer value,
    /// the set of abstract objects it may address.
    ///
    /// Rows that answer [`AliasAnalysis::alias`] and
    /// [`AliasAnalysis::base_objects`] identically are canonicalized away:
    /// an empty set, a set containing [`MemoryObject::Unknown`], and an
    /// untracked variable all behave as "may address anything", so none of
    /// them appears in the map. Two solves whose rows compare equal for a
    /// function therefore answer every alias query on that function
    /// identically — the comparison the incremental invalidation engine
    /// uses to decide which cached per-function results survive an edit.
    pub fn rows_by_function(&self) -> HashMap<FuncId, BTreeMap<(u8, u32), BTreeSet<MemoryObject>>> {
        let mut out: HashMap<FuncId, BTreeMap<(u8, u32), BTreeSet<MemoryObject>>> = HashMap::new();
        for (key, &v) in &self.vars {
            let (fid, row) = match key {
                VarKey::Local(fid, id) => (*fid, (0u8, id.0)),
                VarKey::Arg(fid, i) => (*fid, (1u8, *i)),
                VarKey::Ret(_) | VarKey::Content(_) | VarKey::UnknownSrc => continue,
            };
            let set: BTreeSet<MemoryObject> = self.pts[v].iter().map(|o| self.objects[o]).collect();
            if set.is_empty() || set.contains(&MemoryObject::Unknown) {
                continue; // canonically "unbounded", same as an absent row
            }
            out.entry(fid).or_default().insert(row, set);
        }
        out
    }

    /// Possible callees of the indirect call `id` in `fid`, as resolved by
    /// the points-to solution. Used by the complete call graph abstraction.
    pub fn indirect_callees(&self, fid: FuncId, id: InstId) -> Vec<FuncId> {
        self.indirect_targets
            .get(&(fid, id))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// True if `o` is tracked at all.
    pub fn knows_object(&self, o: MemoryObject) -> bool {
        self.obj_ids.contains_key(&o)
    }
}

impl AliasAnalysis for AndersenAlias {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        if a == b {
            return AliasResult::Must;
        }
        if matches!(a, Value::Const(Constant::Null)) || matches!(b, Value::Const(Constant::Null)) {
            return AliasResult::No;
        }
        let pa = self.points_to(fid, a);
        let pb = self.points_to(fid, b);
        if pa.is_empty() || pb.is_empty() {
            return AliasResult::May;
        }
        if pa.contains(&MemoryObject::Unknown) || pb.contains(&MemoryObject::Unknown) {
            return AliasResult::May;
        }
        if pa.intersection(&pb).next().is_none() {
            return AliasResult::No;
        }
        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // Sound for bucketing: `alias` answers `No` exactly when both
        // points-to sets are non-empty, Unknown-free, and disjoint.
        let pts = self.points_to(fid, ptr);
        if pts.is_empty() || pts.contains(&MemoryObject::Unknown) {
            return None;
        }
        Some(pts)
    }

    fn name(&self) -> &'static str {
        "andersen-aa"
    }
}

/// A stack of alias analyses queried most-precise-last: the first tier to
/// answer `No` or `Must` wins; otherwise the next tier is consulted. This is
/// how NOELLE composes LLVM's analyses with SCAF and SVF.
pub struct AliasStack<'a> {
    tiers: Vec<&'a dyn AliasAnalysis>,
}

impl<'a> AliasStack<'a> {
    /// Build a stack from ordered tiers.
    pub fn new(tiers: Vec<&'a dyn AliasAnalysis>) -> AliasStack<'a> {
        AliasStack { tiers }
    }
}

impl AliasAnalysis for AliasStack<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        for t in &self.tiers {
            match t.alias(fid, a, b) {
                AliasResult::May => continue,
                decisive => return decisive,
            }
        }
        // Cross-tier rule: each tier's base set over-approximates the
        // concrete objects its pointer can address, so the tightest sets may
        // come from different tiers and still prove disjointness. This also
        // makes the stack honor the `base_objects` bucketing contract.
        if let (Some(sa), Some(sb)) = (self.base_objects(fid, a), self.base_objects(fid, b)) {
            if sa.intersection(&sb).next().is_none() {
                return AliasResult::No;
            }
        }
        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // The tightest (smallest) known set among the tiers.
        self.tiers
            .iter()
            .filter_map(|t| t.base_objects(fid, ptr))
            .min_by_key(BTreeSet::len)
    }

    fn name(&self) -> &'static str {
        "alias-stack"
    }
}

// ---------------------------------------------------------------------------
// Memoizing wrapper
// ---------------------------------------------------------------------------

/// Shared memoization state for [`CachedAlias`]. Owns nothing about the
/// module, so it can outlive the (borrowing) analyses it accelerates: the
/// `Noelle` manager keeps one across queries and wraps each freshly-built
/// alias stack around it. Internally synchronized, so one cache may serve
/// the parallel per-function PDG builders concurrently.
#[derive(Default)]
pub struct AliasQueryCache {
    alias: std::sync::RwLock<HashMap<(FuncId, Value, Value), AliasResult>>,
    bases: std::sync::RwLock<BaseObjectCache>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Memoized base-object resolutions; `None` marks a pointer whose base set
/// escaped the resolver's fuel (treated as unknown).
type BaseObjectCache = HashMap<(FuncId, Value), Option<BTreeSet<MemoryObject>>>;

impl AliasQueryCache {
    /// An empty cache.
    pub fn new() -> AliasQueryCache {
        AliasQueryCache::default()
    }

    /// `(hits, misses)` accumulated over both query kinds.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of queries answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Drop all memoized results (module mutated) but keep the counters.
    pub fn clear(&self) {
        self.alias.write().unwrap().clear();
        self.bases.write().unwrap().clear();
    }

    /// Drop only the entries belonging to the given functions — both query
    /// kinds key on the owning `FuncId`, so a per-function edit can shed
    /// exactly the answers it may have changed while every other function's
    /// memoized results keep serving.
    pub fn invalidate_funcs(&self, fids: &BTreeSet<FuncId>) {
        self.alias
            .write()
            .unwrap()
            .retain(|k, _| !fids.contains(&k.0));
        self.bases
            .write()
            .unwrap()
            .retain(|k, _| !fids.contains(&k.0));
    }

    /// Number of memoized entries across both query kinds.
    pub fn len(&self) -> usize {
        self.alias.read().unwrap().len() + self.bases.read().unwrap().len()
    }

    /// True when no results are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Memoizing wrapper over any alias analysis. Alias keys are canonicalized
/// to `(min, max)` — every analysis here is symmetric in its arguments — so
/// a query and its flip share one entry.
pub struct CachedAlias<'a> {
    inner: &'a dyn AliasAnalysis,
    cache: &'a AliasQueryCache,
}

impl<'a> CachedAlias<'a> {
    /// Wrap `inner`, memoizing into `cache`.
    pub fn new(inner: &'a dyn AliasAnalysis, cache: &'a AliasQueryCache) -> CachedAlias<'a> {
        CachedAlias { inner, cache }
    }
}

impl AliasAnalysis for CachedAlias<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        let key = if a <= b { (fid, a, b) } else { (fid, b, a) };
        if let Some(&r) = self.cache.alias.read().unwrap().get(&key) {
            self.cache.hit();
            return r;
        }
        self.cache.miss();
        let r = self.inner.alias(key.0, key.1, key.2);
        self.cache.alias.write().unwrap().insert(key, r);
        r
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        if let Some(r) = self.cache.bases.read().unwrap().get(&(fid, ptr)) {
            self.cache.hit();
            return r.clone();
        }
        self.cache.miss();
        let r = self.inner.base_objects(fid, ptr);
        self.cache
            .bases
            .write()
            .unwrap()
            .insert((fid, ptr), r.clone());
        r
    }

    fn name(&self) -> &'static str {
        "cached-aa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::module::{Global, GlobalInit};
    use noelle_ir::parser::parse_module;
    use noelle_ir::types::Type;

    fn module_with(f: noelle_ir::module::Function) -> (Module, FuncId) {
        let mut m = Module::new("t");
        let id = m.add_function(f);
        (m, id)
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, p, q), AliasResult::No);
        assert_eq!(aa.alias(fid, p, p), AliasResult::Must);
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, p, q), AliasResult::No);
    }

    #[test]
    fn alloca_does_not_alias_incoming_arg() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.alloca(Type::I64);
        b.store(Type::I64, Value::const_i64(0), q);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, q, Value::Arg(0)), AliasResult::No);
    }

    #[test]
    fn escaped_alloca_may_alias_arg() {
        // The alloca's address is passed to an external call, so it escapes.
        let mut m = Module::new("t");
        let ext = m.declare_function("capture", vec![Type::I64.ptr_to()], Type::Void);
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.alloca(Type::I64);
        b.call(ext, vec![q], Type::Void);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, q, Value::Arg(0)), AliasResult::May);
    }

    #[test]
    fn gep_constant_offsets_disambiguate() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let arr = b.alloca(Type::I64.array_of(10));
        let p0 = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(0)],
        );
        let p1 = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(1)],
        );
        let p0b = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(0)],
        );
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, p0, p1), AliasResult::No);
        assert_eq!(aa.alias(fid, p0, p0b), AliasResult::Must);
    }

    #[test]
    fn tbaa_separates_scalar_types() {
        // Two argument pointers with different pointee types.
        let mut b = FunctionBuilder::new(
            "f",
            vec![("p", Type::I64.ptr_to()), ("q", Type::F64.ptr_to())],
            Type::Void,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, Value::Arg(0), Value::Arg(1)), AliasResult::No);
        // Same pointee type: may alias.
        let mut b = FunctionBuilder::new(
            "g",
            vec![("p", Type::I64.ptr_to()), ("q", Type::I64.ptr_to())],
            Type::Void,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let mut m2 = Module::new("t2");
        let gid = m2.add_function(b.finish());
        let aa2 = BasicAlias::new(&m2);
        assert_eq!(
            aa2.alias(gid, Value::Arg(0), Value::Arg(1)),
            AliasResult::May
        );
    }

    #[test]
    fn null_never_aliases() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(
            aa.alias(fid, Value::Arg(0), Value::Const(Constant::Null)),
            AliasResult::No
        );
    }

    #[test]
    fn andersen_tracks_pointer_stored_in_memory() {
        // p = alloca i64; cell = alloca i64*; store p -> cell; q = load cell
        // q must may-alias p, and must not alias an unrelated alloca r.
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let cell = b.alloca(Type::I64.ptr_to());
        b.store(Type::I64.ptr_to(), p, cell);
        let q = b.load(Type::I64.ptr_to(), cell);
        let r = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, p), AliasResult::May);
        assert_eq!(andersen.alias(fid, q, r), AliasResult::No);
    }

    #[test]
    fn andersen_interprocedural_flow() {
        // id(p) returns its argument; q = id(a) aliases a, not b.
        let mut m = Module::new("t");
        let mut idb =
            FunctionBuilder::new("id", vec![("p", Type::I64.ptr_to())], Type::I64.ptr_to());
        let e = idb.entry_block();
        idb.switch_to(e);
        idb.ret(Some(Value::Arg(0)));
        let idf = m.add_function(idb.finish());

        let mut b = FunctionBuilder::new("caller", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let a = b.alloca(Type::I64);
        let bb = b.alloca(Type::I64);
        let q = b.call(idf, vec![a], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, a), AliasResult::May);
        assert_eq!(andersen.alias(fid, q, bb), AliasResult::No);
    }

    #[test]
    fn andersen_resolves_indirect_callees() {
        // fp = select c, @f1, @f2; call fp() — callees = {f1, f2}.
        let mut m = Module::new("t");
        let mut f1 = FunctionBuilder::new("f1", vec![], Type::Void);
        let e = f1.entry_block();
        f1.switch_to(e);
        f1.ret(None);
        let f1 = m.add_function(f1.finish());
        let mut f2 = FunctionBuilder::new("f2", vec![], Type::Void);
        let e = f2.entry_block();
        f2.switch_to(e);
        f2.ret(None);
        let f2 = m.add_function(f2.finish());
        let mut f3 = FunctionBuilder::new("f3", vec![], Type::Void);
        let e = f3.entry_block();
        f3.switch_to(e);
        f3.ret(None);
        let _f3 = m.add_function(f3.finish());

        let fty = Type::Func(std::sync::Arc::new(noelle_ir::types::FuncType {
            params: vec![],
            ret: Type::Void,
        }));
        let mut b = FunctionBuilder::new("caller", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let fp = b.select(fty.ptr_to(), b.arg(0), Value::Func(f1), Value::Func(f2));
        let call = b.call_indirect(fp, vec![], Type::Void);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        let callees = andersen.indirect_callees(fid, call.as_inst().unwrap());
        assert_eq!(callees, vec![f1, f2]);
    }

    #[test]
    fn malloc_results_are_distinct_objects() {
        let mut m = Module::new("t");
        let malloc = m.declare_function("malloc", vec![Type::I64], Type::I64.ptr_to());
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.call(malloc, vec![Value::const_i64(8)], Type::I64.ptr_to());
        let q = b.call(malloc, vec![Value::const_i64(8)], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, p, q), AliasResult::No);
        let basic = BasicAlias::new(&m);
        assert_eq!(basic.alias(fid, p, q), AliasResult::No);
    }

    #[test]
    fn globals_distinct_and_stack_composes() {
        let mut m = Module::new("t");
        let g1 = m.add_global(Global {
            name: "g1".into(),
            ty: Type::I64,
            init: GlobalInit::Zero,
            is_const: false,
        });
        let g2 = m.add_global(Global {
            name: "g2".into(),
            ty: Type::I64,
            init: GlobalInit::Zero,
            is_const: false,
        });
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic, &andersen]);
        assert_eq!(
            stack.alias(fid, Value::Global(g1), Value::Global(g2)),
            AliasResult::No
        );
        assert_eq!(
            stack.alias(fid, Value::Global(g1), Value::Global(g1)),
            AliasResult::Must
        );
    }

    #[test]
    fn base_objects_honor_bucketing_contract() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        for aa in [&basic as &dyn AliasAnalysis, &andersen, &stack] {
            let sp = aa.base_objects(fid, p).expect("alloca base is known");
            let sq = aa.base_objects(fid, q).expect("alloca base is known");
            // Disjoint known sets must imply a `No` answer.
            assert!(sp.intersection(&sq).next().is_none());
            assert_eq!(aa.alias(fid, p, q), AliasResult::No, "{}", aa.name());
        }
        // An incoming argument has no bounded base set under the basic tier.
        assert_eq!(basic.base_objects(fid, Value::Arg(0)), None);
    }

    #[test]
    fn cached_alias_memoizes_and_canonicalizes() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let basic = BasicAlias::new(&m);
        let cache = AliasQueryCache::new();
        let cached = CachedAlias::new(&basic, &cache);
        assert_eq!(cached.alias(fid, p, q), AliasResult::No);
        // The flipped query is the same canonical key: a hit.
        assert_eq!(cached.alias(fid, q, p), AliasResult::No);
        assert_eq!(cache.stats(), (1, 1));
        // Base-object queries memoize too.
        let s1 = cached.base_objects(fid, p);
        let s2 = cached.base_objects(fid, p);
        assert_eq!(s1, s2);
        assert_eq!(cache.stats(), (2, 2));
        // Clearing drops entries (next query misses) but keeps counters.
        cache.clear();
        assert_eq!(cached.alias(fid, p, q), AliasResult::No);
        assert_eq!(cache.stats(), (2, 3));
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn unknown_external_pointer_is_conservative() {
        let mut m = Module::new("t");
        let ext = m.declare_function("mystery", vec![], Type::I64.ptr_to());
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.call(ext, vec![], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, Value::Arg(0)), AliasResult::May);
    }

    #[test]
    fn rows_codec_round_trips() {
        let mut rows = PointsToRows::new();
        rows.insert(
            (0, 3),
            BTreeSet::from([
                MemoryObject::Global(GlobalId(1)),
                MemoryObject::Alloca(FuncId(0), InstId(7)),
            ]),
        );
        rows.insert(
            (0, 9),
            BTreeSet::from([MemoryObject::Heap(FuncId(2), InstId(4))]),
        );
        rows.insert(
            (1, 0),
            BTreeSet::from([MemoryObject::Function(FuncId(5)), MemoryObject::Unknown]),
        );
        let bytes = encode_rows(&rows);
        let decoded = decode_rows(&bytes).unwrap();
        assert_eq!(decoded, rows);
        assert_eq!(encode_rows(&decoded), bytes);
        // Empty rows round-trip too.
        let empty = PointsToRows::new();
        assert_eq!(decode_rows(&encode_rows(&empty)).unwrap(), empty);
    }

    #[test]
    fn rows_codec_rejects_malformed() {
        let mut rows = PointsToRows::new();
        rows.insert((0, 1), BTreeSet::from([MemoryObject::Global(GlobalId(0))]));
        rows.insert((1, 2), BTreeSet::from([MemoryObject::Unknown]));
        let bytes = encode_rows(&rows);
        for cut in 0..bytes.len() {
            assert!(decode_rows(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_rows(&long).is_err());
        // Out-of-domain key space and object tag.
        let mut w = ByteWriter::new();
        w.varint(1);
        w.u8(2); // key space must be 0 or 1
        w.varint(0);
        w.varint(0);
        assert!(decode_rows(&w.into_bytes()).is_err());
        let mut w = ByteWriter::new();
        w.varint(1);
        w.u8(0);
        w.varint(0);
        w.varint(1);
        w.u8(9); // bad object tag
        assert!(decode_rows(&w.into_bytes()).is_err());
        // Non-canonical key order (duplicate key) rejected, so equal rows
        // have exactly one encoding.
        let mut w = ByteWriter::new();
        w.varint(2);
        for _ in 0..2 {
            w.u8(0);
            w.varint(5);
            w.varint(1);
            w.u8(4);
        }
        assert!(decode_rows(&w.into_bytes()).is_err());
    }

    #[test]
    fn live_rows_encode_deterministically() {
        let m = parse_module(
            r#"
module "rows" {
global @g : i64 = i64 0
define i64 @f(i64* %p) {
entry:
  %a = alloca i64, i64 1
  store i64 i64 1, %p
  store i64 i64 2, %a
  %v = load i64, @g
  ret %v
}
}
"#,
        )
        .unwrap();
        let andersen = AndersenAlias::new(&m);
        for rows in AndersenAlias::new(&m).rows_by_function().values() {
            let bytes = encode_rows(rows);
            assert_eq!(&decode_rows(&bytes).unwrap(), rows);
        }
        // Two independent solves of the same module encode identically.
        let a = andersen.rows_by_function();
        let b = AndersenAlias::new(&m).rows_by_function();
        for (fid, rows) in &a {
            assert_eq!(encode_rows(rows), encode_rows(&b[fid]));
        }
    }
}
