//! Alias analyses.
//!
//! The paper's PDG is powered by a stack of alias analyses: LLVM's own basic
//! rules plus the external SCAF and SVF frameworks. This module provides the
//! equivalent two tiers:
//!
//! - [`BasicAlias`] — the "vanilla LLVM" tier: underlying-object rules
//!   (distinct allocations don't alias), constant-offset `gep` disambiguation,
//!   and strict-aliasing (TBAA-like) type rules;
//! - [`AndersenAlias`] — the "state-of-the-art" tier: a whole-program,
//!   flow-insensitive, inclusion-based (Andersen-style) points-to analysis
//!   with heap cloning by allocation site, escape handling through external
//!   calls, and iterative resolution of indirect-call targets.
//!
//! Figure 3 of the paper compares the fraction of memory dependences each
//! tier disproves; `noelle-bench` reproduces that comparison with these two
//! implementations.

use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{FuncId, GlobalId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::{Constant, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Outcome of an alias query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasResult {
    /// The two pointers never address overlapping memory.
    No,
    /// The two pointers may address overlapping memory.
    May,
    /// The two pointers always address exactly the same memory.
    Must,
}

/// An abstract memory object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum MemoryObject {
    /// A module-level global.
    Global(GlobalId),
    /// A stack allocation, identified by its `alloca`.
    Alloca(FuncId, InstId),
    /// A heap allocation, identified by its allocation call site.
    Heap(FuncId, InstId),
    /// A function (for function-pointer resolution).
    Function(FuncId),
    /// Memory we cannot model (externally provided, integer-cast pointers).
    Unknown,
}

/// Interface shared by all alias analyses: answer whether two pointer values
/// of function `fid` may address the same memory.
///
/// `Sync` is a supertrait so `&dyn AliasAnalysis` can be shared across the
/// per-function PDG construction threads; every analysis here is immutable
/// after construction (or, for [`CachedAlias`], internally synchronized).
pub trait AliasAnalysis: Sync {
    /// Query aliasing of pointers `a` and `b`, both values of function `fid`.
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult;

    /// The set of abstract objects pointer `ptr` may address, or `None` when
    /// the analysis cannot bound it. The contract consumed by the PDG's
    /// base-object bucketing: whenever `base_objects` returns disjoint
    /// non-`None` sets for two pointers, `alias` on that pair returns
    /// [`AliasResult::No`] — so the pair can be skipped without querying.
    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        let _ = (fid, ptr);
        None
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Underlying objects
// ---------------------------------------------------------------------------

/// The syntactic base(s) of a pointer value, chased through `gep`s, pointer
/// casts, `select`s and `phi`s (bounded depth). `None` in the returned set
/// means "unknown base".
/// True when the address of alloca `id` escapes the direct load/store
/// idiom in `f`: used as a stored *value*, a call argument, a `gep` base,
/// a cast source, or any other position besides the pointer operand of a
/// load or store. Non-escaping allocas have an exactly known access set,
/// which flow-sensitive clients (dead-store detection, scalar promotion)
/// require before trusting block-local reasoning.
pub fn alloca_address_taken(f: &noelle_ir::module::Function, id: InstId) -> bool {
    let a = Value::Inst(id);
    for other in f.inst_ids() {
        let uses_a = match f.inst(other) {
            // The pointer operand of a load (its only operand) is the
            // non-escaping use.
            Inst::Load { .. } => false,
            Inst::Store { val, .. } => *val == a,
            _ => f.inst(other).operands().contains(&a),
        };
        if uses_a {
            return true;
        }
    }
    false
}

pub fn underlying_objects(m: &Module, fid: FuncId, v: Value) -> BTreeSet<Option<MemoryObject>> {
    let mut out = BTreeSet::new();
    let mut visited = HashSet::new();
    collect_bases(m, fid, v, &mut out, &mut visited, 32);
    out
}

fn collect_bases(
    m: &Module,
    fid: FuncId,
    v: Value,
    out: &mut BTreeSet<Option<MemoryObject>>,
    visited: &mut HashSet<Value>,
    fuel: u32,
) {
    if fuel == 0 || !visited.insert(v) {
        out.insert(None);
        return;
    }
    let f = m.func(fid);
    match v {
        Value::Global(g) => {
            out.insert(Some(MemoryObject::Global(g)));
        }
        Value::Func(callee) => {
            out.insert(Some(MemoryObject::Function(callee)));
        }
        Value::Const(_) => {
            // Null / undef / integer constants: no object.
        }
        Value::Arg(_) => {
            out.insert(None);
        }
        Value::Inst(id) => match f.inst(id) {
            Inst::Alloca { .. } => {
                out.insert(Some(MemoryObject::Alloca(fid, id)));
            }
            Inst::Gep { base, .. } => collect_bases(m, fid, *base, out, visited, fuel - 1),
            Inst::Cast {
                op: noelle_ir::inst::CastOp::Bitcast,
                val,
                ..
            } => collect_bases(m, fid, *val, out, visited, fuel - 1),
            Inst::Cast { .. } => {
                out.insert(None);
            }
            Inst::Select { tval, fval, .. } => {
                collect_bases(m, fid, *tval, out, visited, fuel - 1);
                collect_bases(m, fid, *fval, out, visited, fuel - 1);
            }
            Inst::Phi { incomings, .. } => {
                for (_, iv) in incomings {
                    collect_bases(m, fid, *iv, out, visited, fuel - 1);
                }
            }
            Inst::Call { callee, .. } => {
                if let Callee::Direct(cid) = callee {
                    if crate::modref::is_allocator(&m.func(*cid).name) {
                        out.insert(Some(MemoryObject::Heap(fid, id)));
                        return;
                    }
                }
                out.insert(None);
            }
            _ => {
                out.insert(None);
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Basic (LLVM-tier) alias analysis
// ---------------------------------------------------------------------------

/// The "vanilla LLVM" alias tier. Stateless apart from a borrowed module.
pub struct BasicAlias<'m> {
    module: &'m Module,
}

impl<'m> BasicAlias<'m> {
    /// Create the basic tier over `module`.
    pub fn new(module: &'m Module) -> BasicAlias<'m> {
        BasicAlias { module }
    }

    /// Byte offset of a gep whose indices are all constants, with its base.
    fn const_gep_offset(&self, fid: FuncId, v: Value) -> Option<(Value, i64)> {
        let f = self.module.func(fid);
        let id = v.as_inst()?;
        if let Inst::Gep {
            base,
            base_ty,
            indices,
        } = f.inst(id)
        {
            let mut offset: i64 = 0;
            let mut ty = base_ty.clone();
            for (k, idx) in indices.iter().enumerate() {
                let c = match idx {
                    Value::Const(Constant::Int(c, _)) => *c,
                    _ => return None,
                };
                if k == 0 {
                    offset += c * ty.size_bytes() as i64;
                } else {
                    match &ty {
                        Type::Array(elem, _) => {
                            offset += c * elem.size_bytes() as i64;
                            ty = (**elem).clone();
                        }
                        Type::Struct(_) => {
                            offset += ty.struct_field_offset(c as usize)? as i64;
                            ty = ty.indexed(Some(c as usize))?.clone();
                        }
                        other => {
                            offset += c * other.size_bytes() as i64;
                        }
                    }
                }
            }
            Some((*base, offset))
        } else {
            None
        }
    }

    fn pointee_scalar_kind(&self, fid: FuncId, v: Value) -> Option<Type> {
        let f = self.module.func(fid);
        match f.value_type(self.module, v) {
            Type::Ptr(p) if p.is_scalar() => Some(*p),
            _ => None,
        }
    }
}

impl AliasAnalysis for BasicAlias<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        if a == b {
            return AliasResult::Must;
        }
        // Null pointers address nothing.
        if matches!(a, Value::Const(Constant::Null)) || matches!(b, Value::Const(Constant::Null)) {
            return AliasResult::No;
        }

        // Constant-offset geps off the same base.
        let ga = self.const_gep_offset(fid, a);
        let gb = self.const_gep_offset(fid, b);
        match (&ga, &gb) {
            (Some((ba, oa)), Some((bb, ob))) if ba == bb => {
                // Access sizes: the pointee of each pointer.
                let f = self.module.func(fid);
                let sa = f
                    .value_type(self.module, a)
                    .pointee()
                    .map(Type::size_bytes)
                    .unwrap_or(1) as i64;
                let sb = f
                    .value_type(self.module, b)
                    .pointee()
                    .map(Type::size_bytes)
                    .unwrap_or(1) as i64;
                if oa == ob {
                    return AliasResult::Must;
                }
                if oa + sa <= *ob || ob + sb <= *oa {
                    return AliasResult::No;
                }
                return AliasResult::May;
            }
            (Some((ba, _)), None) if *ba == b => return AliasResult::May,
            (None, Some((bb, _))) if *bb == a => return AliasResult::May,
            _ => {}
        }

        // Underlying-object rules.
        let oa = underlying_objects(self.module, fid, a);
        let ob = underlying_objects(self.module, fid, b);
        let a_known = !oa.contains(&None) && !oa.is_empty();
        let b_known = !ob.contains(&None) && !ob.is_empty();
        if a_known && b_known {
            let inter: Vec<_> = oa.intersection(&ob).collect();
            if inter.is_empty() {
                return AliasResult::No;
            }
        } else if a_known || b_known {
            // One side is a set of identified function-local objects, the
            // other is unknown (e.g. an incoming argument). A fresh alloca
            // cannot be addressed by a pointer that existed before it (LLVM's
            // non-escaping-alloca rule); globals, by contrast, can.
            let (known, _unknown) = if a_known { (&oa, &ob) } else { (&ob, &oa) };
            if known.iter().all(|o| {
                matches!(
                    o,
                    Some(MemoryObject::Alloca(_, _)) | Some(MemoryObject::Heap(_, _))
                )
            }) {
                let escaped = known.iter().any(|o| match o {
                    Some(MemoryObject::Alloca(f2, i)) | Some(MemoryObject::Heap(f2, i)) => {
                        object_escapes(self.module, *f2, *i)
                    }
                    _ => true,
                });
                if !escaped {
                    return AliasResult::No;
                }
            }
        }

        // Strict-aliasing (TBAA-lite): distinct scalar pointee types do not
        // alias.
        if let (Some(ta), Some(tb)) = (
            self.pointee_scalar_kind(fid, a),
            self.pointee_scalar_kind(fid, b),
        ) {
            if ta != tb {
                return AliasResult::No;
            }
        }

        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // Sound for bucketing because the underlying-object rule in `alias`
        // answers `No` on any pair of fully-known disjoint base sets, and the
        // earlier const-gep rules only produce `Must`/`May` for pointers
        // sharing a base (hence sharing base objects).
        let objs = underlying_objects(self.module, fid, ptr);
        if objs.is_empty() || objs.contains(&None) {
            return None;
        }
        Some(objs.into_iter().flatten().collect())
    }

    fn name(&self) -> &'static str {
        "basic-aa"
    }
}

/// True if the address of allocation `id` (an alloca or allocation call in
/// `fid`) may escape: stored to memory, passed to a call, returned, or cast
/// to an integer.
pub fn object_escapes(m: &Module, fid: FuncId, id: InstId) -> bool {
    let f = m.func(fid);
    // Worklist over the values derived from the allocation.
    let mut derived: HashSet<InstId> = HashSet::new();
    derived.insert(id);
    let uses = f.compute_uses();
    let mut work = vec![id];
    while let Some(cur) = work.pop() {
        for &u in uses.get(&cur).map(Vec::as_slice).unwrap_or(&[]) {
            match f.inst(u) {
                Inst::Gep { .. }
                | Inst::Cast {
                    op: noelle_ir::inst::CastOp::Bitcast,
                    ..
                }
                | Inst::Select { .. }
                | Inst::Phi { .. } => {
                    if derived.insert(u) {
                        work.push(u);
                    }
                }
                Inst::Load { .. } => {}
                Inst::Store { val, .. } => {
                    // Escapes if the *pointer itself* is stored somewhere.
                    if val.as_inst().map(|i| derived.contains(&i)).unwrap_or(false) {
                        return true;
                    }
                }
                Inst::Icmp { .. } | Inst::Fcmp { .. } => {}
                Inst::Call { .. } => return true,
                Inst::Cast { .. } => return true, // ptrtoint etc.
                Inst::Term(t) => {
                    if matches!(t, noelle_ir::inst::Terminator::Ret(Some(_))) {
                        return true;
                    }
                }
                _ => return true,
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Andersen-style inclusion-based points-to analysis
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum VarKey {
    /// The pointer value produced by an instruction.
    Local(FuncId, InstId),
    /// A formal argument.
    Arg(FuncId, u32),
    /// The return value of a function.
    Ret(FuncId),
    /// The contents of an abstract object (what loads from it yield).
    Content(usize),
    /// Synthetic source whose points-to set is exactly `{Unknown}`.
    UnknownSrc,
}

/// Whole-program Andersen points-to analysis and the alias interface on top.
pub struct AndersenAlias {
    vars: HashMap<VarKey, usize>,
    pts: Vec<BTreeSet<usize>>,
    objects: Vec<MemoryObject>,
    obj_ids: HashMap<MemoryObject, usize>,
    /// Resolved callees of each indirect call site.
    indirect_targets: HashMap<(FuncId, InstId), BTreeSet<FuncId>>,
}

struct Solver<'m> {
    m: &'m Module,
    vars: HashMap<VarKey, usize>,
    pts: Vec<BTreeSet<usize>>,
    succs: Vec<Vec<usize>>,  // copy edges: pts(to) ⊇ pts(from)
    loads: Vec<Vec<usize>>,  // loads[p] = dst vars of `dst = load p`
    stores: Vec<Vec<usize>>, // stores[p] = src vars of `store src, p`
    objects: Vec<MemoryObject>,
    obj_ids: HashMap<MemoryObject, usize>,
    indirect_sites: Vec<(FuncId, InstId)>,
    resolved: HashMap<(FuncId, InstId), BTreeSet<FuncId>>,
}

impl<'m> Solver<'m> {
    fn var(&mut self, key: VarKey) -> usize {
        if let Some(&v) = self.vars.get(&key) {
            return v;
        }
        let v = self.pts.len();
        self.vars.insert(key, v);
        self.pts.push(BTreeSet::new());
        self.succs.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        v
    }

    fn object(&mut self, o: MemoryObject) -> usize {
        if let Some(&i) = self.obj_ids.get(&o) {
            return i;
        }
        let i = self.objects.len();
        self.objects.push(o);
        self.obj_ids.insert(o, i);
        i
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from != to && !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Make `dst ⊇ value` for an operand value of function `fid`.
    fn flow_value_into(&mut self, fid: FuncId, v: Value, dst: usize) {
        match v {
            Value::Inst(id) => {
                let src = self.var(VarKey::Local(fid, id));
                self.add_edge(src, dst);
            }
            Value::Arg(i) => {
                let src = self.var(VarKey::Arg(fid, i));
                self.add_edge(src, dst);
            }
            Value::Global(g) => {
                let o = self.object(MemoryObject::Global(g));
                self.pts[dst].insert(o);
            }
            Value::Func(f2) => {
                let o = self.object(MemoryObject::Function(f2));
                self.pts[dst].insert(o);
            }
            Value::Const(_) => {}
        }
    }

    fn generate(&mut self) {
        // Globals that hold pointers into other globals / functions.
        for gid in self.m.global_ids().collect::<Vec<_>>() {
            let g = self.m.global(gid);
            let o = self.object(MemoryObject::Global(gid));
            let content = self.var(VarKey::Content(o));
            let _ = (g, content);
        }
        let unknown_obj = self.object(MemoryObject::Unknown);
        let unknown_content = self.var(VarKey::Content(unknown_obj));
        self.pts[unknown_content].insert(unknown_obj);
        let usrc = self.var(VarKey::UnknownSrc);
        self.pts[usrc].insert(unknown_obj);

        // Root functions — never called within the module and never
        // address-taken (e.g. `main`) — receive their pointer arguments from
        // outside the analyzed program, so those may point anywhere. Args of
        // internal functions are bound at their call sites instead.
        let mut referenced: HashSet<FuncId> = HashSet::new();
        for fid in self.m.func_ids() {
            let f = self.m.func(fid);
            for id in f.inst_ids() {
                if let Inst::Call {
                    callee: Callee::Direct(cid),
                    ..
                } = f.inst(id)
                {
                    referenced.insert(*cid);
                }
                for op in f.inst(id).operands() {
                    if let Value::Func(cid) = op {
                        referenced.insert(cid);
                    }
                }
            }
        }
        for fid in self.m.func_ids().collect::<Vec<_>>() {
            let f = self.m.func(fid);
            if f.is_declaration() {
                continue;
            }
            if !referenced.contains(&fid) {
                for (i, (_, ty)) in f.params.iter().enumerate() {
                    if ty.is_ptr() {
                        let av = self.var(VarKey::Arg(fid, i as u32));
                        self.pts[av].insert(unknown_obj);
                    }
                }
            }
            for id in f.inst_ids() {
                self.gen_inst(fid, id);
            }
        }
    }

    fn gen_inst(&mut self, fid: FuncId, id: InstId) {
        let f = self.m.func(fid);
        let inst = f.inst(id).clone();
        match inst {
            Inst::Alloca { .. } => {
                let o = self.object(MemoryObject::Alloca(fid, id));
                let dst = self.var(VarKey::Local(fid, id));
                self.pts[dst].insert(o);
                // Content var exists from first use.
                self.var(VarKey::Content(o));
            }
            Inst::Gep { base, .. } => {
                // Field-insensitive: a gep is a copy of its base.
                let dst = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, base, dst);
            }
            Inst::Cast { op, val, .. } => {
                let dst = self.var(VarKey::Local(fid, id));
                match op {
                    noelle_ir::inst::CastOp::Bitcast => self.flow_value_into(fid, val, dst),
                    noelle_ir::inst::CastOp::IntToPtr => {
                        let uo = self.object(MemoryObject::Unknown);
                        self.pts[dst].insert(uo);
                    }
                    _ => {}
                }
            }
            Inst::Select { tval, fval, .. } => {
                let dst = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, tval, dst);
                self.flow_value_into(fid, fval, dst);
            }
            Inst::Phi { incomings, .. } => {
                let dst = self.var(VarKey::Local(fid, id));
                for (_, v) in incomings {
                    self.flow_value_into(fid, v, dst);
                }
            }
            Inst::Load { ptr, .. } => {
                let dst = self.var(VarKey::Local(fid, id));
                let p = self.value_var(fid, ptr);
                self.loads[p].push(dst);
            }
            Inst::Store { val, ptr, .. } => {
                // Route the stored value through a dedicated var so constants
                // and args are handled uniformly.
                let src = self.var(VarKey::Local(fid, id));
                self.flow_value_into(fid, val, src);
                let p = self.value_var(fid, ptr);
                self.stores[p].push(src);
            }
            Inst::Call { callee, args, .. } => match callee {
                Callee::Direct(cid) => self.gen_direct_call(fid, id, cid, &args),
                Callee::Indirect(fp) => {
                    let _pvar = self.value_var(fid, fp);
                    self.indirect_sites.push((fid, id));
                }
            },
            _ => {}
        }
    }

    /// Var holding the points-to set of an operand value (materializing a
    /// synthetic var for address constants).
    fn value_var(&mut self, fid: FuncId, v: Value) -> usize {
        match v {
            Value::Inst(id) => self.var(VarKey::Local(fid, id)),
            Value::Arg(i) => self.var(VarKey::Arg(fid, i)),
            other => {
                // Globals/functions/constants: a fresh var seeded with the
                // address object. Keyed by a Local on the *using* function is
                // not possible (no inst id), so use a content-free trick:
                // allocate an anonymous var.
                let dst = self.pts.len();
                self.pts.push(BTreeSet::new());
                self.succs.push(Vec::new());
                self.loads.push(Vec::new());
                self.stores.push(Vec::new());
                self.flow_value_into(fid, other, dst);
                dst
            }
        }
    }

    fn gen_direct_call(&mut self, fid: FuncId, id: InstId, cid: FuncId, args: &[Value]) {
        let callee = self.m.func(cid);
        if callee.is_declaration() {
            let name = callee.name.clone();
            let dst = self.var(VarKey::Local(fid, id));
            if crate::modref::is_allocator(&name) {
                let o = self.object(MemoryObject::Heap(fid, id));
                self.pts[dst].insert(o);
                self.var(VarKey::Content(o));
            } else if crate::modref::external_effects(&name).opaque_pointers {
                // Unknown external: pointer args escape; the result may be
                // anything reachable from them or fresh unknown memory.
                let usrc = self.var(VarKey::UnknownSrc);
                let uo = self.object(MemoryObject::Unknown);
                self.pts[dst].insert(uo);
                for &a in args {
                    let av = self.value_var(fid, a);
                    self.stores[av].push(usrc);
                    self.add_edge(av, dst);
                }
            }
            return;
        }
        for (i, &a) in args.iter().enumerate() {
            if i < callee.params.len() && callee.params[i].1.is_ptr() {
                let pv = self.var(VarKey::Arg(cid, i as u32));
                self.flow_value_into(fid, a, pv);
            } else if i < callee.params.len() {
                // Non-pointer params can still smuggle pointers via casts;
                // ignored (matches field-insensitive precision).
            }
        }
        let rv = self.var(VarKey::Ret(cid));
        let dst = self.var(VarKey::Local(fid, id));
        self.add_edge(rv, dst);
        // Returns inside the callee feed Ret(cid); generated lazily here so
        // declarations don't need bodies.
        let callee_f = self.m.func(cid);
        for bid in callee_f.block_order().to_vec() {
            if let Some(noelle_ir::inst::Terminator::Ret(Some(v))) = callee_f.terminator(bid) {
                let v = *v;
                self.flow_value_into(cid, v, rv);
            }
        }
    }

    fn propagate(&mut self) {
        let mut work: Vec<usize> = (0..self.pts.len()).collect();
        while let Some(v) = work.pop() {
            let objs: Vec<usize> = self.pts[v].iter().copied().collect();
            // Complex constraints: materialize load/store edges for each
            // pointed-to object.
            let mut new_edges: Vec<(usize, usize)> = Vec::new();
            for &o in &objs {
                let content = self.var(VarKey::Content(o));
                for &dst in &self.loads[v] {
                    new_edges.push((content, dst));
                }
                for &src in &self.stores[v] {
                    new_edges.push((src, content));
                }
            }
            let mut touched = false;
            for (a, b) in new_edges {
                if !self.succs[a].contains(&b) {
                    self.succs[a].push(b);
                    touched = true;
                    // Flow immediately.
                    let add: Vec<usize> = self.pts[a].iter().copied().collect();
                    let before = self.pts[b].len();
                    self.pts[b].extend(add);
                    if self.pts[b].len() != before && !work.contains(&b) {
                        work.push(b);
                    }
                }
            }
            let _ = touched;
            // Copy edges.
            let succs = self.succs[v].clone();
            for s in succs {
                let add: Vec<usize> = self.pts[v].iter().copied().collect();
                let before = self.pts[s].len();
                self.pts[s].extend(add);
                if self.pts[s].len() != before && !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }

    /// Resolve indirect calls against the current solution; returns true if
    /// new call edges were added.
    fn resolve_indirect(&mut self) -> bool {
        let mut changed = false;
        let sites = self.indirect_sites.clone();
        for (fid, id) in sites {
            let f = self.m.func(fid);
            let (fp, args) = match f.inst(id) {
                Inst::Call {
                    callee: Callee::Indirect(fp),
                    args,
                    ..
                } => (*fp, args.clone()),
                _ => continue,
            };
            let pvar = self.value_var(fid, fp);
            let targets: Vec<FuncId> = self.pts[pvar]
                .iter()
                .filter_map(|&o| match self.objects[o] {
                    MemoryObject::Function(cid) => Some(cid),
                    _ => None,
                })
                .collect();
            for cid in targets {
                let entry = self.resolved.entry((fid, id)).or_default();
                if entry.insert(cid) {
                    changed = true;
                    self.gen_direct_call(fid, id, cid, &args);
                }
            }
        }
        changed
    }
}

impl AndersenAlias {
    /// Run the whole-program points-to analysis over `m`.
    pub fn new(m: &Module) -> AndersenAlias {
        let mut s = Solver {
            m,
            vars: HashMap::new(),
            pts: Vec::new(),
            succs: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            objects: Vec::new(),
            obj_ids: HashMap::new(),
            indirect_sites: Vec::new(),
            resolved: HashMap::new(),
        };
        s.generate();
        loop {
            s.propagate();
            if !s.resolve_indirect() {
                break;
            }
        }
        AndersenAlias {
            vars: s.vars,
            pts: s.pts,
            objects: s.objects,
            obj_ids: s.obj_ids,
            indirect_targets: s.resolved,
        }
    }

    /// Points-to set of a pointer value in function `fid`.
    pub fn points_to(&self, fid: FuncId, v: Value) -> BTreeSet<MemoryObject> {
        match v {
            Value::Inst(id) => self.var_pts(&VarKey::Local(fid, id)),
            Value::Arg(i) => self.var_pts(&VarKey::Arg(fid, i)),
            Value::Global(g) => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Global(g));
                s
            }
            Value::Func(f2) => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Function(f2));
                s
            }
            Value::Const(_) => BTreeSet::new(),
        }
    }

    fn var_pts(&self, key: &VarKey) -> BTreeSet<MemoryObject> {
        match self.vars.get(key) {
            Some(&v) => self.pts[v].iter().map(|&o| self.objects[o]).collect(),
            None => {
                let mut s = BTreeSet::new();
                s.insert(MemoryObject::Unknown);
                s
            }
        }
    }

    /// The query-observable points-to rows of every function, keyed by
    /// function: for each instruction-produced or argument pointer value,
    /// the set of abstract objects it may address.
    ///
    /// Rows that answer [`AliasAnalysis::alias`] and
    /// [`AliasAnalysis::base_objects`] identically are canonicalized away:
    /// an empty set, a set containing [`MemoryObject::Unknown`], and an
    /// untracked variable all behave as "may address anything", so none of
    /// them appears in the map. Two solves whose rows compare equal for a
    /// function therefore answer every alias query on that function
    /// identically — the comparison the incremental invalidation engine
    /// uses to decide which cached per-function results survive an edit.
    pub fn rows_by_function(&self) -> HashMap<FuncId, BTreeMap<(u8, u32), BTreeSet<MemoryObject>>> {
        let mut out: HashMap<FuncId, BTreeMap<(u8, u32), BTreeSet<MemoryObject>>> = HashMap::new();
        for (key, &v) in &self.vars {
            let (fid, row) = match key {
                VarKey::Local(fid, id) => (*fid, (0u8, id.0)),
                VarKey::Arg(fid, i) => (*fid, (1u8, *i)),
                VarKey::Ret(_) | VarKey::Content(_) | VarKey::UnknownSrc => continue,
            };
            let set: BTreeSet<MemoryObject> =
                self.pts[v].iter().map(|&o| self.objects[o]).collect();
            if set.is_empty() || set.contains(&MemoryObject::Unknown) {
                continue; // canonically "unbounded", same as an absent row
            }
            out.entry(fid).or_default().insert(row, set);
        }
        out
    }

    /// Possible callees of the indirect call `id` in `fid`, as resolved by
    /// the points-to solution. Used by the complete call graph abstraction.
    pub fn indirect_callees(&self, fid: FuncId, id: InstId) -> Vec<FuncId> {
        self.indirect_targets
            .get(&(fid, id))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// True if `o` is tracked at all.
    pub fn knows_object(&self, o: MemoryObject) -> bool {
        self.obj_ids.contains_key(&o)
    }
}

impl AliasAnalysis for AndersenAlias {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        if a == b {
            return AliasResult::Must;
        }
        if matches!(a, Value::Const(Constant::Null)) || matches!(b, Value::Const(Constant::Null)) {
            return AliasResult::No;
        }
        let pa = self.points_to(fid, a);
        let pb = self.points_to(fid, b);
        if pa.is_empty() || pb.is_empty() {
            return AliasResult::May;
        }
        if pa.contains(&MemoryObject::Unknown) || pb.contains(&MemoryObject::Unknown) {
            return AliasResult::May;
        }
        if pa.intersection(&pb).next().is_none() {
            return AliasResult::No;
        }
        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // Sound for bucketing: `alias` answers `No` exactly when both
        // points-to sets are non-empty, Unknown-free, and disjoint.
        let pts = self.points_to(fid, ptr);
        if pts.is_empty() || pts.contains(&MemoryObject::Unknown) {
            return None;
        }
        Some(pts)
    }

    fn name(&self) -> &'static str {
        "andersen-aa"
    }
}

/// A stack of alias analyses queried most-precise-last: the first tier to
/// answer `No` or `Must` wins; otherwise the next tier is consulted. This is
/// how NOELLE composes LLVM's analyses with SCAF and SVF.
pub struct AliasStack<'a> {
    tiers: Vec<&'a dyn AliasAnalysis>,
}

impl<'a> AliasStack<'a> {
    /// Build a stack from ordered tiers.
    pub fn new(tiers: Vec<&'a dyn AliasAnalysis>) -> AliasStack<'a> {
        AliasStack { tiers }
    }
}

impl AliasAnalysis for AliasStack<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        for t in &self.tiers {
            match t.alias(fid, a, b) {
                AliasResult::May => continue,
                decisive => return decisive,
            }
        }
        // Cross-tier rule: each tier's base set over-approximates the
        // concrete objects its pointer can address, so the tightest sets may
        // come from different tiers and still prove disjointness. This also
        // makes the stack honor the `base_objects` bucketing contract.
        if let (Some(sa), Some(sb)) = (self.base_objects(fid, a), self.base_objects(fid, b)) {
            if sa.intersection(&sb).next().is_none() {
                return AliasResult::No;
            }
        }
        AliasResult::May
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        // The tightest (smallest) known set among the tiers.
        self.tiers
            .iter()
            .filter_map(|t| t.base_objects(fid, ptr))
            .min_by_key(BTreeSet::len)
    }

    fn name(&self) -> &'static str {
        "alias-stack"
    }
}

// ---------------------------------------------------------------------------
// Memoizing wrapper
// ---------------------------------------------------------------------------

/// Shared memoization state for [`CachedAlias`]. Owns nothing about the
/// module, so it can outlive the (borrowing) analyses it accelerates: the
/// `Noelle` manager keeps one across queries and wraps each freshly-built
/// alias stack around it. Internally synchronized, so one cache may serve
/// the parallel per-function PDG builders concurrently.
#[derive(Default)]
pub struct AliasQueryCache {
    alias: std::sync::RwLock<HashMap<(FuncId, Value, Value), AliasResult>>,
    bases: std::sync::RwLock<BaseObjectCache>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Memoized base-object resolutions; `None` marks a pointer whose base set
/// escaped the resolver's fuel (treated as unknown).
type BaseObjectCache = HashMap<(FuncId, Value), Option<BTreeSet<MemoryObject>>>;

impl AliasQueryCache {
    /// An empty cache.
    pub fn new() -> AliasQueryCache {
        AliasQueryCache::default()
    }

    /// `(hits, misses)` accumulated over both query kinds.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Fraction of queries answered from the cache (0.0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Drop all memoized results (module mutated) but keep the counters.
    pub fn clear(&self) {
        self.alias.write().unwrap().clear();
        self.bases.write().unwrap().clear();
    }

    /// Drop only the entries belonging to the given functions — both query
    /// kinds key on the owning `FuncId`, so a per-function edit can shed
    /// exactly the answers it may have changed while every other function's
    /// memoized results keep serving.
    pub fn invalidate_funcs(&self, fids: &BTreeSet<FuncId>) {
        self.alias
            .write()
            .unwrap()
            .retain(|k, _| !fids.contains(&k.0));
        self.bases
            .write()
            .unwrap()
            .retain(|k, _| !fids.contains(&k.0));
    }

    /// Number of memoized entries across both query kinds.
    pub fn len(&self) -> usize {
        self.alias.read().unwrap().len() + self.bases.read().unwrap().len()
    }

    /// True when no results are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn hit(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Memoizing wrapper over any alias analysis. Alias keys are canonicalized
/// to `(min, max)` — every analysis here is symmetric in its arguments — so
/// a query and its flip share one entry.
pub struct CachedAlias<'a> {
    inner: &'a dyn AliasAnalysis,
    cache: &'a AliasQueryCache,
}

impl<'a> CachedAlias<'a> {
    /// Wrap `inner`, memoizing into `cache`.
    pub fn new(inner: &'a dyn AliasAnalysis, cache: &'a AliasQueryCache) -> CachedAlias<'a> {
        CachedAlias { inner, cache }
    }
}

impl AliasAnalysis for CachedAlias<'_> {
    fn alias(&self, fid: FuncId, a: Value, b: Value) -> AliasResult {
        let key = if a <= b { (fid, a, b) } else { (fid, b, a) };
        if let Some(&r) = self.cache.alias.read().unwrap().get(&key) {
            self.cache.hit();
            return r;
        }
        self.cache.miss();
        let r = self.inner.alias(key.0, key.1, key.2);
        self.cache.alias.write().unwrap().insert(key, r);
        r
    }

    fn base_objects(&self, fid: FuncId, ptr: Value) -> Option<BTreeSet<MemoryObject>> {
        if let Some(r) = self.cache.bases.read().unwrap().get(&(fid, ptr)) {
            self.cache.hit();
            return r.clone();
        }
        self.cache.miss();
        let r = self.inner.base_objects(fid, ptr);
        self.cache
            .bases
            .write()
            .unwrap()
            .insert((fid, ptr), r.clone());
        r
    }

    fn name(&self) -> &'static str {
        "cached-aa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::module::{Global, GlobalInit};
    use noelle_ir::types::Type;

    fn module_with(f: noelle_ir::module::Function) -> (Module, FuncId) {
        let mut m = Module::new("t");
        let id = m.add_function(f);
        (m, id)
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, p, q), AliasResult::No);
        assert_eq!(aa.alias(fid, p, p), AliasResult::Must);
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, p, q), AliasResult::No);
    }

    #[test]
    fn alloca_does_not_alias_incoming_arg() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.alloca(Type::I64);
        b.store(Type::I64, Value::const_i64(0), q);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, q, Value::Arg(0)), AliasResult::No);
    }

    #[test]
    fn escaped_alloca_may_alias_arg() {
        // The alloca's address is passed to an external call, so it escapes.
        let mut m = Module::new("t");
        let ext = m.declare_function("capture", vec![Type::I64.ptr_to()], Type::Void);
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.alloca(Type::I64);
        b.call(ext, vec![q], Type::Void);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, q, Value::Arg(0)), AliasResult::May);
    }

    #[test]
    fn gep_constant_offsets_disambiguate() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let arr = b.alloca(Type::I64.array_of(10));
        let p0 = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(0)],
        );
        let p1 = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(1)],
        );
        let p0b = b.gep(
            Type::I64.array_of(10),
            arr,
            vec![Value::const_i64(0), Value::const_i64(0)],
        );
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, p0, p1), AliasResult::No);
        assert_eq!(aa.alias(fid, p0, p0b), AliasResult::Must);
    }

    #[test]
    fn tbaa_separates_scalar_types() {
        // Two argument pointers with different pointee types.
        let mut b = FunctionBuilder::new(
            "f",
            vec![("p", Type::I64.ptr_to()), ("q", Type::F64.ptr_to())],
            Type::Void,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(aa.alias(fid, Value::Arg(0), Value::Arg(1)), AliasResult::No);
        // Same pointee type: may alias.
        let mut b = FunctionBuilder::new(
            "g",
            vec![("p", Type::I64.ptr_to()), ("q", Type::I64.ptr_to())],
            Type::Void,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let mut m2 = Module::new("t2");
        let gid = m2.add_function(b.finish());
        let aa2 = BasicAlias::new(&m2);
        assert_eq!(
            aa2.alias(gid, Value::Arg(0), Value::Arg(1)),
            AliasResult::May
        );
    }

    #[test]
    fn null_never_aliases() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let aa = BasicAlias::new(&m);
        assert_eq!(
            aa.alias(fid, Value::Arg(0), Value::Const(Constant::Null)),
            AliasResult::No
        );
    }

    #[test]
    fn andersen_tracks_pointer_stored_in_memory() {
        // p = alloca i64; cell = alloca i64*; store p -> cell; q = load cell
        // q must may-alias p, and must not alias an unrelated alloca r.
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let cell = b.alloca(Type::I64.ptr_to());
        b.store(Type::I64.ptr_to(), p, cell);
        let q = b.load(Type::I64.ptr_to(), cell);
        let r = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, p), AliasResult::May);
        assert_eq!(andersen.alias(fid, q, r), AliasResult::No);
    }

    #[test]
    fn andersen_interprocedural_flow() {
        // id(p) returns its argument; q = id(a) aliases a, not b.
        let mut m = Module::new("t");
        let mut idb =
            FunctionBuilder::new("id", vec![("p", Type::I64.ptr_to())], Type::I64.ptr_to());
        let e = idb.entry_block();
        idb.switch_to(e);
        idb.ret(Some(Value::Arg(0)));
        let idf = m.add_function(idb.finish());

        let mut b = FunctionBuilder::new("caller", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let a = b.alloca(Type::I64);
        let bb = b.alloca(Type::I64);
        let q = b.call(idf, vec![a], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, a), AliasResult::May);
        assert_eq!(andersen.alias(fid, q, bb), AliasResult::No);
    }

    #[test]
    fn andersen_resolves_indirect_callees() {
        // fp = select c, @f1, @f2; call fp() — callees = {f1, f2}.
        let mut m = Module::new("t");
        let mut f1 = FunctionBuilder::new("f1", vec![], Type::Void);
        let e = f1.entry_block();
        f1.switch_to(e);
        f1.ret(None);
        let f1 = m.add_function(f1.finish());
        let mut f2 = FunctionBuilder::new("f2", vec![], Type::Void);
        let e = f2.entry_block();
        f2.switch_to(e);
        f2.ret(None);
        let f2 = m.add_function(f2.finish());
        let mut f3 = FunctionBuilder::new("f3", vec![], Type::Void);
        let e = f3.entry_block();
        f3.switch_to(e);
        f3.ret(None);
        let _f3 = m.add_function(f3.finish());

        let fty = Type::Func(std::sync::Arc::new(noelle_ir::types::FuncType {
            params: vec![],
            ret: Type::Void,
        }));
        let mut b = FunctionBuilder::new("caller", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let fp = b.select(fty.ptr_to(), b.arg(0), Value::Func(f1), Value::Func(f2));
        let call = b.call_indirect(fp, vec![], Type::Void);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        let callees = andersen.indirect_callees(fid, call.as_inst().unwrap());
        assert_eq!(callees, vec![f1, f2]);
    }

    #[test]
    fn malloc_results_are_distinct_objects() {
        let mut m = Module::new("t");
        let malloc = m.declare_function("malloc", vec![Type::I64], Type::I64.ptr_to());
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.call(malloc, vec![Value::const_i64(8)], Type::I64.ptr_to());
        let q = b.call(malloc, vec![Value::const_i64(8)], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, p, q), AliasResult::No);
        let basic = BasicAlias::new(&m);
        assert_eq!(basic.alias(fid, p, q), AliasResult::No);
    }

    #[test]
    fn globals_distinct_and_stack_composes() {
        let mut m = Module::new("t");
        let g1 = m.add_global(Global {
            name: "g1".into(),
            ty: Type::I64,
            init: GlobalInit::Zero,
            is_const: false,
        });
        let g2 = m.add_global(Global {
            name: "g2".into(),
            ty: Type::I64,
            init: GlobalInit::Zero,
            is_const: false,
        });
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic, &andersen]);
        assert_eq!(
            stack.alias(fid, Value::Global(g1), Value::Global(g2)),
            AliasResult::No
        );
        assert_eq!(
            stack.alias(fid, Value::Global(g1), Value::Global(g1)),
            AliasResult::Must
        );
    }

    #[test]
    fn base_objects_honor_bucketing_contract() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        for aa in [&basic as &dyn AliasAnalysis, &andersen, &stack] {
            let sp = aa.base_objects(fid, p).expect("alloca base is known");
            let sq = aa.base_objects(fid, q).expect("alloca base is known");
            // Disjoint known sets must imply a `No` answer.
            assert!(sp.intersection(&sq).next().is_none());
            assert_eq!(aa.alias(fid, p, q), AliasResult::No, "{}", aa.name());
        }
        // An incoming argument has no bounded base set under the basic tier.
        assert_eq!(basic.base_objects(fid, Value::Arg(0)), None);
    }

    #[test]
    fn cached_alias_memoizes_and_canonicalizes() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let p = b.alloca(Type::I64);
        let q = b.alloca(Type::I64);
        b.ret(None);
        let (m, fid) = module_with(b.finish());
        let basic = BasicAlias::new(&m);
        let cache = AliasQueryCache::new();
        let cached = CachedAlias::new(&basic, &cache);
        assert_eq!(cached.alias(fid, p, q), AliasResult::No);
        // The flipped query is the same canonical key: a hit.
        assert_eq!(cached.alias(fid, q, p), AliasResult::No);
        assert_eq!(cache.stats(), (1, 1));
        // Base-object queries memoize too.
        let s1 = cached.base_objects(fid, p);
        let s2 = cached.base_objects(fid, p);
        assert_eq!(s1, s2);
        assert_eq!(cache.stats(), (2, 2));
        // Clearing drops entries (next query misses) but keeps counters.
        cache.clear();
        assert_eq!(cached.alias(fid, p, q), AliasResult::No);
        assert_eq!(cache.stats(), (2, 3));
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn unknown_external_pointer_is_conservative() {
        let mut m = Module::new("t");
        let ext = m.declare_function("mystery", vec![], Type::I64.ptr_to());
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let q = b.call(ext, vec![], Type::I64.ptr_to());
        b.ret(None);
        let fid = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        assert_eq!(andersen.alias(fid, q, Value::Arg(0)), AliasResult::May);
    }
}
