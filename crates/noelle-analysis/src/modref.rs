//! Mod/ref information for call instructions.
//!
//! Used by the PDG builder to decide whether a call can depend on a memory
//! access, and by the invariant analysis (Algorithm 1 in the paper queries
//! `getModRefBehavior` on calls).

use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::intern::Symbol;
use noelle_ir::module::{FuncId, Module};
use std::collections::{BTreeSet, HashMap};
use std::sync::{OnceLock, RwLock};

/// Memory behaviour of a known external (declared) function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExternalEffect {
    /// Reads caller-visible memory.
    pub reads_memory: bool,
    /// Writes caller-visible memory.
    pub writes_memory: bool,
    /// Returns freshly allocated memory.
    pub allocates: bool,
    /// Pointer arguments escape / returned pointers are unanalyzable.
    pub opaque_pointers: bool,
    /// Has non-memory side effects (I/O, OS interaction) and must not be
    /// removed or reordered even if memory-transparent.
    pub io: bool,
}

impl ExternalEffect {
    const PURE: ExternalEffect = ExternalEffect {
        reads_memory: false,
        writes_memory: false,
        allocates: false,
        opaque_pointers: false,
        io: false,
    };
}

/// True if `name` is a known allocation routine.
pub fn is_allocator(name: &str) -> bool {
    matches!(name, "malloc" | "calloc" | "noelle.alloc")
}

/// Symbol form of [`is_allocator`]: three `u32` comparisons against the
/// pre-interned allocator names, no string traffic. The form the alias hot
/// paths use, paired with the interned name every `Function` caches.
pub fn is_allocator_sym(sym: Symbol) -> bool {
    static ALLOCATORS: OnceLock<[Symbol; 3]> = OnceLock::new();
    ALLOCATORS
        .get_or_init(|| {
            [
                Symbol::intern("malloc"),
                Symbol::intern("calloc"),
                Symbol::intern("noelle.alloc"),
            ]
        })
        .contains(&sym)
}

/// Symbol form of [`external_effects`], memoized per symbol: the prefix
/// matching runs once per distinct external name for the process lifetime,
/// and repeat classifications are a map probe keyed by `u32`.
pub fn external_effects_sym(sym: Symbol) -> ExternalEffect {
    static CACHE: OnceLock<RwLock<HashMap<Symbol, ExternalEffect>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(&e) = cache.read().unwrap().get(&sym) {
        return e;
    }
    let e = external_effects(sym.as_str());
    cache.write().unwrap().insert(sym, e);
    e
}

/// Effects of a known external function. Unknown names get a fully
/// conservative summary.
pub fn external_effects(name: &str) -> ExternalEffect {
    match name {
        // Math: pure.
        "sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "pow" | "fabs" | "floor" | "ceil" => {
            ExternalEffect::PURE
        }
        // Allocation: returns fresh memory, does not touch existing memory.
        _ if is_allocator(name) => ExternalEffect {
            allocates: true,
            ..ExternalEffect::PURE
        },
        "free" => ExternalEffect {
            writes_memory: true,
            ..ExternalEffect::PURE
        },
        // Output routines: I/O side effects, read the printed buffer if any,
        // but do not write user-visible memory.
        "print_i64" | "print_f64" | "puts" | "noelle.print" => ExternalEffect {
            reads_memory: true,
            io: true,
            ..ExternalEffect::PURE
        },
        // Pseudo-random value generators (PRVJeeves models these): internal
        // state only; modelled as I/O so calls stay ordered relative to each
        // other but do not create memory dependences with loads/stores.
        n if n.starts_with("prv.") => ExternalEffect {
            io: true,
            ..ExternalEffect::PURE
        },
        // Timing / OS callback intrinsics injected by COOS and TIME.
        n if n.starts_with("coos.") || n.starts_with("clock.") => ExternalEffect {
            io: true,
            ..ExternalEffect::PURE
        },
        // CARAT guard intrinsics: read the guarded address, never write.
        n if n.starts_with("carat.") => ExternalEffect {
            reads_memory: true,
            io: true,
            ..ExternalEffect::PURE
        },
        // NOELLE parallel runtime: moves values through queues/environments.
        n if n.starts_with("noelle.") => ExternalEffect {
            reads_memory: true,
            writes_memory: true,
            opaque_pointers: true,
            io: true,
            ..ExternalEffect::PURE
        },
        _ => ExternalEffect {
            reads_memory: true,
            writes_memory: true,
            allocates: false,
            opaque_pointers: true,
            io: true,
        },
    }
}

/// Bottom-up memory summaries for every function of a module.
#[derive(Clone, Debug)]
pub struct ModRefSummaries {
    reads: HashMap<FuncId, bool>,
    writes: HashMap<FuncId, bool>,
    io: HashMap<FuncId, bool>,
}

impl ModRefSummaries {
    /// Compute summaries by fixed point over the (direct) call structure;
    /// indirect calls are conservatively assumed to read, write, and perform
    /// I/O.
    pub fn compute(m: &Module) -> ModRefSummaries {
        let mut reads: HashMap<FuncId, bool> = HashMap::new();
        let mut writes: HashMap<FuncId, bool> = HashMap::new();
        let mut io: HashMap<FuncId, bool> = HashMap::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            if f.is_declaration() {
                let e = external_effects_sym(f.name_sym());
                reads.insert(fid, e.reads_memory);
                writes.insert(fid, e.writes_memory);
                io.insert(fid, e.io);
            } else {
                reads.insert(fid, false);
                writes.insert(fid, false);
                io.insert(fid, false);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for fid in m.func_ids() {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let mut r = reads[&fid];
                let mut w = writes[&fid];
                let mut o = io[&fid];
                for id in f.inst_ids() {
                    match f.inst(id) {
                        Inst::Load { .. } => r = true,
                        Inst::Store { .. } => w = true,
                        Inst::Call { callee, .. } => match callee {
                            Callee::Direct(cid) => {
                                r |= reads[cid];
                                w |= writes[cid];
                                o |= io[cid];
                            }
                            Callee::Indirect(_) => {
                                r = true;
                                w = true;
                                o = true;
                            }
                        },
                        _ => {}
                    }
                }
                if r != reads[&fid] || w != writes[&fid] || o != io[&fid] {
                    reads.insert(fid, r);
                    writes.insert(fid, w);
                    io.insert(fid, o);
                    changed = true;
                }
            }
        }
        ModRefSummaries { reads, writes, io }
    }

    /// Recompute the summaries of `affected` functions in place, leaving
    /// every other entry untouched.
    ///
    /// Sound exactly when `affected` is closed under "transitive direct
    /// caller of an edited function": summaries flow callee -> caller, so a
    /// function outside that closure cannot call into it (it would be a
    /// transitive caller itself) and its summary is already at the global
    /// fixed point. The restricted fixed point then converges to the same
    /// solution [`ModRefSummaries::compute`] would produce from scratch —
    /// including non-monotone edits (a deleted store clears bits), because
    /// the affected entries are reset to their base before iterating.
    pub fn recompute_scoped(&mut self, m: &Module, affected: &BTreeSet<FuncId>) {
        for &fid in affected {
            let f = m.func(fid);
            if f.is_declaration() {
                let e = external_effects_sym(f.name_sym());
                self.reads.insert(fid, e.reads_memory);
                self.writes.insert(fid, e.writes_memory);
                self.io.insert(fid, e.io);
            } else {
                self.reads.insert(fid, false);
                self.writes.insert(fid, false);
                self.io.insert(fid, false);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &fid in affected {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let mut r = self.reads[&fid];
                let mut w = self.writes[&fid];
                let mut o = self.io[&fid];
                for id in f.inst_ids() {
                    match f.inst(id) {
                        Inst::Load { .. } => r = true,
                        Inst::Store { .. } => w = true,
                        Inst::Call { callee, .. } => match callee {
                            Callee::Direct(cid) => {
                                r |= self.reads.get(cid).copied().unwrap_or(true);
                                w |= self.writes.get(cid).copied().unwrap_or(true);
                                o |= self.io.get(cid).copied().unwrap_or(true);
                            }
                            Callee::Indirect(_) => {
                                r = true;
                                w = true;
                                o = true;
                            }
                        },
                        _ => {}
                    }
                }
                if r != self.reads[&fid] || w != self.writes[&fid] || o != self.io[&fid] {
                    self.reads.insert(fid, r);
                    self.writes.insert(fid, w);
                    self.io.insert(fid, o);
                    changed = true;
                }
            }
        }
    }

    /// True if function `fid` may read caller-visible memory.
    pub fn may_read(&self, fid: FuncId) -> bool {
        self.reads.get(&fid).copied().unwrap_or(true)
    }

    /// True if function `fid` may write caller-visible memory.
    pub fn may_write(&self, fid: FuncId) -> bool {
        self.writes.get(&fid).copied().unwrap_or(true)
    }

    /// True if function `fid` may perform I/O or other non-memory effects.
    pub fn has_io(&self, fid: FuncId) -> bool {
        self.io.get(&fid).copied().unwrap_or(true)
    }

    /// May the call instruction `id` of function `fid` read memory?
    pub fn call_may_read(&self, m: &Module, fid: FuncId, id: InstId) -> bool {
        match m.func(fid).inst(id) {
            Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } => self.may_read(*cid),
            Inst::Call { .. } => true,
            _ => false,
        }
    }

    /// May the call instruction `id` of function `fid` write memory?
    pub fn call_may_write(&self, m: &Module, fid: FuncId, id: InstId) -> bool {
        match m.func(fid).inst(id) {
            Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } => self.may_write(*cid),
            Inst::Call { .. } => true,
            _ => false,
        }
    }

    /// May the call instruction `id` of function `fid` perform I/O (or
    /// other non-memory effects)? Distinguishes externally-visible effects
    /// from plain memory writes: a write-only callee can be privatized,
    /// an I/O callee cannot.
    pub fn call_has_io(&self, m: &Module, fid: FuncId, id: InstId) -> bool {
        match m.func(fid).inst(id) {
            Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } => self.has_io(*cid),
            Inst::Call { .. } => true,
            _ => false,
        }
    }

    /// Does the call instruction have any effect that pins it in place
    /// (memory writes or I/O)?
    pub fn call_has_side_effects(&self, m: &Module, fid: FuncId, id: InstId) -> bool {
        match m.func(fid).inst(id) {
            Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } => self.may_write(*cid) || self.has_io(*cid),
            Inst::Call { .. } => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    #[test]
    fn external_table() {
        assert!(external_effects("sqrt") == ExternalEffect::PURE);
        assert!(external_effects("malloc").allocates);
        assert!(!external_effects("malloc").writes_memory);
        assert!(external_effects("print_i64").io);
        assert!(!external_effects("print_i64").writes_memory);
        assert!(external_effects("somethingelse").writes_memory);
        assert!(is_allocator("calloc"));
        assert!(!is_allocator("free"));
    }

    #[test]
    fn summaries_propagate_through_calls() {
        let mut m = Module::new("t");
        // leaf: pure computation
        let mut leaf = FunctionBuilder::new("leaf", vec![("x", Type::I64)], Type::I64);
        let e = leaf.entry_block();
        leaf.switch_to(e);
        let v = leaf.binop(
            noelle_ir::inst::BinOp::Add,
            Type::I64,
            leaf.arg(0),
            Value::const_i64(1),
        );
        leaf.ret(Some(v));
        let leaf = m.add_function(leaf.finish());

        // writer: stores to memory
        let mut writer =
            FunctionBuilder::new("writer", vec![("p", Type::I64.ptr_to())], Type::Void);
        let e = writer.entry_block();
        writer.switch_to(e);
        writer.store(Type::I64, Value::const_i64(1), Value::Arg(0));
        writer.ret(None);
        let writer = m.add_function(writer.finish());

        // caller: calls both
        let mut caller =
            FunctionBuilder::new("caller", vec![("p", Type::I64.ptr_to())], Type::Void);
        let e = caller.entry_block();
        caller.switch_to(e);
        let c1 = caller.call(leaf, vec![Value::const_i64(1)], Type::I64);
        let c2 = caller.call(writer, vec![Value::Arg(0)], Type::Void);
        caller.ret(None);
        let caller_id = m.add_function(caller.finish());

        let s = ModRefSummaries::compute(&m);
        assert!(!s.may_write(leaf));
        assert!(!s.may_read(leaf));
        assert!(s.may_write(writer));
        assert!(s.may_write(caller_id));
        assert!(!s.call_may_write(&m, caller_id, c1.as_inst().unwrap()));
        assert!(s.call_may_write(&m, caller_id, c2.as_inst().unwrap()));
        assert!(!s.call_has_side_effects(&m, caller_id, c1.as_inst().unwrap()));
    }

    #[test]
    fn recursion_terminates_and_is_conservative_only_as_needed() {
        let mut m = Module::new("t");
        // Two mutually recursive pure functions.
        let a_decl = Function_new_stub(&mut m, "a");
        let b_decl = Function_new_stub(&mut m, "b");
        // Fill bodies: a calls b, b calls a; both otherwise pure.
        fill_call_body(&mut m, a_decl, b_decl);
        fill_call_body(&mut m, b_decl, a_decl);
        let s = ModRefSummaries::compute(&m);
        assert!(!s.may_write(a_decl));
        assert!(!s.may_read(b_decl));
    }

    #[allow(non_snake_case)]
    fn Function_new_stub(m: &mut Module, name: &str) -> FuncId {
        m.add_function(noelle_ir::module::Function::new(
            name,
            vec![("x".into(), Type::I64)],
            Type::I64,
        ))
    }

    fn fill_call_body(m: &mut Module, this: FuncId, other: FuncId) {
        let mut f = noelle_ir::module::Function::new(
            m.func(this).name.clone(),
            vec![("x".into(), Type::I64)],
            Type::I64,
        );
        let entry = f.add_block("entry");
        let call = f.append_inst(
            entry,
            Inst::Call {
                callee: Callee::Direct(other),
                args: vec![Value::Arg(0)],
                ret_ty: Type::I64,
            },
        );
        f.set_terminator(
            entry,
            noelle_ir::inst::Terminator::Ret(Some(Value::Inst(call))),
        );
        *m.func_mut(this) = f;
    }
}
