//! Edge cases of the simulated machine: deadlocks, unknown externals,
//! runtime function pointers, allocation intrinsics, and queue capacity
//! back-pressure.

use noelle_ir::parser::parse_module;
use noelle_runtime::{run_module, RtError, RunConfig};

fn run(src: &str) -> Result<noelle_runtime::RunResult, RtError> {
    let m = parse_module(src).expect("parses");
    run_module(&m, "main", &[], &RunConfig::default())
}

#[test]
fn pop_with_no_producer_deadlocks() {
    let err = run(r#"
module "t" {
declare i64 @noelle.queue.create(i64 %cap)
declare i64 @noelle.queue.pop(i64 %q)
define i64 @main() {
entry:
  %q = call i64 @noelle.queue.create(i64 4)
  %v = call i64 @noelle.queue.pop(%q)
  ret %v
}
}
"#)
    .unwrap_err();
    assert_eq!(err, RtError::Deadlock);
}

#[test]
fn unknown_external_is_reported() {
    let err = run(r#"
module "t" {
declare i64 @no.such.function(i64 %x)
define i64 @main() {
entry:
  %v = call i64 @no.such.function(i64 1)
  ret %v
}
}
"#)
    .unwrap_err();
    assert!(matches!(err, RtError::UnknownExternal(name) if name == "no.such.function"));
}

#[test]
fn runtime_function_pointers_dispatch() {
    let r = run(r#"
module "t" {
define i64 @double(i64 %x) {
entry:
  %r = mul i64 %x, i64 2
  ret %r
}
define i64 @triple(i64 %x) {
entry:
  %r = mul i64 %x, i64 3
  ret %r
}
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 6
  condbr %c, body, exit
body:
  %bit = and i64 %i, i64 1
  %odd = icmp eq i64 %bit, i64 1
  %fp = select fn i64(i64)* %odd, @triple, @double
  %v = call i64 %fp(%i)
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#)
    .unwrap();
    // even i doubled, odd i tripled: 0+3+4+9+8+15 = 39
    assert_eq!(r.ret_i64(), Some(39));
}

#[test]
fn calloc_zeroes_and_sizes_correctly() {
    let r = run(r#"
module "t" {
declare i64* @calloc(i64 %n, i64 %sz)
define i64 @main() {
entry:
  %p = call i64* @calloc(i64 4, i64 8)
  %p3 = gep i64, %p, i64 3
  store i64 i64 5, %p3
  %v0 = load i64, %p
  %v3 = load i64, %p3
  %r = add i64 %v0, %v3
  ret %r
}
}
"#)
    .unwrap();
    assert_eq!(r.ret_i64(), Some(5));
}

#[test]
fn queue_capacity_applies_back_pressure_without_loss() {
    // Producer pushes 50 items through a capacity-2 queue; consumer sums.
    let r = run(r#"
module "t" {
declare i64 @noelle.queue.create(i64 %cap)
declare void @noelle.queue.push(i64 %q, i64 %v)
declare i64 @noelle.queue.pop(i64 %q)
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @stage(i64* %env, i64 %id, i64 %n) {
entry:
  %qp = gep i64, %env, i64 0
  %q = load i64, %qp
  %isprod = icmp eq i64 %id, i64 0
  condbr %isprod, ploop_h, cloop_h
ploop_h:
  br ploop
ploop:
  %i = phi i64 [ploop_h: i64 0] [ploop: %i2]
  call void @noelle.queue.push(%q, %i)
  %i2 = add i64 %i, i64 1
  %pc = icmp slt i64 %i2, i64 50
  condbr %pc, ploop, pdone
pdone:
  ret void
cloop_h:
  br cloop
cloop:
  %j = phi i64 [cloop_h: i64 0] [cloop: %j2]
  %s = phi i64 [cloop_h: i64 0] [cloop: %s2]
  %v = call i64 @noelle.queue.pop(%q)
  %s2 = add i64 %s, %v
  %j2 = add i64 %j, i64 1
  %cc = icmp slt i64 %j2, i64 50
  condbr %cc, cloop, cdone
cdone:
  %outp = gep i64, %env, i64 1
  store i64 %s2, %outp
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 2
  %q = call i64 @noelle.queue.create(i64 2)
  %qp = gep i64, %env, i64 0
  store i64 %q, %qp
  call void @noelle.task.dispatch(@stage, %env, i64 2)
  %outp = gep i64, %env, i64 1
  %out = load i64, %outp
  ret %out
}
}
"#)
    .unwrap();
    assert_eq!(r.ret_i64(), Some((0..50).sum::<i64>()));
}

#[test]
fn nested_dispatch_joins_inner_fleet_first() {
    // A dispatched task itself dispatches: both layers must join correctly.
    let r = run(r#"
module "t" {
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @inner(i64* %env, i64 %id, i64 %n) {
entry:
  %base = load i64, %env
  %slotidx = add i64 %id, i64 4
  %p = gep i64, %env, %slotidx
  %v = add i64 %base, %id
  store i64 %v, %p
  ret void
}
define void @outer(i64* %env, i64 %id, i64 %n) {
entry:
  store i64 i64 100, %env
  call void @noelle.task.dispatch(@inner, %env, i64 2)
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 8
  call void @noelle.task.dispatch(@outer, %env, i64 1)
  %p4 = gep i64, %env, i64 4
  %v4 = load i64, %p4
  %p5 = gep i64, %env, i64 5
  %v5 = load i64, %p5
  %r = add i64 %v4, %v5
  ret %r
}
}
"#)
    .unwrap();
    assert_eq!(r.ret_i64(), Some(100 + 101));
}

#[test]
fn output_interleaves_in_virtual_time_order() {
    let r = run(r#"
module "t" {
declare void @print_i64(i64 %v)
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @task(i64* %env, i64 %id, i64 %n) {
entry:
  call void @print_i64(%id)
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 1
  call void @noelle.task.dispatch(@task, %env, i64 3)
  ret i64 0
}
}
"#)
    .unwrap();
    // Dispatch staggers task start times, so prints appear in task order.
    assert_eq!(r.output, vec!["0", "1", "2"]);
}

#[test]
fn branch_profile_collection() {
    let m = parse_module(
        r#"
module "t" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [header: %i2]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 10
  condbr %c, header, exit
exit:
  ret %i2
}
}
"#,
    )
    .unwrap();
    let cfg = RunConfig {
        collect_profiles: true,
        ..RunConfig::default()
    };
    let r = run_module(&m, "main", &[], &cfg).unwrap();
    // The header branch runs 10 times and is taken (back edge) 9 of them.
    let bias = r
        .profiles
        .branch_bias("main", noelle_ir::module::BlockId(1))
        .expect("branch recorded");
    assert!((bias - 0.9).abs() < 1e-9, "bias = {bias}");
}
