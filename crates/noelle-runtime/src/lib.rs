//! # noelle-runtime
//!
//! The execution substrate of NOELLE-rs: an IR interpreter coupled to a
//! **simulated multi-core machine**. It plays three roles from the paper:
//!
//! 1. **Profiler backend** (`noelle-prof-coverage` + training inputs): runs
//!    a module and produces the block/invocation counts the PRO abstraction
//!    queries.
//! 2. **Parallel runtime**: implements the `noelle.*` intrinsics the
//!    parallelizing custom tools emit — task dispatch over simulated cores,
//!    inter-core queues (DSWP), and sequential-segment gates (HELIX) — with
//!    communication costs taken from the AR (architecture) abstraction.
//! 3. **Hardware stand-in** for the evaluation: wall-clock speedups of
//!    Figure 5 become virtual-cycle speedups on a deterministic
//!    discrete-event simulation (see DESIGN.md's substitution table).
//!
//! ## Example
//!
//! ```
//! use noelle_ir::parser::parse_module;
//! use noelle_runtime::{run_module, RunConfig};
//!
//! let m = parse_module(r#"
//! module "demo" {
//! define i64 @main() {
//! entry:
//!   %x = add i64 i64 40, i64 2
//!   ret %x
//! }
//! }
//! "#).unwrap();
//! let result = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
//! assert_eq!(result.ret_i64(), Some(42));
//! assert!(result.cycles > 0);
//! ```

pub mod cost;
pub mod machine;
pub mod memory;

pub use machine::{run_module, RtError, RunConfig, RunResult};
pub use memory::{Memory, RtVal};
