//! The instruction cost model of the simulated machine (virtual cycles).

use noelle_ir::inst::{BinOp, Inst, Terminator};

/// Cycles charged for one execution of `inst`. Costs approximate a simple
/// in-order core; what matters for the evaluation is the *relative* weight
/// of computation vs. memory vs. communication, not absolute accuracy.
pub fn inst_cost(inst: &Inst) -> u64 {
    match inst {
        Inst::Alloca { .. } => 2,
        Inst::Load { .. } => 4,
        Inst::Store { .. } => 4,
        Inst::Gep { .. } => 1,
        Inst::Bin { op, .. } => bin_cost(*op),
        Inst::Icmp { .. } => 1,
        Inst::Fcmp { .. } => 2,
        Inst::Cast { .. } => 1,
        Inst::Select { .. } => 1,
        Inst::Phi { .. } => 0,
        Inst::Call { .. } => 3, // call overhead; callee body charged separately
        Inst::Term(Terminator::Ret(_)) => 1,
        Inst::Term(Terminator::Br(_)) => 1,
        Inst::Term(Terminator::CondBr { .. }) => 2,
        Inst::Term(Terminator::Switch { .. }) => 3,
        Inst::Term(Terminator::Unreachable) => 0,
    }
}

fn bin_cost(op: BinOp) -> u64 {
    match op {
        BinOp::Add
        | BinOp::Sub
        | BinOp::And
        | BinOp::Or
        | BinOp::Xor
        | BinOp::Shl
        | BinOp::AShr
        | BinOp::LShr
        | BinOp::SMax
        | BinOp::SMin => 1,
        BinOp::Mul => 3,
        BinOp::Div | BinOp::Rem => 20,
        BinOp::FAdd | BinOp::FSub => 3,
        BinOp::FMul => 4,
        BinOp::FMax | BinOp::FMin => 2,
        BinOp::FDiv => 18,
    }
}

/// Cost of a known external routine, in cycles.
pub fn external_cost(name: &str) -> u64 {
    match name {
        "sqrt" => 18,
        "sin" | "cos" | "tan" => 40,
        "exp" | "log" | "pow" => 45,
        "fabs" | "floor" | "ceil" => 3,
        "malloc" | "calloc" => 30,
        "free" => 10,
        "print_i64" | "print_f64" => 12,
        // PRVG families for the PRVJeeves experiments: same interface,
        // different quality/cost points.
        "prv.mt.next" => 40, // Mersenne-Twister-class: high quality, slow
        "prv.lcg.next" => 8, // LCG: medium
        "prv.xs.next" => 5,  // xorshift: fast
        "carat.guard" => 2,
        "coos.callback" => 6,
        "clock.set" => 4,
        _ => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    #[test]
    fn relative_weights_sane() {
        let add = Inst::Bin {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Value::const_i64(1),
            rhs: Value::const_i64(2),
        };
        let div = Inst::Bin {
            op: BinOp::Div,
            ty: Type::I64,
            lhs: Value::const_i64(1),
            rhs: Value::const_i64(2),
        };
        let load = Inst::Load {
            ty: Type::I64,
            ptr: Value::Arg(0),
        };
        assert!(inst_cost(&add) < inst_cost(&load));
        assert!(inst_cost(&load) < inst_cost(&div));
        let phi = Inst::Phi {
            ty: Type::I64,
            incomings: vec![],
        };
        assert_eq!(inst_cost(&phi), 0);
    }

    #[test]
    fn prv_generators_ordered_by_cost() {
        assert!(external_cost("prv.xs.next") < external_cost("prv.lcg.next"));
        assert!(external_cost("prv.lcg.next") < external_cost("prv.mt.next"));
    }
}
