//! Runtime values and the flat memory model.

use noelle_ir::module::{FuncId, GlobalId, Module};
use noelle_ir::types::{FloatWidth, IntWidth, Type};
use noelle_ir::value::Constant;
use std::collections::HashMap;

/// A runtime value: 64-bit integer (also used for pointers and booleans) or
/// double-precision float (also used for f32, widened).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtVal {
    /// Integer / pointer / boolean payload.
    I(i64),
    /// Floating-point payload.
    F(f64),
}

impl RtVal {
    /// Integer payload.
    ///
    /// # Panics
    /// Panics if the value is a float (a type-confusion bug in the
    /// interpreter or input program).
    pub fn as_i(self) -> i64 {
        match self {
            RtVal::I(v) => v,
            RtVal::F(v) => panic!("expected integer, found float {v}"),
        }
    }

    /// Float payload.
    ///
    /// # Panics
    /// Panics if the value is an integer.
    pub fn as_f(self) -> f64 {
        match self {
            RtVal::F(v) => v,
            RtVal::I(v) => panic!("expected float, found integer {v}"),
        }
    }

    /// Build from a constant (context type decides the null/undef payload).
    pub fn from_const(c: &Constant) -> RtVal {
        match c {
            Constant::Int(v, _) => RtVal::I(*v),
            Constant::Float(bits, _) => RtVal::F(f64::from_bits(*bits)),
            Constant::Null => RtVal::I(0),
            Constant::Undef => RtVal::I(0),
        }
    }
}

/// Tag set on encoded function-pointer addresses.
pub const FUNC_PTR_TAG: i64 = 0x4000_0000_0000_0000;

/// Encode a function id as a callable address.
pub fn encode_func_ptr(f: FuncId) -> i64 {
    FUNC_PTR_TAG | f.0 as i64
}

/// Decode a callable address back to a function id.
pub fn decode_func_ptr(addr: i64) -> Option<FuncId> {
    if addr & FUNC_PTR_TAG != 0 {
        Some(FuncId((addr & 0xFFFF_FFFF) as u32))
    } else {
        None
    }
}

/// Flat byte-addressable memory: globals at the bottom, then a bump-allocated
/// heap (mallocs and allocas). Address 0 is never mapped, so null
/// dereferences trap.
#[derive(Debug)]
pub struct Memory {
    data: Vec<u8>,
    global_addr: HashMap<GlobalId, i64>,
    brk: i64,
}

/// Base address of the first allocation (addresses below are unmapped).
const BASE: i64 = 0x1000;

impl Memory {
    /// Initialize memory with every global of `m` laid out and initialized.
    pub fn new(m: &Module) -> Memory {
        let mut mem = Memory {
            data: Vec::new(),
            global_addr: HashMap::new(),
            brk: BASE,
        };
        for gid in m.global_ids() {
            let g = m.global(gid);
            let addr = mem.bump(g.ty.size_bytes() as i64);
            mem.global_addr.insert(gid, addr);
            match &g.init {
                noelle_ir::module::GlobalInit::Zero => {}
                noelle_ir::module::GlobalInit::Scalar(c) => {
                    mem.write_scalar(addr, &g.ty, RtVal::from_const(c))
                        .expect("global init in range");
                }
                noelle_ir::module::GlobalInit::Array(cs) => {
                    if let Type::Array(elem, _) = &g.ty {
                        let sz = elem.size_bytes() as i64;
                        for (i, c) in cs.iter().enumerate() {
                            mem.write_scalar(addr + i as i64 * sz, elem, RtVal::from_const(c))
                                .expect("global init in range");
                        }
                    }
                }
            }
        }
        mem
    }

    /// Allocate `size` bytes (zeroed) and return the base address.
    pub fn bump(&mut self, size: i64) -> i64 {
        let addr = self.brk;
        self.brk += size.max(0);
        // Round to 8-byte alignment.
        self.brk = (self.brk + 7) & !7;
        let need = (self.brk - BASE) as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        addr
    }

    /// Address of global `g`.
    pub fn global_addr(&self, g: GlobalId) -> i64 {
        self.global_addr[&g]
    }

    /// True if `[addr, addr+len)` lies within allocated memory.
    pub fn in_bounds(&self, addr: i64, len: i64) -> bool {
        addr >= BASE && len >= 0 && addr - BASE + len <= self.data.len() as i64
    }

    fn slice(&self, addr: i64, len: usize) -> Option<&[u8]> {
        if !self.in_bounds(addr, len as i64) {
            return None;
        }
        let off = (addr - BASE) as usize;
        Some(&self.data[off..off + len])
    }

    fn slice_mut(&mut self, addr: i64, len: usize) -> Option<&mut [u8]> {
        if !self.in_bounds(addr, len as i64) {
            return None;
        }
        let off = (addr - BASE) as usize;
        Some(&mut self.data[off..off + len])
    }

    /// Load a scalar of type `ty` from `addr`.
    pub fn read_scalar(&self, addr: i64, ty: &Type) -> Option<RtVal> {
        Some(match ty {
            Type::Int(w) => {
                let bytes = self.slice(addr, w.bytes() as usize)?;
                let mut buf = [0u8; 8];
                buf[..bytes.len()].copy_from_slice(bytes);
                let raw = i64::from_le_bytes(buf);
                // Sign-extend from width.
                let shift = 64 - w.bits();
                RtVal::I(if *w == IntWidth::I64 {
                    raw
                } else {
                    (raw << shift) >> shift
                })
            }
            Type::Float(FloatWidth::F64) => {
                let bytes = self.slice(addr, 8)?;
                RtVal::F(f64::from_le_bytes(bytes.try_into().ok()?))
            }
            Type::Float(FloatWidth::F32) => {
                let bytes = self.slice(addr, 4)?;
                RtVal::F(f32::from_le_bytes(bytes.try_into().ok()?) as f64)
            }
            Type::Ptr(_) | Type::Func(_) => {
                let bytes = self.slice(addr, 8)?;
                RtVal::I(i64::from_le_bytes(bytes.try_into().ok()?))
            }
            _ => return None,
        })
    }

    /// Store scalar `v` of type `ty` at `addr`.
    pub fn write_scalar(&mut self, addr: i64, ty: &Type, v: RtVal) -> Option<()> {
        match ty {
            Type::Int(w) => {
                let n = w.bytes() as usize;
                let bytes = v.as_i().to_le_bytes();
                self.slice_mut(addr, n)?.copy_from_slice(&bytes[..n]);
            }
            Type::Float(FloatWidth::F64) => {
                self.slice_mut(addr, 8)?
                    .copy_from_slice(&v.as_f().to_le_bytes());
            }
            Type::Float(FloatWidth::F32) => {
                self.slice_mut(addr, 4)?
                    .copy_from_slice(&(v.as_f() as f32).to_le_bytes());
            }
            Type::Ptr(_) | Type::Func(_) => {
                self.slice_mut(addr, 8)?
                    .copy_from_slice(&v.as_i().to_le_bytes());
            }
            _ => return None,
        }
        Some(())
    }

    /// Current break (top of allocated memory).
    pub fn brk(&self) -> i64 {
        self.brk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::module::{Global, GlobalInit};

    #[test]
    fn func_ptr_round_trip() {
        let f = FuncId(17);
        assert_eq!(decode_func_ptr(encode_func_ptr(f)), Some(f));
        assert_eq!(decode_func_ptr(0x2000), None);
    }

    #[test]
    fn globals_initialized() {
        let mut m = Module::new("t");
        let s = m.add_global(Global {
            name: "s".into(),
            ty: Type::I64,
            init: GlobalInit::Scalar(Constant::Int(7, IntWidth::I64)),
            is_const: false,
        });
        let a = m.add_global(Global {
            name: "a".into(),
            ty: Type::I32.array_of(3),
            init: GlobalInit::Array(vec![
                Constant::Int(1, IntWidth::I32),
                Constant::Int(2, IntWidth::I32),
                Constant::Int(3, IntWidth::I32),
            ]),
            is_const: false,
        });
        let mem = Memory::new(&m);
        assert_eq!(
            mem.read_scalar(mem.global_addr(s), &Type::I64),
            Some(RtVal::I(7))
        );
        let base = mem.global_addr(a);
        for i in 0..3 {
            assert_eq!(
                mem.read_scalar(base + 4 * i, &Type::I32),
                Some(RtVal::I(i + 1))
            );
        }
    }

    #[test]
    fn scalar_round_trips_with_sign_extension() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        let p = mem.bump(64);
        mem.write_scalar(p, &Type::I8, RtVal::I(-1)).unwrap();
        assert_eq!(mem.read_scalar(p, &Type::I8), Some(RtVal::I(-1)));
        mem.write_scalar(p, &Type::I32, RtVal::I(-123456)).unwrap();
        assert_eq!(mem.read_scalar(p, &Type::I32), Some(RtVal::I(-123456)));
        mem.write_scalar(p + 8, &Type::F64, RtVal::F(2.5)).unwrap();
        assert_eq!(mem.read_scalar(p + 8, &Type::F64), Some(RtVal::F(2.5)));
        mem.write_scalar(p + 16, &Type::F32, RtVal::F(1.25))
            .unwrap();
        assert_eq!(mem.read_scalar(p + 16, &Type::F32), Some(RtVal::F(1.25)));
        mem.write_scalar(p + 24, &Type::I64.ptr_to(), RtVal::I(0x2000))
            .unwrap();
        assert_eq!(
            mem.read_scalar(p + 24, &Type::I64.ptr_to()),
            Some(RtVal::I(0x2000))
        );
    }

    #[test]
    fn null_and_oob_trap() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        assert_eq!(mem.read_scalar(0, &Type::I64), None);
        assert_eq!(mem.write_scalar(0, &Type::I64, RtVal::I(1)), None);
        let p = mem.bump(8);
        assert!(mem.read_scalar(p, &Type::I64).is_some());
        assert_eq!(mem.read_scalar(p + 8, &Type::I64), None);
    }

    #[test]
    fn bump_is_aligned() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        let a = mem.bump(3);
        let b = mem.bump(5);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
    }
}
