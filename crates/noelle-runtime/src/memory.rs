//! Runtime values and the flat memory model.

use noelle_ir::inst::InstId;
use noelle_ir::module::{FuncId, GlobalId, Module};
use noelle_ir::types::{FloatWidth, IntWidth, Type};
use noelle_ir::value::Constant;
use std::collections::{BTreeSet, HashMap};

/// A runtime value: 64-bit integer (also used for pointers and booleans) or
/// double-precision float (also used for f32, widened).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtVal {
    /// Integer / pointer / boolean payload.
    I(i64),
    /// Floating-point payload.
    F(f64),
}

/// A runtime value had the wrong payload kind for the operation applied to
/// it: an integer op saw a float or vice versa. Verifier-clean programs can
/// still hit this at runtime (e.g. via indirect calls through a pointer with
/// a lying type), so it is a reportable error, not a process abort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TypeConfusion {
    /// What the operation needed ("integer" or "float").
    pub expected: &'static str,
    /// What the value actually held.
    pub found: RtVal,
}

impl std::fmt::Display for TypeConfusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.found {
            RtVal::I(v) => write!(f, "expected {}, found integer {v}", self.expected),
            RtVal::F(v) => write!(f, "expected {}, found float {v}", self.expected),
        }
    }
}

impl std::error::Error for TypeConfusion {}

impl RtVal {
    /// Integer payload, or a [`TypeConfusion`] error if the value is a float.
    pub fn try_i(self) -> Result<i64, TypeConfusion> {
        match self {
            RtVal::I(v) => Ok(v),
            RtVal::F(_) => Err(TypeConfusion {
                expected: "integer",
                found: self,
            }),
        }
    }

    /// Float payload, or a [`TypeConfusion`] error if the value is an
    /// integer.
    pub fn try_f(self) -> Result<f64, TypeConfusion> {
        match self {
            RtVal::F(v) => Ok(v),
            RtVal::I(_) => Err(TypeConfusion {
                expected: "float",
                found: self,
            }),
        }
    }

    /// Build from a constant (context type decides the null/undef payload).
    pub fn from_const(c: &Constant) -> RtVal {
        match c {
            Constant::Int(v, _) => RtVal::I(*v),
            Constant::Float(bits, _) => RtVal::F(f64::from_bits(*bits)),
            Constant::Null => RtVal::I(0),
            Constant::Undef => RtVal::I(0),
        }
    }
}

/// Why a scalar store failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MemError {
    /// The address range is unmapped (null or past the break).
    OutOfBounds,
    /// The value's payload kind does not match the store type.
    Type(TypeConfusion),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds => write!(f, "out-of-bounds access"),
            MemError::Type(tc) => tc.fmt(f),
        }
    }
}

impl std::error::Error for MemError {}

impl From<TypeConfusion> for MemError {
    fn from(tc: TypeConfusion) -> MemError {
        MemError::Type(tc)
    }
}

/// Tag set on encoded function-pointer addresses.
pub const FUNC_PTR_TAG: i64 = 0x4000_0000_0000_0000;

/// Encode a function id as a callable address.
pub fn encode_func_ptr(f: FuncId) -> i64 {
    FUNC_PTR_TAG | f.0 as i64
}

/// Decode a callable address back to a function id.
pub fn decode_func_ptr(addr: i64) -> Option<FuncId> {
    if addr & FUNC_PTR_TAG != 0 {
        Some(FuncId((addr & 0xFFFF_FFFF) as u32))
    } else {
        None
    }
}

/// One runtime-observed memory dependence: instruction `src` wrote a byte
/// that instruction `dst` later read, both inside function `func`. Ordered so
/// collections of observed deps have a canonical, deterministic order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ObservedDep {
    /// Function both instructions belong to.
    pub func: FuncId,
    /// The producing store.
    pub src: InstId,
    /// The consuming load.
    pub dst: InstId,
}

/// Records runtime producer→consumer memory dependences: a per-byte
/// last-writer map plus the set of (same-function) RAW pairs observed.
///
/// Tracing is on physical addresses; the bump allocator never reuses an
/// address, so two accesses to the same byte really did touch the same
/// object and no false dependences are recorded.
#[derive(Debug, Default)]
pub struct DepTracer {
    last_writer: HashMap<i64, (FuncId, InstId)>,
    observed: BTreeSet<ObservedDep>,
}

impl DepTracer {
    /// Note that `inst` in `func` wrote `[addr, addr+len)`.
    pub fn record_store(&mut self, func: FuncId, inst: InstId, addr: i64, len: i64) {
        for b in addr..addr + len.max(0) {
            self.last_writer.insert(b, (func, inst));
        }
    }

    /// Note that `inst` in `func` read `[addr, addr+len)`, recording a RAW
    /// dependence on each byte's last writer when it is in the same function
    /// (the PDG is per-function, so only those pairs are checkable).
    pub fn record_load(&mut self, func: FuncId, inst: InstId, addr: i64, len: i64) {
        for b in addr..addr + len.max(0) {
            if let Some(&(wf, wi)) = self.last_writer.get(&b) {
                if wf == func {
                    self.observed.insert(ObservedDep {
                        func,
                        src: wi,
                        dst: inst,
                    });
                }
            }
        }
    }

    /// The observed dependences, in canonical order.
    pub fn into_observed(self) -> Vec<ObservedDep> {
        self.observed.into_iter().collect()
    }
}

/// Flat byte-addressable memory: globals at the bottom, then a bump-allocated
/// heap (mallocs and allocas). Address 0 is never mapped, so null
/// dereferences trap.
#[derive(Debug)]
pub struct Memory {
    data: Vec<u8>,
    global_addr: HashMap<GlobalId, i64>,
    brk: i64,
    globals_end: i64,
}

/// Base address of the first allocation (addresses below are unmapped).
const BASE: i64 = 0x1000;

impl Memory {
    /// Initialize memory with every global of `m` laid out and initialized.
    pub fn new(m: &Module) -> Memory {
        let mut mem = Memory {
            data: Vec::new(),
            global_addr: HashMap::new(),
            brk: BASE,
            globals_end: BASE,
        };
        for gid in m.global_ids() {
            let g = m.global(gid);
            let addr = mem.bump(g.ty.size_bytes() as i64);
            mem.global_addr.insert(gid, addr);
            match &g.init {
                noelle_ir::module::GlobalInit::Zero => {}
                noelle_ir::module::GlobalInit::Scalar(c) => {
                    mem.write_scalar(addr, &g.ty, RtVal::from_const(c))
                        .expect("global scalar init must be in range and type-correct");
                }
                noelle_ir::module::GlobalInit::Array(cs) => {
                    if let Type::Array(elem, _) = &g.ty {
                        let sz = elem.size_bytes() as i64;
                        for (i, c) in cs.iter().enumerate() {
                            mem.write_scalar(addr + i as i64 * sz, elem, RtVal::from_const(c))
                                .expect("global array init must be in range and type-correct");
                        }
                    }
                }
            }
        }
        mem.globals_end = mem.brk;
        mem
    }

    /// Allocate `size` bytes (zeroed) and return the base address.
    pub fn bump(&mut self, size: i64) -> i64 {
        let addr = self.brk;
        self.brk += size.max(0);
        // Round to 8-byte alignment.
        self.brk = (self.brk + 7) & !7;
        let need = (self.brk - BASE) as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        addr
    }

    /// Address of global `g`.
    pub fn global_addr(&self, g: GlobalId) -> i64 {
        self.global_addr[&g]
    }

    /// True if `[addr, addr+len)` lies within allocated memory.
    pub fn in_bounds(&self, addr: i64, len: i64) -> bool {
        addr >= BASE && len >= 0 && addr - BASE + len <= self.data.len() as i64
    }

    fn slice(&self, addr: i64, len: usize) -> Option<&[u8]> {
        if !self.in_bounds(addr, len as i64) {
            return None;
        }
        let off = (addr - BASE) as usize;
        Some(&self.data[off..off + len])
    }

    fn slice_mut(&mut self, addr: i64, len: usize) -> Option<&mut [u8]> {
        if !self.in_bounds(addr, len as i64) {
            return None;
        }
        let off = (addr - BASE) as usize;
        Some(&mut self.data[off..off + len])
    }

    /// Load a scalar of type `ty` from `addr`.
    pub fn read_scalar(&self, addr: i64, ty: &Type) -> Option<RtVal> {
        Some(match ty {
            Type::Int(w) => {
                let bytes = self.slice(addr, w.bytes() as usize)?;
                let mut buf = [0u8; 8];
                buf[..bytes.len()].copy_from_slice(bytes);
                let raw = i64::from_le_bytes(buf);
                // Sign-extend from width.
                let shift = 64 - w.bits();
                RtVal::I(if *w == IntWidth::I64 {
                    raw
                } else {
                    (raw << shift) >> shift
                })
            }
            Type::Float(FloatWidth::F64) => {
                let bytes = self.slice(addr, 8)?;
                RtVal::F(f64::from_le_bytes(bytes.try_into().ok()?))
            }
            Type::Float(FloatWidth::F32) => {
                let bytes = self.slice(addr, 4)?;
                RtVal::F(f32::from_le_bytes(bytes.try_into().ok()?) as f64)
            }
            Type::Ptr(_) | Type::Func(_) => {
                let bytes = self.slice(addr, 8)?;
                RtVal::I(i64::from_le_bytes(bytes.try_into().ok()?))
            }
            _ => return None,
        })
    }

    /// Store scalar `v` of type `ty` at `addr`.
    pub fn write_scalar(&mut self, addr: i64, ty: &Type, v: RtVal) -> Result<(), MemError> {
        match ty {
            Type::Int(w) => {
                let n = w.bytes() as usize;
                let bytes = v.try_i()?.to_le_bytes();
                self.slice_mut(addr, n)
                    .ok_or(MemError::OutOfBounds)?
                    .copy_from_slice(&bytes[..n]);
            }
            Type::Float(FloatWidth::F64) => {
                let bytes = v.try_f()?.to_le_bytes();
                self.slice_mut(addr, 8)
                    .ok_or(MemError::OutOfBounds)?
                    .copy_from_slice(&bytes);
            }
            Type::Float(FloatWidth::F32) => {
                let bytes = (v.try_f()? as f32).to_le_bytes();
                self.slice_mut(addr, 4)
                    .ok_or(MemError::OutOfBounds)?
                    .copy_from_slice(&bytes);
            }
            Type::Ptr(_) | Type::Func(_) => {
                let bytes = v.try_i()?.to_le_bytes();
                self.slice_mut(addr, 8)
                    .ok_or(MemError::OutOfBounds)?
                    .copy_from_slice(&bytes);
            }
            _ => return Err(MemError::OutOfBounds),
        }
        Ok(())
    }

    /// Current break (top of allocated memory).
    pub fn brk(&self) -> i64 {
        self.brk
    }

    /// FNV-1a digest of the globals region only. Transforms may legitimately
    /// allocate extra heap (task environments, queues), so differential
    /// comparison hashes just the bytes holding global variables — laid out
    /// first, at identical addresses in every run of the same module.
    pub fn globals_digest(&self) -> u64 {
        let len = (self.globals_end - BASE) as usize;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.data[..len.min(self.data.len())] {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::module::{Global, GlobalInit};

    #[test]
    fn func_ptr_round_trip() {
        let f = FuncId(17);
        assert_eq!(decode_func_ptr(encode_func_ptr(f)), Some(f));
        assert_eq!(decode_func_ptr(0x2000), None);
    }

    #[test]
    fn globals_initialized() {
        let mut m = Module::new("t");
        let s = m.add_global(Global {
            name: "s".into(),
            ty: Type::I64,
            init: GlobalInit::Scalar(Constant::Int(7, IntWidth::I64)),
            is_const: false,
        });
        let a = m.add_global(Global {
            name: "a".into(),
            ty: Type::I32.array_of(3),
            init: GlobalInit::Array(vec![
                Constant::Int(1, IntWidth::I32),
                Constant::Int(2, IntWidth::I32),
                Constant::Int(3, IntWidth::I32),
            ]),
            is_const: false,
        });
        let mem = Memory::new(&m);
        assert_eq!(
            mem.read_scalar(mem.global_addr(s), &Type::I64),
            Some(RtVal::I(7))
        );
        let base = mem.global_addr(a);
        for i in 0..3 {
            assert_eq!(
                mem.read_scalar(base + 4 * i, &Type::I32),
                Some(RtVal::I(i + 1))
            );
        }
    }

    #[test]
    fn scalar_round_trips_with_sign_extension() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        let p = mem.bump(64);
        mem.write_scalar(p, &Type::I8, RtVal::I(-1)).unwrap();
        assert_eq!(mem.read_scalar(p, &Type::I8), Some(RtVal::I(-1)));
        mem.write_scalar(p, &Type::I32, RtVal::I(-123456)).unwrap();
        assert_eq!(mem.read_scalar(p, &Type::I32), Some(RtVal::I(-123456)));
        mem.write_scalar(p + 8, &Type::F64, RtVal::F(2.5)).unwrap();
        assert_eq!(mem.read_scalar(p + 8, &Type::F64), Some(RtVal::F(2.5)));
        mem.write_scalar(p + 16, &Type::F32, RtVal::F(1.25))
            .unwrap();
        assert_eq!(mem.read_scalar(p + 16, &Type::F32), Some(RtVal::F(1.25)));
        mem.write_scalar(p + 24, &Type::I64.ptr_to(), RtVal::I(0x2000))
            .unwrap();
        assert_eq!(
            mem.read_scalar(p + 24, &Type::I64.ptr_to()),
            Some(RtVal::I(0x2000))
        );
    }

    #[test]
    fn null_and_oob_trap() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        assert_eq!(mem.read_scalar(0, &Type::I64), None);
        assert_eq!(
            mem.write_scalar(0, &Type::I64, RtVal::I(1)),
            Err(MemError::OutOfBounds)
        );
        let p = mem.bump(8);
        assert!(mem.read_scalar(p, &Type::I64).is_some());
        assert_eq!(mem.read_scalar(p + 8, &Type::I64), None);
    }

    #[test]
    fn type_confusion_is_an_error_not_a_panic() {
        assert_eq!(RtVal::I(3).try_i(), Ok(3));
        assert_eq!(RtVal::F(2.0).try_f(), Ok(2.0));
        let e = RtVal::F(2.0).try_i().unwrap_err();
        assert_eq!(e.expected, "integer");
        assert!(e.to_string().contains("found float"));
        let e = RtVal::I(5).try_f().unwrap_err();
        assert!(e.to_string().contains("expected float, found integer 5"));

        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        let p = mem.bump(8);
        assert!(matches!(
            mem.write_scalar(p, &Type::I64, RtVal::F(1.0)),
            Err(MemError::Type(_))
        ));
        assert!(matches!(
            mem.write_scalar(p, &Type::F64, RtVal::I(1)),
            Err(MemError::Type(_))
        ));
    }

    #[test]
    fn bump_is_aligned() {
        let m = Module::new("t");
        let mut mem = Memory::new(&m);
        let a = mem.bump(3);
        let b = mem.bump(5);
        assert_eq!(a % 8, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn dep_tracer_records_same_function_raw_pairs() {
        let f = FuncId(0);
        let g = FuncId(1);
        let mut t = DepTracer::default();
        t.record_store(f, InstId(10), 0x1000, 8);
        t.record_load(f, InstId(11), 0x1000, 8); // same function: observed
        t.record_load(g, InstId(12), 0x1000, 8); // cross-function: ignored
        t.record_load(f, InstId(13), 0x2000, 8); // never written: ignored
        let obs = t.into_observed();
        assert_eq!(
            obs,
            vec![ObservedDep {
                func: f,
                src: InstId(10),
                dst: InstId(11),
            }]
        );
    }

    #[test]
    fn globals_digest_covers_globals_only() {
        let mut m = Module::new("t");
        let s = m.add_global(Global {
            name: "s".into(),
            ty: Type::I64,
            init: GlobalInit::Scalar(Constant::Int(7, IntWidth::I64)),
            is_const: false,
        });
        let mut a = Memory::new(&m);
        let mut b = Memory::new(&m);
        assert_eq!(a.globals_digest(), b.globals_digest());
        // Heap writes don't change the digest...
        let p = b.bump(16);
        b.write_scalar(p, &Type::I64, RtVal::I(99)).unwrap();
        assert_eq!(a.globals_digest(), b.globals_digest());
        // ...but global writes do.
        let ga = a.global_addr(s);
        a.write_scalar(ga, &Type::I64, RtVal::I(8)).unwrap();
        assert_ne!(a.globals_digest(), b.globals_digest());
    }
}
