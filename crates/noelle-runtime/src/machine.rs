//! The discrete-event simulated machine and IR interpreter.
//!
//! Every *task* (the main program, and each task dispatched by a
//! parallelized loop) runs on a simulated core with its own virtual clock.
//! The scheduler always steps the runnable task with the smallest clock, so
//! cross-task interactions (queues, sequential segments, joins) observe a
//! consistent global virtual time, and the final makespan is the parallel
//! execution time the Figure 5 experiments report.

use crate::cost::{external_cost, inst_cost};
use crate::memory::{
    decode_func_ptr, encode_func_ptr, DepTracer, MemError, Memory, ObservedDep, RtVal,
    TypeConfusion,
};
use noelle_core::architecture::Architecture;
use noelle_core::profiler::Profiles;
use noelle_ir::inst::{Callee, Inst, InstId, Terminator};
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_ir::types::{FloatWidth, IntWidth, Type};
use noelle_ir::value::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// Memory access outside any allocation.
    MemoryFault(String),
    /// A `carat.guard` rejected an address.
    GuardFault(String),
    /// Call to an unknown external function.
    UnknownExternal(String),
    /// The configured step budget was exhausted (runaway loop).
    StepLimit,
    /// All tasks blocked with none runnable.
    Deadlock,
    /// Malformed program reached at runtime (missing function, bad indirect
    /// call target, `unreachable` executed...).
    Trap(String),
    /// A value had the wrong payload kind for the operation applied to it
    /// (e.g. a float where an integer was required). Reported as an error so
    /// differential testing can diagnose miscompiles instead of aborting.
    TypeConfusion(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::MemoryFault(s) => write!(f, "memory fault: {s}"),
            RtError::GuardFault(s) => write!(f, "guard fault: {s}"),
            RtError::UnknownExternal(s) => write!(f, "unknown external function '{s}'"),
            RtError::StepLimit => write!(f, "step limit exceeded"),
            RtError::Deadlock => write!(f, "deadlock: all tasks blocked"),
            RtError::Trap(s) => write!(f, "trap: {s}"),
            RtError::TypeConfusion(s) => write!(f, "type confusion: {s}"),
        }
    }
}

impl Error for RtError {}

impl From<TypeConfusion> for RtError {
    fn from(tc: TypeConfusion) -> RtError {
        RtError::TypeConfusion(tc.to_string())
    }
}

/// Configuration of a run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The simulated machine.
    pub arch: Architecture,
    /// Collect block/invocation profiles during the run.
    pub collect_profiles: bool,
    /// Maximum interpreted instructions across all tasks.
    pub max_steps: u64,
    /// Record runtime producer→consumer memory dependences (see
    /// [`DepTracer`]); they come back in [`RunResult::observed_deps`].
    pub trace_deps: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            arch: Architecture::default_machine(),
            collect_profiles: false,
            max_steps: 200_000_000,
            trace_deps: false,
        }
    }
}

/// Result of a completed run.
#[derive(Debug)]
pub struct RunResult {
    /// Return value of the entry function.
    pub ret: Option<RtVal>,
    /// Virtual cycles elapsed on the entry task (the makespan: dispatchers
    /// join their children before returning).
    pub cycles: u64,
    /// Total interpreted instructions across all tasks.
    pub dyn_insts: u64,
    /// Profiles collected (empty unless requested).
    pub profiles: Profiles,
    /// Text emitted through `print_i64`/`print_f64`, in virtual-time order.
    pub output: Vec<String>,
    /// Intrinsic counters: `"guards"`, `"callbacks"`, `"queue_ops"`,
    /// `"tasks"`, `"max_callback_gap"`, ...
    pub counters: BTreeMap<String, u64>,
    /// Runtime-observed memory dependences, in canonical order (empty unless
    /// [`RunConfig::trace_deps`] was set).
    pub observed_deps: Vec<ObservedDep>,
    /// Digest of the globals region of final memory (differential-testing
    /// fingerprint; heap layout legitimately differs across transforms).
    pub globals_digest: u64,
}

impl RunResult {
    /// The return value as an integer, when present.
    pub fn ret_i64(&self) -> Option<i64> {
        match self.ret {
            Some(RtVal::I(v)) => Some(v),
            _ => None,
        }
    }

    /// The return value as a float, when present.
    pub fn ret_f64(&self) -> Option<f64> {
        match self.ret {
            Some(RtVal::F(v)) => Some(v),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    args: Vec<RtVal>,
    regs: HashMap<InstId, RtVal>,
    block: BlockId,
    prev_block: Option<BlockId>,
    inst_idx: usize,
    /// Instruction in the caller's frame that receives the return value.
    ret_to: Option<InstId>,
}

#[derive(Debug, Clone, PartialEq)]
enum TaskState {
    Runnable,
    BlockedPop(i64),
    BlockedPush(i64, i64),
    BlockedSeg(i64, i64),
    BlockedJoin(Vec<usize>),
    Done(Option<RtVal>),
}

#[derive(Debug)]
struct TaskCtx {
    core: usize,
    clock: u64,
    /// Sub-cycle remainder so fractional clock scaling accumulates exactly.
    clock_frac: f64,
    clock_scale: f64,
    frames: Vec<Frame>,
    state: TaskState,
    last_callback: Option<u64>,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<(i64, u64, usize)>, // value, ready time, producer core
    capacity: usize,
}

#[derive(Debug, Default)]
struct SegState {
    count: i64,
    last_time: u64,
    last_core: usize,
}

struct Machine<'m> {
    module: &'m Module,
    mem: Memory,
    tasks: Vec<TaskCtx>,
    queues: Vec<QueueState>,
    segments: HashMap<i64, SegState>,
    prv_states: HashMap<i64, u64>,
    config: RunConfig,
    profiles: Profiles,
    output: Vec<String>,
    counters: BTreeMap<String, u64>,
    steps: u64,
    tracer: Option<DepTracer>,
}

/// Execute `entry(args)` in `m` under `config`.
///
/// # Errors
/// Returns [`RtError`] on traps, deadlocks, unknown externals, or step-limit
/// exhaustion.
pub fn run_module(
    m: &Module,
    entry: &str,
    args: &[RtVal],
    config: &RunConfig,
) -> Result<RunResult, RtError> {
    let entry_fid = m
        .func_id_by_name(entry)
        .ok_or_else(|| RtError::Trap(format!("no function named '{entry}'")))?;
    if m.func(entry_fid).is_declaration() {
        return Err(RtError::Trap(format!("'{entry}' is a declaration")));
    }
    let mut machine = Machine {
        module: m,
        mem: Memory::new(m),
        tasks: Vec::new(),
        queues: Vec::new(),
        segments: HashMap::new(),
        prv_states: HashMap::new(),
        config: config.clone(),
        profiles: Profiles::default(),
        output: Vec::new(),
        counters: BTreeMap::new(),
        steps: 0,
        tracer: config.trace_deps.then(DepTracer::default),
    };
    machine.spawn_task(entry_fid, args.to_vec(), 0, 0);
    machine.run()?;
    let globals_digest = machine.mem.globals_digest();
    let observed_deps = machine
        .tracer
        .take()
        .map(DepTracer::into_observed)
        .unwrap_or_default();
    let main = &machine.tasks[0];
    let ret = match &main.state {
        TaskState::Done(v) => *v,
        other => return Err(RtError::Trap(format!("main task ended in state {other:?}"))),
    };
    Ok(RunResult {
        ret,
        cycles: main.clock,
        dyn_insts: machine.steps,
        profiles: machine.profiles,
        output: machine.output,
        counters: machine.counters,
        observed_deps,
        globals_digest,
    })
}

impl<'m> Machine<'m> {
    fn bump_counter(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_default() += by;
    }

    fn spawn_task(&mut self, func: FuncId, args: Vec<RtVal>, core: usize, clock: u64) -> usize {
        let f = self.module.func(func);
        let entry = f.entry();
        if self.config.collect_profiles {
            self.profiles.record_invocation(&f.name.clone());
            self.profiles.record_block(&f.name.clone(), entry, 1);
        }
        let tid = self.tasks.len();
        self.tasks.push(TaskCtx {
            core,
            clock,
            clock_frac: 0.0,
            clock_scale: 1.0,
            frames: vec![Frame {
                func,
                args,
                regs: HashMap::new(),
                block: entry,
                prev_block: None,
                inst_idx: 0,
                ret_to: None,
            }],
            state: TaskState::Runnable,
            last_callback: None,
        });
        tid
    }

    /// True if a blocked task can make progress now.
    fn is_ready(&self, tid: usize) -> bool {
        match &self.tasks[tid].state {
            TaskState::Runnable => true,
            TaskState::BlockedPop(q) => !self.queues[*q as usize].items.is_empty(),
            TaskState::BlockedPush(q, _) => {
                let qs = &self.queues[*q as usize];
                qs.items.len() < qs.capacity
            }
            TaskState::BlockedSeg(seg, iter) => {
                self.segments.get(seg).map(|s| s.count).unwrap_or(0) >= *iter
            }
            TaskState::BlockedJoin(kids) => kids
                .iter()
                .all(|&k| matches!(self.tasks[k].state, TaskState::Done(_))),
            TaskState::Done(_) => false,
        }
    }

    fn run(&mut self) -> Result<(), RtError> {
        loop {
            // Pick the ready task with the smallest clock.
            let mut best: Option<usize> = None;
            let mut all_done = true;
            for tid in 0..self.tasks.len() {
                if !matches!(self.tasks[tid].state, TaskState::Done(_)) {
                    all_done = false;
                }
                if self.is_ready(tid) {
                    best = match best {
                        None => Some(tid),
                        Some(b) if self.tasks[tid].clock < self.tasks[b].clock => Some(tid),
                        keep => keep,
                    };
                }
            }
            if all_done {
                return Ok(());
            }
            let Some(tid) = best else {
                return Err(RtError::Deadlock);
            };
            self.resume_if_blocked(tid);
            self.step(tid)?;
            self.steps += 1;
            if self.steps > self.config.max_steps {
                return Err(RtError::StepLimit);
            }
        }
    }

    /// Complete a pending blocked operation whose condition is now true.
    fn resume_if_blocked(&mut self, tid: usize) {
        let state = self.tasks[tid].state.clone();
        match state {
            TaskState::BlockedPop(q) => {
                let (v, ready, producer) = self.queues[q as usize]
                    .items
                    .pop_front()
                    .expect("scheduler checked readiness");
                let lat = self
                    .config
                    .arch
                    .core_latency(producer, self.tasks[tid].core);
                let t = &mut self.tasks[tid];
                t.clock = t.clock.max(ready + lat) + self.config.arch.queue_op_cost;
                // Deliver: the pop call instruction is the previous one.
                let frame = t.frames.last_mut().expect("live frame");
                let call_inst = frame.pending_result_inst();
                frame.regs.insert(call_inst, RtVal::I(v));
                t.state = TaskState::Runnable;
            }
            TaskState::BlockedPush(q, v) => {
                let (core, clock) = {
                    let t = &self.tasks[tid];
                    (t.core, t.clock)
                };
                self.queues[q as usize].items.push_back((v, clock, core));
                let t = &mut self.tasks[tid];
                t.clock += self.config.arch.queue_op_cost;
                t.state = TaskState::Runnable;
            }
            TaskState::BlockedSeg(seg, _) => {
                let s = &self.segments[&seg];
                let lat = self
                    .config
                    .arch
                    .core_latency(s.last_core, self.tasks[tid].core);
                let resume_at = s.last_time + lat;
                let t = &mut self.tasks[tid];
                t.clock = t.clock.max(resume_at);
                t.state = TaskState::Runnable;
            }
            TaskState::BlockedJoin(kids) => {
                let my_core = self.tasks[tid].core;
                let mut end = self.tasks[tid].clock;
                for &k in &kids {
                    let child_end = self.tasks[k].clock
                        + self.config.arch.core_latency(self.tasks[k].core, my_core);
                    end = end.max(child_end);
                }
                let t = &mut self.tasks[tid];
                t.clock = end;
                t.state = TaskState::Runnable;
            }
            _ => {}
        }
    }

    fn eval(&self, tid: usize, v: Value) -> RtVal {
        let frame = self.tasks[tid].frames.last().expect("live frame");
        match v {
            Value::Const(c) => RtVal::from_const(&c),
            Value::Arg(i) => frame.args[i as usize],
            Value::Inst(id) => *frame.regs.get(&id).unwrap_or(&RtVal::I(0)), // undef reads yield 0 deterministically
            Value::Global(g) => RtVal::I(self.mem.global_addr(g)),
            Value::Func(f) => RtVal::I(encode_func_ptr(f)),
        }
    }

    fn charge(&mut self, tid: usize, cycles: u64) {
        let t = &mut self.tasks[tid];
        let exact = cycles as f64 * t.clock_scale + t.clock_frac;
        let whole = exact.floor();
        t.clock_frac = exact - whole;
        t.clock += whole as u64;
    }

    /// Transfer control of `tid`'s top frame to `target`, running phi moves.
    fn branch_to(&mut self, tid: usize, target: BlockId) {
        let func = self.tasks[tid].frames.last().expect("frame").func;
        let f = self.module.func(func);
        if self.config.collect_profiles {
            let name = f.name.clone();
            self.profiles.record_block(&name, target, 1);
        }
        let cur = self.tasks[tid].frames.last().expect("frame").block;
        // Batch-evaluate phis (parallel-copy semantics).
        let phis = f.phis(target);
        let mut writes: Vec<(InstId, RtVal)> = Vec::new();
        for phi in phis {
            if let Inst::Phi { incomings, .. } = f.inst(phi) {
                if let Some((_, v)) = incomings.iter().find(|(b, _)| *b == cur) {
                    writes.push((phi, self.eval(tid, *v)));
                }
            }
        }
        let frame = self.tasks[tid].frames.last_mut().expect("frame");
        frame.prev_block = Some(frame.block);
        frame.block = target;
        frame.inst_idx = 0;
        for (phi, v) in writes {
            frame.regs.insert(phi, v);
        }
        // Skip the phi instructions; their effect is applied.
        let f = self.module.func(func);
        let nphis = f.phis(target).len();
        self.tasks[tid].frames.last_mut().expect("frame").inst_idx = nphis;
    }

    fn step(&mut self, tid: usize) -> Result<(), RtError> {
        let (func, block, idx) = {
            let frame = self.tasks[tid].frames.last().expect("live frame");
            (frame.func, frame.block, frame.inst_idx)
        };
        let f = self.module.func(func);
        let inst_id = *f
            .block(block)
            .insts
            .get(idx)
            .ok_or_else(|| RtError::Trap(format!("fell off block {block} in @{}", f.name)))?;
        let inst = f.inst(inst_id).clone();
        self.charge(tid, inst_cost(&inst));

        match inst {
            Inst::Alloca { ty, count } => {
                let n = self.eval(tid, count).try_i()?.max(0);
                let addr = self.mem.bump(ty.size_bytes() as i64 * n);
                self.write_reg(tid, inst_id, RtVal::I(addr));
                self.advance(tid);
            }
            Inst::Load { ty, ptr } => {
                let addr = self.eval(tid, ptr).try_i()?;
                let v = self
                    .mem
                    .read_scalar(addr, &ty)
                    .ok_or_else(|| RtError::MemoryFault(format!("load {ty} at {addr:#x}")))?;
                if let Some(tracer) = &mut self.tracer {
                    tracer.record_load(func, inst_id, addr, ty.size_bytes() as i64);
                }
                self.write_reg(tid, inst_id, v);
                self.advance(tid);
            }
            Inst::Store { val, ptr, ty } => {
                let addr = self.eval(tid, ptr).try_i()?;
                let v = self.eval(tid, val);
                self.mem.write_scalar(addr, &ty, v).map_err(|e| match e {
                    MemError::OutOfBounds => {
                        RtError::MemoryFault(format!("store {ty} at {addr:#x}"))
                    }
                    MemError::Type(tc) => RtError::from(tc),
                })?;
                if let Some(tracer) = &mut self.tracer {
                    tracer.record_store(func, inst_id, addr, ty.size_bytes() as i64);
                }
                self.advance(tid);
            }
            Inst::Gep {
                base,
                base_ty,
                indices,
            } => {
                let mut addr = self.eval(tid, base).try_i()?;
                let mut ty = base_ty;
                for (k, idx) in indices.iter().enumerate() {
                    let iv = self.eval(tid, *idx).try_i()?;
                    if k == 0 {
                        addr += iv * ty.size_bytes() as i64;
                    } else {
                        match &ty {
                            Type::Array(elem, _) => {
                                addr += iv * elem.size_bytes() as i64;
                                ty = (**elem).clone();
                            }
                            Type::Struct(_) => {
                                addr += ty
                                    .struct_field_offset(iv as usize)
                                    .ok_or_else(|| RtError::Trap("bad struct gep".into()))?
                                    as i64;
                                ty = ty
                                    .indexed(Some(iv as usize))
                                    .ok_or_else(|| RtError::Trap("bad struct gep".into()))?
                                    .clone();
                            }
                            other => {
                                addr += iv * other.size_bytes() as i64;
                            }
                        }
                    }
                }
                self.write_reg(tid, inst_id, RtVal::I(addr));
                self.advance(tid);
            }
            Inst::Bin { op, ty, lhs, rhs } => {
                let v = self.eval_bin(tid, op, &ty, lhs, rhs)?;
                self.write_reg(tid, inst_id, v);
                self.advance(tid);
            }
            Inst::Icmp { pred, lhs, rhs, .. } => {
                use noelle_ir::inst::IcmpPred as P;
                let a = self.eval(tid, lhs).try_i()?;
                let b = self.eval(tid, rhs).try_i()?;
                let r = match pred {
                    P::Eq => a == b,
                    P::Ne => a != b,
                    P::Slt => a < b,
                    P::Sle => a <= b,
                    P::Sgt => a > b,
                    P::Sge => a >= b,
                    P::Ult => (a as u64) < b as u64,
                    P::Ule => (a as u64) <= b as u64,
                    P::Ugt => (a as u64) > b as u64,
                    P::Uge => (a as u64) >= b as u64,
                };
                self.write_reg(tid, inst_id, RtVal::I(r as i64));
                self.advance(tid);
            }
            Inst::Fcmp { pred, lhs, rhs, .. } => {
                use noelle_ir::inst::FcmpPred as P;
                let a = self.eval(tid, lhs).try_f()?;
                let b = self.eval(tid, rhs).try_f()?;
                let r = match pred {
                    P::Oeq => a == b,
                    P::One => a != b,
                    P::Olt => a < b,
                    P::Ole => a <= b,
                    P::Ogt => a > b,
                    P::Oge => a >= b,
                };
                self.write_reg(tid, inst_id, RtVal::I(r as i64));
                self.advance(tid);
            }
            Inst::Cast { op, from, to, val } => {
                use noelle_ir::inst::CastOp as C;
                let v = self.eval(tid, val);
                let r = match op {
                    C::Zext => {
                        let bits = match &from {
                            Type::Int(w) => w.bits(),
                            _ => 64,
                        };
                        let mask = if bits >= 64 {
                            -1i64
                        } else {
                            (1i64 << bits) - 1
                        };
                        RtVal::I(v.try_i()? & mask)
                    }
                    C::Sext => RtVal::I(v.try_i()?),
                    C::Trunc => {
                        let w = match &to {
                            Type::Int(w) => *w,
                            _ => IntWidth::I64,
                        };
                        RtVal::I(w.truncate(v.try_i()?))
                    }
                    C::Bitcast => match (&from, &to) {
                        (Type::Float(FloatWidth::F64), Type::Int(IntWidth::I64)) => {
                            RtVal::I(v.try_f()?.to_bits() as i64)
                        }
                        (Type::Int(IntWidth::I64), Type::Float(FloatWidth::F64)) => {
                            RtVal::F(f64::from_bits(v.try_i()? as u64))
                        }
                        _ => v,
                    },
                    C::PtrToInt | C::IntToPtr => v,
                    C::SiToFp => RtVal::F(v.try_i()? as f64),
                    C::FpToSi => RtVal::I(v.try_f()? as i64),
                    C::FpExt => v,
                    C::FpTrunc => RtVal::F(v.try_f()? as f32 as f64),
                };
                self.write_reg(tid, inst_id, r);
                self.advance(tid);
            }
            Inst::Select {
                cond, tval, fval, ..
            } => {
                let c = self.eval(tid, cond).try_i()? != 0;
                let v = if c {
                    self.eval(tid, tval)
                } else {
                    self.eval(tid, fval)
                };
                self.write_reg(tid, inst_id, v);
                self.advance(tid);
            }
            Inst::Phi { .. } => {
                // Phi already applied by branch_to; simply advance (covers
                // the entry block which cannot have phis anyway).
                self.advance(tid);
            }
            Inst::Call {
                callee,
                args,
                ret_ty,
            } => {
                let target = match &callee {
                    Callee::Direct(fid) => *fid,
                    Callee::Indirect(fp) => {
                        let addr = self.eval(tid, *fp).try_i()?;
                        decode_func_ptr(addr).ok_or_else(|| {
                            RtError::Trap(format!("indirect call to non-function {addr:#x}"))
                        })?
                    }
                };
                let argv: Vec<RtVal> = args.iter().map(|&a| self.eval(tid, a)).collect();
                let callee_f = self.module.func(target);
                if callee_f.is_declaration() {
                    let name = callee_f.name.clone();
                    self.call_external(tid, inst_id, &name, &argv, &ret_ty)?;
                } else {
                    if self.config.collect_profiles {
                        let name = callee_f.name.clone();
                        let entry = callee_f.entry();
                        self.profiles.record_invocation(&name);
                        self.profiles.record_block(&name, entry, 1);
                    }
                    // Push the callee frame; the caller resumes after it.
                    let entry = callee_f.entry();
                    self.tasks[tid].frames.last_mut().expect("frame").inst_idx += 1;
                    self.tasks[tid].frames.push(Frame {
                        func: target,
                        args: argv,
                        regs: HashMap::new(),
                        block: entry,
                        prev_block: None,
                        inst_idx: 0,
                        ret_to: Some(inst_id),
                    });
                }
            }
            Inst::Term(t) => match t {
                Terminator::Ret(v) => {
                    let rv = v.map(|x| self.eval(tid, x));
                    let frame = self.tasks[tid].frames.pop().expect("frame");
                    if self.tasks[tid].frames.is_empty() {
                        self.tasks[tid].state = TaskState::Done(rv);
                    } else if let (Some(dst), Some(val)) = (frame.ret_to, rv) {
                        self.write_reg(tid, dst, val);
                    }
                }
                Terminator::Br(b) => self.branch_to(tid, b),
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval(tid, cond).try_i()? != 0;
                    if self.config.collect_profiles {
                        let name = self.module.func(func).name.clone();
                        self.profiles.record_branch(&name, block, c);
                    }
                    self.branch_to(tid, if c { then_bb } else { else_bb });
                }
                Terminator::Switch {
                    value,
                    default,
                    cases,
                } => {
                    let v = self.eval(tid, value).try_i()?;
                    let target = cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(default);
                    self.branch_to(tid, target);
                }
                Terminator::Unreachable => {
                    return Err(RtError::Trap(format!(
                        "unreachable executed in @{}",
                        self.module.func(func).name
                    )))
                }
            },
        }
        Ok(())
    }

    fn eval_bin(
        &mut self,
        tid: usize,
        op: noelle_ir::inst::BinOp,
        ty: &Type,
        lhs: Value,
        rhs: Value,
    ) -> Result<RtVal, RtError> {
        use noelle_ir::inst::BinOp as B;
        if op.is_float_op() {
            let a = self.eval(tid, lhs).try_f()?;
            let b = self.eval(tid, rhs).try_f()?;
            let r = match op {
                B::FAdd => a + b,
                B::FSub => a - b,
                B::FMul => a * b,
                B::FDiv => a / b,
                B::FMax => a.max(b),
                B::FMin => a.min(b),
                _ => unreachable!("is_float_op"),
            };
            return Ok(RtVal::F(if matches!(ty, Type::Float(FloatWidth::F32)) {
                r as f32 as f64
            } else {
                r
            }));
        }
        let a = self.eval(tid, lhs).try_i()?;
        let b = self.eval(tid, rhs).try_i()?;
        let w = match ty {
            Type::Int(w) => *w,
            _ => IntWidth::I64,
        };
        let r = match op {
            B::Add => a.wrapping_add(b),
            B::Sub => a.wrapping_sub(b),
            B::Mul => a.wrapping_mul(b),
            B::Div => {
                if b == 0 {
                    return Err(RtError::Trap("integer division by zero".into()));
                }
                a.wrapping_div(b)
            }
            B::Rem => {
                if b == 0 {
                    return Err(RtError::Trap("integer remainder by zero".into()));
                }
                a.wrapping_rem(b)
            }
            B::And => a & b,
            B::Or => a | b,
            B::Xor => a ^ b,
            B::Shl => a.wrapping_shl(b as u32 & 63),
            B::AShr => a.wrapping_shr(b as u32 & 63),
            B::LShr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
            B::SMax => a.max(b),
            B::SMin => a.min(b),
            _ => unreachable!("int op"),
        };
        Ok(RtVal::I(w.truncate(r)))
    }

    fn write_reg(&mut self, tid: usize, inst: InstId, v: RtVal) {
        self.tasks[tid]
            .frames
            .last_mut()
            .expect("frame")
            .regs
            .insert(inst, v);
    }

    fn advance(&mut self, tid: usize) {
        self.tasks[tid].frames.last_mut().expect("frame").inst_idx += 1;
    }

    fn xorshift(&mut self, gen: i64) -> i64 {
        let s = self
            .prv_states
            .entry(gen)
            .or_insert(0x9E3779B97F4A7C15 ^ gen as u64);
        let mut x = *s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *s = x;
        (x >> 1) as i64
    }

    fn call_external(
        &mut self,
        tid: usize,
        inst_id: InstId,
        name: &str,
        args: &[RtVal],
        _ret_ty: &Type,
    ) -> Result<(), RtError> {
        self.charge(tid, external_cost(name));
        let arg_i = |i: usize| -> Result<i64, RtError> {
            match args.get(i) {
                Some(v) => v.try_i().map_err(RtError::from),
                None => Ok(0),
            }
        };
        let arg_f = |i: usize| -> Result<f64, RtError> {
            match args.get(i) {
                Some(v) => v.try_f().map_err(RtError::from),
                None => Ok(0.0),
            }
        };
        match name {
            "malloc" => {
                let p = self.mem.bump(arg_i(0)?);
                self.write_reg(tid, inst_id, RtVal::I(p));
            }
            "calloc" => {
                let p = self.mem.bump(arg_i(0)? * arg_i(1)?.max(1));
                self.write_reg(tid, inst_id, RtVal::I(p));
            }
            "free" => {}
            "print_i64" => {
                self.output.push(format!("{}", arg_i(0)?));
            }
            "print_f64" => {
                self.output.push(format!("{:.6}", arg_f(0)?));
            }
            "sqrt" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.sqrt())),
            "sin" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.sin())),
            "cos" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.cos())),
            "tan" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.tan())),
            "exp" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.exp())),
            "log" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.max(1e-300).ln())),
            "pow" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.powf(arg_f(1)?))),
            "fabs" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.abs())),
            "floor" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.floor())),
            "ceil" => self.write_reg(tid, inst_id, RtVal::F(arg_f(0)?.ceil())),
            // PRVG families: identical deterministic streams, different cost.
            "prv.mt.next" | "prv.lcg.next" | "prv.xs.next" => {
                let v = self.xorshift(arg_i(0)?);
                self.bump_counter("prv_calls", 1);
                self.write_reg(tid, inst_id, RtVal::I(v));
            }
            "carat.guard" => {
                self.bump_counter("guards", 1);
                let addr = arg_i(0)?;
                let len = arg_i(1)?.max(1);
                if !self.mem.in_bounds(addr, len) {
                    return Err(RtError::GuardFault(format!(
                        "guard rejected [{addr:#x}; {len})"
                    )));
                }
            }
            "coos.callback" => {
                self.bump_counter("callbacks", 1);
                let now = self.tasks[tid].clock;
                if let Some(prev) = self.tasks[tid].last_callback {
                    let gap = now.saturating_sub(prev);
                    let cur = self.counters.get("max_callback_gap").copied().unwrap_or(0);
                    if gap > cur {
                        self.counters.insert("max_callback_gap".to_string(), gap);
                    }
                }
                self.tasks[tid].last_callback = Some(now);
            }
            "clock.set" => {
                let pct = arg_i(0)?.clamp(50, 200) as f64;
                self.tasks[tid].clock_scale = pct / 100.0;
                self.bump_counter("clock_sets", 1);
            }
            "noelle.queue.create" => {
                let qid = self.queues.len() as i64;
                self.queues.push(QueueState {
                    items: VecDeque::new(),
                    capacity: arg_i(0)?.max(1) as usize,
                });
                self.bump_counter("queues", 1);
                self.write_reg(tid, inst_id, RtVal::I(qid));
            }
            "noelle.queue.push" => {
                self.bump_counter("queue_ops", 1);
                let q = arg_i(0)?;
                let v = arg_i(1)?;
                let qs = self
                    .queues
                    .get(q as usize)
                    .ok_or_else(|| RtError::Trap(format!("push to unknown queue {q}")))?;
                if qs.items.len() < qs.capacity {
                    let (core, clock) = (self.tasks[tid].core, self.tasks[tid].clock);
                    self.queues[q as usize].items.push_back((v, clock, core));
                    self.charge(tid, self.config.arch.queue_op_cost);
                } else {
                    self.tasks[tid].state = TaskState::BlockedPush(q, v);
                }
            }
            "noelle.queue.pop" => {
                self.bump_counter("queue_ops", 1);
                let q = arg_i(0)?;
                if self
                    .queues
                    .get(q as usize)
                    .ok_or_else(|| RtError::Trap(format!("pop from unknown queue {q}")))?
                    .items
                    .is_empty()
                {
                    self.tasks[tid].state = TaskState::BlockedPop(q);
                    // The result is delivered by resume_if_blocked; remember
                    // which instruction wants it via pending_result_inst.
                    self.tasks[tid]
                        .frames
                        .last_mut()
                        .expect("frame")
                        .set_pending_result(inst_id);
                } else {
                    let (v, ready, producer) = self.queues[q as usize]
                        .items
                        .pop_front()
                        .expect("non-empty");
                    let lat = self
                        .config
                        .arch
                        .core_latency(producer, self.tasks[tid].core);
                    let t = &mut self.tasks[tid];
                    t.clock = t.clock.max(ready + lat) + self.config.arch.queue_op_cost;
                    self.write_reg(tid, inst_id, RtVal::I(v));
                }
            }
            "noelle.ss.wait" => {
                let seg = arg_i(0)?;
                let iter = arg_i(1)?;
                let count = self.segments.entry(seg).or_default().count;
                if count >= iter {
                    if iter > 0 {
                        let s = &self.segments[&seg];
                        let lat = self
                            .config
                            .arch
                            .core_latency(s.last_core, self.tasks[tid].core);
                        let resume_at = s.last_time + lat;
                        let t = &mut self.tasks[tid];
                        t.clock = t.clock.max(resume_at);
                    }
                } else {
                    self.tasks[tid].state = TaskState::BlockedSeg(seg, iter);
                }
            }
            "noelle.ss.signal" => {
                let seg = arg_i(0)?;
                let (core, clock) = (self.tasks[tid].core, self.tasks[tid].clock);
                let s = self.segments.entry(seg).or_default();
                s.count += 1;
                s.last_time = clock;
                s.last_core = core;
            }
            "noelle.task.dispatch" => {
                // Sequential-segment state is per parallel region; the
                // dispatcher joins its children before returning, so a fresh
                // region must not observe stale signal counts.
                self.segments.clear();
                let fp = arg_i(0)?;
                let env = arg_i(1)?;
                let n = arg_i(2)?.max(1) as usize;
                let target = decode_func_ptr(fp)
                    .ok_or_else(|| RtError::Trap("dispatch of non-function".into()))?;
                self.bump_counter("tasks", n as u64);
                let base_clock = self.tasks[tid].clock;
                let mut kids = Vec::new();
                for i in 0..n {
                    let core = i % self.config.arch.num_cores;
                    let clock = base_clock + self.config.arch.dispatch_overhead * (i as u64 + 1);
                    let kid = self.spawn_task(
                        target,
                        vec![RtVal::I(env), RtVal::I(i as i64), RtVal::I(n as i64)],
                        core,
                        clock,
                    );
                    kids.push(kid);
                }
                self.tasks[tid].state = TaskState::BlockedJoin(kids);
            }
            other => return Err(RtError::UnknownExternal(other.to_string())),
        }
        // Blocked intrinsics must re-run semantics on resume; everything else
        // completes now.
        if matches!(self.tasks[tid].state, TaskState::Runnable) {
            self.advance(tid);
        } else {
            // The call completes when unblocked; move past it so resumption
            // continues with the next instruction.
            self.advance(tid);
        }
        Ok(())
    }
}

impl Frame {
    fn set_pending_result(&mut self, inst: InstId) {
        self.regs.insert(PENDING_KEY, RtVal::I(inst.0 as i64));
    }

    fn pending_result_inst(&self) -> InstId {
        InstId(
            self.regs
                .get(&PENDING_KEY)
                .map(|v| match v {
                    RtVal::I(x) => *x as u32,
                    RtVal::F(_) => 0,
                })
                .unwrap_or(0),
        )
    }
}

/// Sentinel register key for pending blocked-pop results.
const PENDING_KEY: InstId = InstId(u32::MAX - 3);

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::parser::parse_module;

    fn run_src(src: &str) -> RunResult {
        let m = parse_module(src).expect("parses");
        noelle_ir::verifier::verify_module(&m).expect("verifies");
        run_module(&m, "main", &[], &RunConfig::default()).expect("runs")
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = run_src(
            r#"
module "t" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 10
  condbr %c, body, exit
body:
  %s2 = add i64 %s, %i
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#,
        );
        assert_eq!(r.ret_i64(), Some(45));
        assert!(r.cycles > 50);
        assert!(r.dyn_insts > 50);
    }

    #[test]
    fn memory_and_calls() {
        let r = run_src(
            r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @sumto(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 80)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  store i64 %i, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 10
  condbr %c, fill, done
done:
  %s = call i64 @sumto(%buf, i64 10)
  ret %s
}
}
"#,
        );
        assert_eq!(r.ret_i64(), Some(45));
    }

    #[test]
    fn floats_and_externals() {
        let r = run_src(
            r#"
module "t" {
declare f64 @sqrt(f64 %x)
define i64 @main() {
entry:
  %x = call f64 @sqrt(f64 16.0)
  %y = fmul f64 %x, f64 2.5
  %i = fptosi f64 %y to i64
  ret %i
}
}
"#,
        );
        assert_eq!(r.ret_i64(), Some(10));
    }

    #[test]
    fn output_collection() {
        let r = run_src(
            r#"
module "t" {
declare void @print_i64(i64 %v)
define i64 @main() {
entry:
  call void @print_i64(i64 7)
  call void @print_i64(i64 8)
  ret i64 0
}
}
"#,
        );
        assert_eq!(r.output, vec!["7", "8"]);
    }

    #[test]
    fn null_load_faults() {
        let m = parse_module(
            r#"
module "t" {
define i64 @main() {
entry:
  %p = inttoptr i64 i64 0 to i64*
  %v = load i64, %p
  ret %v
}
}
"#,
        )
        .unwrap();
        let err = run_module(&m, "main", &[], &RunConfig::default()).unwrap_err();
        assert!(matches!(err, RtError::MemoryFault(_)));
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let m = parse_module(
            r#"
module "t" {
define i64 @main() {
entry:
  br spin
spin:
  br spin
}
}
"#,
        )
        .unwrap();
        let cfg = RunConfig {
            max_steps: 1000,
            ..RunConfig::default()
        };
        assert_eq!(
            run_module(&m, "main", &[], &cfg).unwrap_err(),
            RtError::StepLimit
        );
    }

    #[test]
    fn profiles_collected() {
        let m = parse_module(
            r#"
module "t" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [header: %i2]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 5
  condbr %c, header, exit
exit:
  ret %i2
}
}
"#,
        )
        .unwrap();
        let cfg = RunConfig {
            collect_profiles: true,
            ..RunConfig::default()
        };
        let r = run_module(&m, "main", &[], &cfg).unwrap();
        assert_eq!(r.ret_i64(), Some(5));
        assert_eq!(r.profiles.invocations("main"), 1);
        assert_eq!(r.profiles.block_count("main", BlockId(1)), 5);
    }

    #[test]
    fn parallel_dispatch_runs_tasks_and_joins() {
        // Each task writes its id into env[id]; main sums the slots.
        let r = run_src(
            r#"
module "t" {
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @task(i64* %env, i64 %id, i64 %n) {
entry:
  %p = gep i64, %env, %id
  store i64 %id, %p
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 4
  call void @noelle.task.dispatch(@task, %env, i64 4)
  br sum
sum:
  %i = phi i64 [entry: i64 0] [sum: %i2]
  %s = phi i64 [entry: i64 0] [sum: %s2]
  %p = gep i64, %env, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 4
  condbr %c, sum, done
done:
  ret %s2
}
}
"#,
        );
        assert_eq!(r.ret_i64(), Some(6)); // 0+1+2+3
        assert_eq!(r.counters.get("tasks"), Some(&4));
    }

    #[test]
    fn queues_transfer_values_with_latency() {
        // Producer pushes 5 values; consumer pops and sums.
        let r = run_src(
            r#"
module "t" {
declare i64 @noelle.queue.create(i64 %cap)
declare void @noelle.queue.push(i64 %q, i64 %v)
declare i64 @noelle.queue.pop(i64 %q)
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @stage(i64* %env, i64 %id, i64 %n) {
entry:
  %qp = gep i64, %env, i64 0
  %q = load i64, %qp
  %isprod = icmp eq i64 %id, i64 0
  condbr %isprod, produce, consume
produce:
  br ploop
ploop:
  %i = phi i64 [produce: i64 0] [ploop: %i2]
  call void @noelle.queue.push(%q, %i)
  %i2 = add i64 %i, i64 1
  %pc = icmp slt i64 %i2, i64 5
  condbr %pc, ploop, pdone
pdone:
  ret void
consume:
  br cloop
cloop:
  %j = phi i64 [consume: i64 0] [cloop: %j2]
  %s = phi i64 [consume: i64 0] [cloop: %s2]
  %v = call i64 @noelle.queue.pop(%q)
  %s2 = add i64 %s, %v
  %j2 = add i64 %j, i64 1
  %cc = icmp slt i64 %j2, i64 5
  condbr %cc, cloop, cdone
cdone:
  %outp = gep i64, %env, i64 1
  store i64 %s2, %outp
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 2
  %q = call i64 @noelle.queue.create(i64 8)
  %qslot = gep i64, %env, i64 0
  store i64 %q, %qslot
  call void @noelle.task.dispatch(@stage, %env, i64 2)
  %outp = gep i64, %env, i64 1
  %out = load i64, %outp
  ret %out
}
}
"#,
        );
        assert_eq!(r.ret_i64(), Some(10)); // 0+1+2+3+4
        assert!(r.counters["queue_ops"] >= 10);
    }

    #[test]
    fn sequential_segments_enforce_iteration_order() {
        // Two tasks; each "iteration" appends its index via a sequential
        // segment. With ss.wait(seg, iter) gating, the appended order must be
        // 0,1,2,3 even though iterations are distributed cyclically.
        let r = run_src(
            r#"
module "t" {
declare void @noelle.ss.wait(i64 %seg, i64 %iter)
declare void @noelle.ss.signal(i64 %seg)
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @task(i64* %env, i64 %id, i64 %n) {
entry:
  br loop
loop:
  %iter = phi i64 [entry: %id] [loop: %next]
  call void @noelle.ss.wait(i64 0, %iter)
  %slotp = gep i64, %env, i64 4
  %slot = load i64, %slotp
  %cell = gep i64, %env, %slot
  store i64 %iter, %cell
  %slot2 = add i64 %slot, i64 1
  store i64 %slot2, %slotp
  call void @noelle.ss.signal(i64 0)
  %next = add i64 %iter, %n
  %c = icmp slt i64 %next, i64 4
  condbr %c, loop, done
done:
  ret void
}
define i64 @main() {
entry:
  %env = alloca i64, i64 5
  call void @noelle.task.dispatch(@task, %env, i64 2)
  %p0 = gep i64, %env, i64 0
  %v0 = load i64, %p0
  %p1 = gep i64, %env, i64 1
  %v1 = load i64, %p1
  %p2 = gep i64, %env, i64 2
  %v2 = load i64, %p2
  %p3 = gep i64, %env, i64 3
  %v3 = load i64, %p3
  %a = mul i64 %v0, i64 1000
  %b = mul i64 %v1, i64 100
  %c = mul i64 %v2, i64 10
  %ab = add i64 %a, %b
  %cd = add i64 %c, %v3
  %r = add i64 %ab, %cd
  ret %r
}
}
"#,
        );
        // In-order execution writes 0,1,2,3 into consecutive cells.
        assert_eq!(r.ret_i64(), Some(123)); // 0*1000 + 1*100 + 2*10 + 3
    }

    #[test]
    fn parallel_speedup_visible_in_cycles() {
        // A compute-heavy task run on 1 vs 4 cores: makespan must shrink.
        let src_n = |n: u32| {
            format!(
                r#"
module "t" {{
declare void @noelle.task.dispatch(fn void(i64*, i64, i64)* %f, i64* %env, i64 %n)
define void @task(i64* %env, i64 %id, i64 %n) {{
entry:
  br loop
loop:
  %i = phi i64 [entry: %id] [loop: %i2]
  %x = phi i64 [entry: i64 0] [loop: %x2]
  %sq = mul i64 %i, %i
  %x2 = add i64 %x, %sq
  %i2 = add i64 %i, %n
  %c = icmp slt i64 %i2, i64 4000
  condbr %c, loop, done
done:
  %p = gep i64, %env, %id
  store i64 %x2, %p
  ret void
}}
define i64 @main() {{
entry:
  %env = alloca i64, i64 16
  call void @noelle.task.dispatch(@task, %env, i64 {n})
  ret i64 0
}}
}}
"#
            )
        };
        let m1 = parse_module(&src_n(1)).unwrap();
        let m4 = parse_module(&src_n(4)).unwrap();
        let r1 = run_module(&m1, "main", &[], &RunConfig::default()).unwrap();
        let r4 = run_module(&m4, "main", &[], &RunConfig::default()).unwrap();
        let speedup = r1.cycles as f64 / r4.cycles as f64;
        assert!(speedup > 2.5, "speedup = {speedup}");
    }

    #[test]
    fn type_confusion_reports_instead_of_aborting() {
        // An indirect call through a lying function-pointer type: @f returns
        // f64, but the call site claims i64 and adds the result. This passes
        // the verifier (indirect callees are unchecked) yet must surface as a
        // reported RtError, never a process abort.
        let m = parse_module(
            r#"
module "t" {
define f64 @f() {
entry:
  ret f64 1.5
}
define i64 @main() {
entry:
  %slot = alloca i64, i64 1
  %fi = ptrtoint fn f64()* @f to i64
  store i64 %fi, %slot
  %raw = load i64, %slot
  %fp = inttoptr i64 %raw to fn i64()*
  %v = call i64 %fp()
  %r = add i64 %v, i64 1
  ret %r
}
}
"#,
        )
        .unwrap();
        noelle_ir::verifier::verify_module(&m).expect("verifier accepts the lying cast");
        let err = run_module(&m, "main", &[], &RunConfig::default()).unwrap_err();
        assert!(matches!(err, RtError::TypeConfusion(_)), "got {err:?}");
        assert!(err.to_string().contains("found float"));
    }

    #[test]
    fn dep_tracer_observes_store_load_pairs() {
        let m = parse_module(
            r#"
module "t" {
define i64 @main() {
entry:
  %p = alloca i64, i64 1
  store i64 i64 41, %p
  %v = load i64, %p
  %r = add i64 %v, i64 1
  ret %r
}
}
"#,
        )
        .unwrap();
        let cfg = RunConfig {
            trace_deps: true,
            ..RunConfig::default()
        };
        let r = run_module(&m, "main", &[], &cfg).unwrap();
        assert_eq!(r.ret_i64(), Some(42));
        assert_eq!(r.observed_deps.len(), 1);
        let d = r.observed_deps[0];
        assert_eq!(d.func, m.func_id_by_name("main").unwrap());
        // Without tracing the list stays empty.
        let r2 = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        assert!(r2.observed_deps.is_empty());
        assert_eq!(r.globals_digest, r2.globals_digest);
    }

    #[test]
    fn guard_intrinsic_checks_bounds() {
        let m = parse_module(
            r#"
module "t" {
declare void @carat.guard(i64 %p, i64 %len)
define i64 @main() {
entry:
  %buf = alloca i64, i64 2
  %pi = ptrtoint i64* %buf to i64
  call void @carat.guard(%pi, i64 8)
  %bad = add i64 %pi, i64 1048576
  call void @carat.guard(%bad, i64 8)
  ret i64 0
}
}
"#,
        )
        .unwrap();
        let err = run_module(&m, "main", &[], &RunConfig::default()).unwrap_err();
        assert!(matches!(err, RtError::GuardFault(_)));
    }
}
