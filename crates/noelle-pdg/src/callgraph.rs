//! The complete program call graph (CG abstraction).
//!
//! "NOELLE's call graph differentiates with LLVM's one by being complete: the
//! latter does not compute an indirect call's possible callees. By being
//! complete, NOELLE's call graph enables custom tools to assume that the
//! call graph's lack of an edge means a function cannot invoke another."
//!
//! Indirect callees come from the Andersen points-to solution. When a
//! function pointer cannot be resolved (its points-to set is unknown), the
//! call site is recorded as *unresolved* and marks its caller, so tools like
//! the dead-function eliminator can stay conservative.

use crate::islands::islands_of;
use noelle_analysis::alias::{AndersenAlias, MemoryObject};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{FuncId, Module};
use std::collections::{BTreeMap, BTreeSet};

/// One caller→callee edge, with its call-site sub-edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallEdge {
    /// Calling function.
    pub caller: FuncId,
    /// Called function.
    pub callee: FuncId,
    /// True when the relation is proven to hold on every execution reaching
    /// the site (direct calls); false for may-edges from indirect-call
    /// resolution.
    pub is_must: bool,
    /// The call instructions (sub-edges) through which `caller` invokes
    /// `callee`.
    pub sites: Vec<InstId>,
}

/// The complete call graph of a module.
#[derive(Clone, Debug)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    by_caller: BTreeMap<FuncId, Vec<usize>>,
    by_callee: BTreeMap<FuncId, Vec<usize>>,
    /// Call sites whose callees could not be resolved.
    unresolved_sites: Vec<(FuncId, InstId)>,
    num_funcs: usize,
}

impl CallGraph {
    /// Build the complete call graph of `m`, resolving indirect calls with
    /// the points-to solution `andersen` (the PDG-powered resolution of the
    /// paper).
    pub fn build(m: &Module, andersen: &AndersenAlias) -> CallGraph {
        let mut acc: BTreeMap<(FuncId, FuncId, bool), Vec<InstId>> = BTreeMap::new();
        let mut unresolved_sites = Vec::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            for id in f.inst_ids() {
                match f.inst(id) {
                    Inst::Call {
                        callee: Callee::Direct(cid),
                        ..
                    } => acc.entry((fid, *cid, true)).or_default().push(id),
                    Inst::Call {
                        callee: Callee::Indirect(fp),
                        ..
                    } => {
                        let mut resolved = andersen.indirect_callees(fid, id);
                        let pts = andersen.points_to(fid, *fp);
                        let unknown = pts.contains(&MemoryObject::Unknown) || pts.is_empty();
                        if unknown {
                            unresolved_sites.push((fid, id));
                        }
                        resolved.sort();
                        for cid in resolved {
                            acc.entry((fid, cid, false)).or_default().push(id);
                        }
                    }
                    _ => {}
                }
            }
        }
        let edges: Vec<CallEdge> = acc
            .into_iter()
            .map(|((caller, callee, is_must), sites)| CallEdge {
                caller,
                callee,
                is_must,
                sites,
            })
            .collect();
        let mut by_caller: BTreeMap<FuncId, Vec<usize>> = BTreeMap::new();
        let mut by_callee: BTreeMap<FuncId, Vec<usize>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            by_caller.entry(e.caller).or_default().push(i);
            by_callee.entry(e.callee).or_default().push(i);
        }
        CallGraph {
            edges,
            by_caller,
            by_callee,
            unresolved_sites,
            num_funcs: m.functions().len(),
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Edges out of `caller`.
    pub fn callees_of(&self, caller: FuncId) -> impl Iterator<Item = &CallEdge> + '_ {
        self.by_caller
            .get(&caller)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Edges into `callee`.
    pub fn callers_of(&self, callee: FuncId) -> impl Iterator<Item = &CallEdge> + '_ {
        self.by_callee
            .get(&callee)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Call sites whose callee set is unknown (escaped function pointers).
    pub fn unresolved_sites(&self) -> &[(FuncId, InstId)] {
        &self.unresolved_sites
    }

    /// Functions transitively reachable from `roots` following call edges.
    /// If the module contains unresolved call sites, every address-taken
    /// function reachable in `m` is added conservatively by the caller —
    /// this method itself only follows known edges.
    pub fn reachable_from(&self, roots: &[FuncId]) -> BTreeSet<FuncId> {
        let mut seen: BTreeSet<FuncId> = roots.iter().copied().collect();
        let mut work: Vec<FuncId> = roots.to_vec();
        while let Some(f) = work.pop() {
            for e in self.callees_of(f) {
                if seen.insert(e.callee) {
                    work.push(e.callee);
                }
            }
        }
        seen
    }

    /// The disconnected islands of the call graph (sets of functions with no
    /// call edges between the sets) — the CG/ISL capability of the paper.
    pub fn islands(&self) -> Vec<BTreeSet<FuncId>> {
        let nodes: Vec<FuncId> = (0..self.num_funcs as u32).map(FuncId).collect();
        let edges: Vec<(FuncId, FuncId)> =
            self.edges.iter().map(|e| (e.caller, e.callee)).collect();
        islands_of(&nodes, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::types::{FuncType, Type};
    use noelle_ir::value::Value;
    use std::sync::Arc;

    fn empty_fn(m: &mut Module, name: &str) -> FuncId {
        let mut b = FunctionBuilder::new(name, vec![], Type::Void);
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish())
    }

    #[test]
    fn direct_edges_are_must_with_sites() {
        let mut m = Module::new("t");
        let leaf = empty_fn(&mut m, "leaf");
        let mut b = FunctionBuilder::new("root", vec![], Type::Void);
        let e = b.entry_block();
        b.switch_to(e);
        b.call(leaf, vec![], Type::Void);
        b.call(leaf, vec![], Type::Void);
        b.ret(None);
        let root = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        let cg = CallGraph::build(&m, &andersen);
        let edges: Vec<_> = cg.callees_of(root).collect();
        assert_eq!(edges.len(), 1);
        assert!(edges[0].is_must);
        assert_eq!(edges[0].sites.len(), 2); // two sub-edges, one per site
        assert_eq!(cg.callers_of(leaf).count(), 1);
        assert!(cg.unresolved_sites().is_empty());
    }

    #[test]
    fn indirect_edges_resolved_as_may() {
        let mut m = Module::new("t");
        let f1 = empty_fn(&mut m, "f1");
        let f2 = empty_fn(&mut m, "f2");
        let _f3 = empty_fn(&mut m, "f3");
        let fty = Type::Func(Arc::new(FuncType {
            params: vec![],
            ret: Type::Void,
        }));
        let mut b = FunctionBuilder::new("root", vec![("c", Type::I1)], Type::Void);
        let e = b.entry_block();
        b.switch_to(e);
        let fp = b.select(fty.ptr_to(), b.arg(0), Value::Func(f1), Value::Func(f2));
        b.call_indirect(fp, vec![], Type::Void);
        b.ret(None);
        let root = m.add_function(b.finish());
        let andersen = AndersenAlias::new(&m);
        let cg = CallGraph::build(&m, &andersen);
        let callees: BTreeSet<FuncId> = cg.callees_of(root).map(|e| e.callee).collect();
        assert_eq!(callees, BTreeSet::from([f1, f2]));
        assert!(cg.callees_of(root).all(|e| !e.is_must));
        // f3 has no edge: completeness lets tools conclude it is never
        // invoked by root.
        assert!(!callees.contains(&_f3));
        // Reachability from root covers f1 and f2 only.
        let reach = cg.reachable_from(&[root]);
        assert!(reach.contains(&f1) && reach.contains(&f2) && !reach.contains(&_f3));
    }

    #[test]
    fn islands_partition_the_graph() {
        let mut m = Module::new("t");
        let a = empty_fn(&mut m, "a");
        let mut b = FunctionBuilder::new("b", vec![], Type::Void);
        let e = b.entry_block();
        b.switch_to(e);
        b.call(a, vec![], Type::Void);
        b.ret(None);
        let bf = m.add_function(b.finish());
        let c = empty_fn(&mut m, "c"); // disconnected
        let andersen = AndersenAlias::new(&m);
        let cg = CallGraph::build(&m, &andersen);
        let islands = cg.islands();
        assert_eq!(islands.len(), 2);
        assert!(islands.iter().any(|i| i.contains(&a) && i.contains(&bf)));
        assert!(islands.iter().any(|i| i.len() == 1 && i.contains(&c)));
    }
}
