//! # noelle-pdg
//!
//! The dependence-graph layer of NOELLE-rs:
//!
//! - [`depgraph`] — the paper's templated *dependence graph*: a generic graph
//!   of directed dependences with typed edges (control vs data, RAW/WAW/WAR,
//!   register vs memory, loop-carried, may/must, distance) and the
//!   internal/external node split used to expose live-ins/live-outs;
//! - [`pdg`] — construction of the Program Dependence Graph over IR
//!   instructions, powered by the alias stacks of `noelle-analysis`; loop
//!   dependence graphs with loop-aware refinement; Figure 3 statistics;
//! - [`sccdag`] — Tarjan SCCs of a loop dependence graph and the *augmented*
//!   SCCDAG (aSCCDAG) whose nodes are classified Independent / Sequential /
//!   Reducible;
//! - [`callgraph`] — the *complete* program call graph, including indirect
//!   calls resolved through points-to analysis, with may/must edges and
//!   sub-edges per call site;
//! - [`islands`] — identification of the disconnected sub-graphs of a graph.

pub mod callgraph;
pub mod depgraph;
pub mod islands;
pub mod pdg;
pub mod sccdag;

pub use depgraph::{DataDepKind, DepEdge, DepGraph, DepKind, EdgeAttrs};
pub use pdg::{PdgBuilder, ProgramPdg};
pub use sccdag::{SccDag, SccKind};
