//! The generic (templated) dependence graph.
//!
//! Per the paper, NOELLE's *dependence graph* is "a templated class designed to
//! represent a generic graph of directed dependences between nodes. What
//! constitutes a node is decided when the class is instantiated." Here the
//! node type is a generic parameter `N`; the PDG instantiates it with
//! instruction ids, the call graph with function ids.
//!
//! Nodes are split into *internal* and *external* sets: internal nodes belong
//! to the code region the graph describes (a loop, a function), external ones
//! are the sources/sinks of dependences crossing the boundary — the live-ins
//! and live-outs of the region.

use noelle_ir::bytes::{ByteReader, ByteWriter, DecodeError};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

/// Kind of a data dependence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataDepKind {
    /// Read-after-write (true/flow dependence).
    Raw,
    /// Write-after-read (anti dependence).
    War,
    /// Write-after-write (output dependence).
    Waw,
}

/// Kind of a dependence edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Control dependence.
    Control,
    /// Data dependence of the given kind.
    Data(DataDepKind),
}

/// Attributes carried by each dependence edge, matching the paper's PDG edge
/// description: control/data, RAW/WAW/WAR, register/memory, loop-carried,
/// may ("apparent") vs must ("actual"), and dependence distance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeAttrs {
    /// Control or data (+ data kind).
    pub kind: DepKind,
    /// True for dependences through memory, false for register (SSA) ones.
    pub memory: bool,
    /// True when the dependence is proven to occur ("actual"); false for
    /// may-dependences ("apparent").
    pub must: bool,
    /// True when the dependence crosses loop iterations (meaningful in loop
    /// dependence graphs).
    pub loop_carried: bool,
    /// Iteration distance, when known (`Some(0)` = intra-iteration).
    pub distance: Option<i64>,
}

impl EdgeAttrs {
    /// A register data dependence (SSA def-use): always a must RAW.
    pub fn register() -> EdgeAttrs {
        EdgeAttrs {
            kind: DepKind::Data(DataDepKind::Raw),
            memory: false,
            must: true,
            loop_carried: false,
            distance: None,
        }
    }

    /// A may memory dependence of the given kind.
    pub fn memory(kind: DataDepKind) -> EdgeAttrs {
        EdgeAttrs {
            kind: DepKind::Data(kind),
            memory: true,
            must: false,
            loop_carried: false,
            distance: None,
        }
    }

    /// A control dependence.
    pub fn control() -> EdgeAttrs {
        EdgeAttrs {
            kind: DepKind::Control,
            memory: false,
            must: true,
            loop_carried: false,
            distance: None,
        }
    }

    /// Same attributes with the loop-carried flag set.
    pub fn carried(mut self) -> EdgeAttrs {
        self.loop_carried = true;
        self
    }

    /// True for data dependences.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, DepKind::Data(_))
    }

    /// True for control dependences.
    pub fn is_control(&self) -> bool {
        matches!(self.kind, DepKind::Control)
    }
}

/// Identifier of an edge within a [`DepGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// A directed dependence `src -> dst` (dst depends on src).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DepEdge<N> {
    /// The instruction/node depended upon.
    pub src: N,
    /// The dependent node.
    pub dst: N,
    /// Edge attributes.
    pub attrs: EdgeAttrs,
}

/// Frozen compressed-sparse-row adjacency: node ids sorted for binary
/// search, per-node edge-id ranges packed into two flat arrays (one per
/// direction). Within a node's range, edge ids appear in insertion order —
/// exactly the order the mutable `HashMap<N, Vec<EdgeId>>` adjacency yields —
/// so freezing is observationally invisible to every query.
#[derive(Clone, Debug)]
struct Csr<N> {
    nodes: Vec<N>,
    out_off: Vec<u32>,
    out_ids: Vec<EdgeId>,
    in_off: Vec<u32>,
    in_ids: Vec<EdgeId>,
}

impl<N: Copy + Ord> Csr<N> {
    fn build(nodes: Vec<N>, edges: &[DepEdge<N>]) -> Csr<N> {
        let n = nodes.len();
        let idx = |x: N| {
            nodes
                .binary_search(&x)
                .expect("edge endpoint not in node set")
        };
        // Counting sort by endpoint: count, prefix-sum, then replay the edge
        // list in insertion order so each per-node range stays insertion
        // ordered.
        let mut out_off = vec![0u32; n + 1];
        let mut in_off = vec![0u32; n + 1];
        for e in edges {
            out_off[idx(e.src) + 1] += 1;
            in_off[idx(e.dst) + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let mut out_ids = vec![EdgeId(0); edges.len()];
        let mut in_ids = vec![EdgeId(0); edges.len()];
        let mut out_cur = out_off.clone();
        let mut in_cur = in_off.clone();
        for (i, e) in edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            let s = idx(e.src);
            out_ids[out_cur[s] as usize] = id;
            out_cur[s] += 1;
            let d = idx(e.dst);
            in_ids[in_cur[d] as usize] = id;
            in_cur[d] += 1;
        }
        Csr {
            nodes,
            out_off,
            out_ids,
            in_off,
            in_ids,
        }
    }

    fn range<'a>(&self, n: N, off: &[u32], ids: &'a [EdgeId]) -> &'a [EdgeId] {
        match self.nodes.binary_search(&n) {
            Ok(i) => &ids[off[i] as usize..off[i + 1] as usize],
            Err(_) => &[],
        }
    }

    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<N>()
            + (self.out_off.capacity() + self.in_off.capacity()) * 4
            + (self.out_ids.capacity() + self.in_ids.capacity()) * 4
    }
}

/// The generic dependence graph.
///
/// The graph has two adjacency representations: a mutable one
/// (`HashMap<N, Vec<EdgeId>>`, populated by [`DepGraph::add_edge`]) and a
/// frozen CSR form built by [`DepGraph::freeze`]. Builders freeze a graph
/// once construction is done; freezing drops the hash maps, packing the
/// adjacency into four flat arrays. All queries answer identically in both
/// states, and a mutation after freezing transparently thaws the graph back
/// to the map form.
#[derive(Clone, Debug)]
pub struct DepGraph<N> {
    internal: BTreeSet<N>,
    external: BTreeSet<N>,
    edges: Vec<DepEdge<N>>,
    out_adj: HashMap<N, Vec<EdgeId>>,
    in_adj: HashMap<N, Vec<EdgeId>>,
    csr: Option<Csr<N>>,
}

impl<N: Copy + Eq + Ord + Hash + fmt::Debug> DepGraph<N> {
    /// An empty graph.
    pub fn new() -> DepGraph<N> {
        DepGraph {
            internal: BTreeSet::new(),
            external: BTreeSet::new(),
            edges: Vec::new(),
            out_adj: HashMap::new(),
            in_adj: HashMap::new(),
            csr: None,
        }
    }

    /// Build a graph directly in its frozen CSR form from an internal node
    /// set and a complete edge list — the fast path for builders that know
    /// the whole graph up front. Observationally identical to calling
    /// `add_internal` for each node, `add_edge` for each edge in order, and
    /// then [`DepGraph::freeze`], but never materializes the intermediate
    /// hash-map adjacency. Edge endpoints not in `internal` become external
    /// nodes, exactly as `add_edge` would make them.
    pub fn from_edges(
        internal: impl IntoIterator<Item = N>,
        edges: Vec<DepEdge<N>>,
    ) -> DepGraph<N> {
        let internal: BTreeSet<N> = internal.into_iter().collect();
        let mut external: BTreeSet<N> = BTreeSet::new();
        for e in &edges {
            if !internal.contains(&e.src) {
                external.insert(e.src);
            }
            if !internal.contains(&e.dst) {
                external.insert(e.dst);
            }
        }
        let mut nodes: Vec<N> = Vec::with_capacity(internal.len() + external.len());
        nodes.extend(internal.iter().copied());
        nodes.extend(external.iter().copied());
        nodes.sort_unstable();
        let csr = Csr::build(nodes, &edges);
        DepGraph {
            internal,
            external,
            edges,
            out_adj: HashMap::new(),
            in_adj: HashMap::new(),
            csr: Some(csr),
        }
    }

    /// Pack the adjacency into the frozen CSR form and free the hash maps.
    /// Idempotent. Queries are unaffected; the next `add_edge` thaws.
    pub fn freeze(&mut self) {
        if self.csr.is_some() {
            return;
        }
        // internal and external are disjoint sorted sets; merge-collect keeps
        // the union sorted for binary search.
        let mut nodes: Vec<N> = Vec::with_capacity(self.internal.len() + self.external.len());
        nodes.extend(self.internal.iter().copied());
        nodes.extend(self.external.iter().copied());
        nodes.sort_unstable();
        self.csr = Some(Csr::build(nodes, &self.edges));
        self.out_adj = HashMap::new();
        self.in_adj = HashMap::new();
    }

    /// True when the graph is in its frozen CSR form.
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// Rebuild the mutable adjacency maps from the edge list and drop the
    /// CSR view. Replaying the edge list in order reproduces the per-node
    /// insertion order exactly.
    fn thaw(&mut self) {
        if self.csr.take().is_none() {
            return;
        }
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i as u32);
            self.out_adj.entry(e.src).or_default().push(id);
            self.in_adj.entry(e.dst).or_default().push(id);
        }
    }

    /// Edge ids whose source is `n`, in insertion order.
    fn out_ids(&self, n: N) -> &[EdgeId] {
        match &self.csr {
            Some(csr) => csr.range(n, &csr.out_off, &csr.out_ids),
            None => self.out_adj.get(&n).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Edge ids whose destination is `n`, in insertion order.
    fn in_ids(&self, n: N) -> &[EdgeId] {
        match &self.csr {
            Some(csr) => csr.range(n, &csr.in_off, &csr.in_ids),
            None => self.in_adj.get(&n).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Approximate heap footprint in bytes (edge list + node sets + whichever
    /// adjacency form is live). Used for the `bytes_per_function` estimate.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        // BTreeSet nodes carry per-element overhead beyond the key itself;
        // 16 bytes is a rough amortized figure.
        let mut b = self.edges.capacity() * size_of::<DepEdge<N>>()
            + (self.internal.len() + self.external.len()) * (size_of::<N>() + 16);
        match &self.csr {
            Some(csr) => b += csr.heap_bytes(),
            None => {
                for v in self.out_adj.values().chain(self.in_adj.values()) {
                    // Vec storage plus an approximate hash-map slot.
                    b += v.capacity() * 4 + size_of::<N>() + 24;
                }
            }
        }
        b
    }

    /// Add an internal node (idempotent; promotes an external node).
    pub fn add_internal(&mut self, n: N) {
        self.external.remove(&n);
        self.internal.insert(n);
    }

    /// Add an external node (no-op if already internal).
    pub fn add_external(&mut self, n: N) {
        if !self.internal.contains(&n) {
            self.external.insert(n);
        }
    }

    /// Add an edge; nodes not yet present are added as external.
    pub fn add_edge(&mut self, src: N, dst: N, attrs: EdgeAttrs) -> EdgeId {
        self.thaw();
        self.add_external(src);
        self.add_external(dst);
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(DepEdge { src, dst, attrs });
        self.out_adj.entry(src).or_default().push(id);
        self.in_adj.entry(dst).or_default().push(id);
        id
    }

    /// Internal nodes (the code region itself).
    pub fn internal_nodes(&self) -> impl Iterator<Item = N> + '_ {
        self.internal.iter().copied()
    }

    /// External nodes (live-ins/live-outs of the region).
    pub fn external_nodes(&self) -> impl Iterator<Item = N> + '_ {
        self.external.iter().copied()
    }

    /// True if `n` is an internal node.
    pub fn is_internal(&self, n: N) -> bool {
        self.internal.contains(&n)
    }

    /// Number of internal nodes.
    pub fn num_internal(&self) -> usize {
        self.internal.len()
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge<N>] {
        &self.edges
    }

    /// Edges whose source is `n`.
    pub fn edges_from(&self, n: N) -> impl Iterator<Item = &DepEdge<N>> + '_ {
        self.out_ids(n)
            .iter()
            .map(move |e| &self.edges[e.0 as usize])
    }

    /// Edges whose destination is `n` (i.e. the dependences of `n`).
    pub fn edges_to(&self, n: N) -> impl Iterator<Item = &DepEdge<N>> + '_ {
        self.in_ids(n)
            .iter()
            .map(move |e| &self.edges[e.0 as usize])
    }

    /// Edges from `src` to `dst` (there may be several, one per kind).
    pub fn edges_between(&self, src: N, dst: N) -> impl Iterator<Item = &DepEdge<N>> + '_ {
        self.edges_from(src).filter(move |e| e.dst == dst)
    }

    /// True if a memory dependence connects `a` and `b` in either direction.
    ///
    /// Membership is direction-agnostic on purpose: the builder orients
    /// same-block pairs by position, so a loop-carried RAW whose store sits
    /// later in the block than the load exists statically only as the
    /// WAR-oriented edge. A runtime-observed dependence is covered as long
    /// as the pair is connected at all.
    pub fn has_memory_dep_between(&self, a: N, b: N) -> bool {
        self.edges_between(a, b).any(|e| e.attrs.memory)
            || self.edges_between(b, a).any(|e| e.attrs.memory)
    }

    /// Nodes `n` depends on (edge sources into `n`), deduplicated.
    pub fn dependences_of(&self, n: N) -> BTreeSet<N> {
        self.edges_to(n).map(|e| e.src).collect()
    }

    /// Nodes depending on `n` (edge destinations out of `n`), deduplicated.
    pub fn dependents_of(&self, n: N) -> BTreeSet<N> {
        self.edges_from(n).map(|e| e.dst).collect()
    }

    /// Build the sub-graph over `keep`: kept nodes become internal; nodes
    /// outside `keep` that touch a crossing edge become external. This is how
    /// loop dependence graphs are carved out of a function PDG.
    pub fn subgraph(&self, keep: &BTreeSet<N>) -> DepGraph<N> {
        let mut g = DepGraph::new();
        for &n in keep {
            g.add_internal(n);
        }
        // Gather the touching edges through the adjacency index —
        // O(|keep| · degree) instead of a scan of every edge. Edge ids are
        // insertion-ordered, so sorting replays them in the same order the
        // full scan would.
        let mut touching: Vec<EdgeId> = Vec::new();
        for &n in keep {
            touching.extend_from_slice(self.out_ids(n));
            touching.extend_from_slice(self.in_ids(n));
        }
        touching.sort_unstable();
        touching.dedup();
        for id in touching {
            let e = &self.edges[id.0 as usize];
            g.add_edge(e.src, e.dst, e.attrs);
        }
        g
    }

    /// Mutate the attributes of every edge through `f`.
    pub fn map_edges(&mut self, mut f: impl FnMut(&mut DepEdge<N>)) {
        for e in &mut self.edges {
            f(e);
        }
    }

    /// External nodes that feed internal ones: the region's dependence
    /// live-ins. Walks only the external nodes' out-adjacency, not the full
    /// edge list.
    pub fn incoming_externals(&self) -> BTreeSet<N> {
        self.external
            .iter()
            .filter(|&&n| self.edges_from(n).any(|e| self.internal.contains(&e.dst)))
            .copied()
            .collect()
    }

    /// External nodes fed by internal ones: the region's dependence
    /// live-outs. Walks only the external nodes' in-adjacency, not the full
    /// edge list.
    pub fn outgoing_externals(&self) -> BTreeSet<N> {
        self.external
            .iter()
            .filter(|&&n| self.edges_to(n).any(|e| self.internal.contains(&e.src)))
            .copied()
            .collect()
    }

    /// Stable binary encoding of the graph, with nodes written through
    /// `node` (see `noelle_ir::bytes`). Two graphs with equal node sets and
    /// equal edge lists (in insertion order) encode to identical bytes,
    /// regardless of frozen/thawed state — the property the durable store's
    /// round-trip oracle asserts.
    pub fn encode_with(&self, mut node: impl FnMut(N) -> u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.varint(self.internal.len() as u64);
        for &n in &self.internal {
            w.varint(node(n));
        }
        w.varint(self.external.len() as u64);
        for &n in &self.external {
            w.varint(node(n));
        }
        w.varint(self.edges.len() as u64);
        for e in &self.edges {
            w.varint(node(e.src));
            w.varint(node(e.dst));
            let kind = match e.attrs.kind {
                DepKind::Control => 0u8,
                DepKind::Data(DataDepKind::Raw) => 1,
                DepKind::Data(DataDepKind::War) => 2,
                DepKind::Data(DataDepKind::Waw) => 3,
            };
            let flags = kind
                | (u8::from(e.attrs.memory) << 2)
                | (u8::from(e.attrs.must) << 3)
                | (u8::from(e.attrs.loop_carried) << 4)
                | (u8::from(e.attrs.distance.is_some()) << 5);
            w.u8(flags);
            if let Some(d) = e.attrs.distance {
                w.ivarint(d);
            }
        }
        w.into_bytes()
    }

    /// Decode a graph encoded by [`DepGraph::encode_with`], mapping node
    /// codes back through `node`. The decoded graph is returned frozen
    /// (CSR form) and answers every query identically to the original.
    ///
    /// # Errors
    /// Truncated input, trailing bytes, out-of-domain attribute flags, edge
    /// endpoints outside the node sets, and overlapping internal/external
    /// sets all surface as [`DecodeError`] — never a panic.
    pub fn decode_with(
        bytes: &[u8],
        mut node: impl FnMut(u64) -> Result<N, DecodeError>,
    ) -> Result<DepGraph<N>, DecodeError> {
        const MAX: usize = 1 << 28;
        let mut r = ByteReader::new(bytes);
        let n_int = r.count(MAX, "depgraph: internal count")?;
        let mut internal = BTreeSet::new();
        for _ in 0..n_int {
            internal.insert(node(r.varint("depgraph: internal node")?)?);
        }
        if internal.len() != n_int {
            return Err(DecodeError::new("depgraph: duplicate internal node"));
        }
        let n_ext = r.count(MAX, "depgraph: external count")?;
        let mut external = BTreeSet::new();
        for _ in 0..n_ext {
            let x = node(r.varint("depgraph: external node")?)?;
            if internal.contains(&x) || !external.insert(x) {
                return Err(DecodeError::new("depgraph: external overlaps"));
            }
        }
        let n_edges = r.count(MAX, "depgraph: edge count")?;
        let mut edges = Vec::with_capacity(n_edges.min(1 << 20));
        for _ in 0..n_edges {
            let src = node(r.varint("depgraph: edge src")?)?;
            let dst = node(r.varint("depgraph: edge dst")?)?;
            if !(internal.contains(&src) || external.contains(&src))
                || !(internal.contains(&dst) || external.contains(&dst))
            {
                return Err(DecodeError::new("depgraph: edge endpoint unknown"));
            }
            let flags = r.u8("depgraph: edge flags")?;
            if flags & !0x3f != 0 {
                return Err(DecodeError::new("depgraph: edge flags"));
            }
            let kind = match flags & 0x3 {
                0 => DepKind::Control,
                1 => DepKind::Data(DataDepKind::Raw),
                2 => DepKind::Data(DataDepKind::War),
                _ => DepKind::Data(DataDepKind::Waw),
            };
            let distance = if flags & 0x20 != 0 {
                Some(r.ivarint("depgraph: edge distance")?)
            } else {
                None
            };
            edges.push(DepEdge {
                src,
                dst,
                attrs: EdgeAttrs {
                    kind,
                    memory: flags & 0x4 != 0,
                    must: flags & 0x8 != 0,
                    loop_carried: flags & 0x10 != 0,
                    distance,
                },
            });
        }
        r.finish("depgraph: trailing bytes")?;
        let mut nodes: Vec<N> = Vec::with_capacity(internal.len() + external.len());
        nodes.extend(internal.iter().copied());
        nodes.extend(external.iter().copied());
        nodes.sort_unstable();
        let csr = Csr::build(nodes, &edges);
        Ok(DepGraph {
            internal,
            external,
            edges,
            out_adj: HashMap::new(),
            in_adj: HashMap::new(),
            csr: Some(csr),
        })
    }
}

impl<N: Copy + Eq + Ord + Hash + fmt::Debug> Default for DepGraph<N> {
    fn default() -> Self {
        DepGraph::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_external_split() {
        let mut g: DepGraph<u32> = DepGraph::new();
        g.add_internal(1);
        g.add_internal(2);
        g.add_edge(0, 1, EdgeAttrs::register()); // 0 auto-added as external
        g.add_edge(1, 2, EdgeAttrs::register());
        g.add_edge(2, 9, EdgeAttrs::register());
        assert_eq!(g.num_internal(), 2);
        assert_eq!(g.external_nodes().collect::<Vec<_>>(), vec![0, 9]);
        assert_eq!(g.incoming_externals(), BTreeSet::from([0]));
        assert_eq!(g.outgoing_externals(), BTreeSet::from([9]));
    }

    #[test]
    fn promote_external_to_internal() {
        let mut g: DepGraph<u32> = DepGraph::new();
        g.add_edge(0, 1, EdgeAttrs::register());
        assert!(!g.is_internal(0));
        g.add_internal(0);
        assert!(g.is_internal(0));
        // adding as external again does not demote
        g.add_external(0);
        assert!(g.is_internal(0));
    }

    #[test]
    fn adjacency_queries() {
        let mut g: DepGraph<u32> = DepGraph::new();
        g.add_edge(1, 2, EdgeAttrs::register());
        g.add_edge(1, 3, EdgeAttrs::control());
        g.add_edge(2, 3, EdgeAttrs::memory(DataDepKind::Waw));
        assert_eq!(g.dependents_of(1), BTreeSet::from([2, 3]));
        assert_eq!(g.dependences_of(3), BTreeSet::from([1, 2]));
        assert_eq!(g.edges_from(1).count(), 2);
        assert_eq!(g.edges_to(3).filter(|e| e.attrs.is_control()).count(), 1);
        assert_eq!(g.edges_to(3).filter(|e| e.attrs.is_data()).count(), 1);
    }

    #[test]
    fn memory_dep_membership_is_direction_agnostic() {
        let mut g: DepGraph<u32> = DepGraph::new();
        g.add_edge(1, 2, EdgeAttrs::register());
        g.add_edge(2, 3, EdgeAttrs::memory(DataDepKind::War));
        assert_eq!(g.edges_between(1, 2).count(), 1);
        assert_eq!(g.edges_between(2, 1).count(), 0);
        // Register edges don't count as memory coverage.
        assert!(!g.has_memory_dep_between(1, 2));
        // Memory edges count regardless of orientation.
        assert!(g.has_memory_dep_between(2, 3));
        assert!(g.has_memory_dep_between(3, 2));
        assert!(!g.has_memory_dep_between(1, 3));
    }

    #[test]
    fn subgraph_carves_region() {
        let mut g: DepGraph<u32> = DepGraph::new();
        for n in 0..5 {
            g.add_internal(n);
        }
        g.add_edge(0, 1, EdgeAttrs::register());
        g.add_edge(1, 2, EdgeAttrs::register());
        g.add_edge(2, 3, EdgeAttrs::register());
        g.add_edge(3, 4, EdgeAttrs::register());
        let keep = BTreeSet::from([1, 2]);
        let sub = g.subgraph(&keep);
        assert_eq!(sub.num_internal(), 2);
        // Crossing edges kept, with boundary nodes external.
        assert_eq!(sub.edges().len(), 3);
        assert_eq!(sub.incoming_externals(), BTreeSet::from([0]));
        assert_eq!(sub.outgoing_externals(), BTreeSet::from([3]));
        // Fully-outside edge dropped.
        assert!(sub
            .edges()
            .iter()
            .all(|e| keep.contains(&e.src) || keep.contains(&e.dst)));
    }

    #[test]
    fn subgraph_preserves_edge_order() {
        let mut g: DepGraph<u32> = DepGraph::new();
        for n in 0..6 {
            g.add_internal(n);
        }
        g.add_edge(5, 1, EdgeAttrs::control());
        g.add_edge(0, 1, EdgeAttrs::register());
        g.add_edge(2, 1, EdgeAttrs::memory(DataDepKind::Raw));
        g.add_edge(3, 4, EdgeAttrs::register()); // untouched by keep
        g.add_edge(1, 5, EdgeAttrs::register());
        let keep = BTreeSet::from([1]);
        let sub = g.subgraph(&keep);
        // The adjacency-indexed carve replays touching edges in insertion
        // order, exactly as a full edge scan would.
        let expect: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .filter(|e| keep.contains(&e.src) || keep.contains(&e.dst))
            .map(|e| (e.src, e.dst))
            .collect();
        let got: Vec<(u32, u32)> = sub.edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(got, expect);
    }

    fn query_fingerprint(g: &DepGraph<u32>) -> String {
        let mut s = String::new();
        let nodes: Vec<u32> = g.internal_nodes().chain(g.external_nodes()).collect();
        for &n in &nodes {
            s.push_str(&format!(
                "{n}: out={:?} in={:?}\n",
                g.edges_from(n).map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
                g.edges_to(n).map(|e| (e.src, e.dst)).collect::<Vec<_>>(),
            ));
        }
        s.push_str(&format!(
            "ext_in={:?} ext_out={:?}\n",
            g.incoming_externals(),
            g.outgoing_externals()
        ));
        s
    }

    fn build_sample() -> DepGraph<u32> {
        let mut g: DepGraph<u32> = DepGraph::new();
        for n in 0..4 {
            g.add_internal(n);
        }
        g.add_edge(9, 0, EdgeAttrs::control());
        g.add_edge(0, 1, EdgeAttrs::register());
        g.add_edge(0, 2, EdgeAttrs::memory(DataDepKind::Raw));
        g.add_edge(2, 1, EdgeAttrs::register());
        g.add_edge(1, 3, EdgeAttrs::register());
        g.add_edge(3, 8, EdgeAttrs::memory(DataDepKind::Waw));
        g
    }

    #[test]
    fn frozen_csr_answers_identically() {
        let g = build_sample();
        let before = query_fingerprint(&g);
        let mut f = g.clone();
        f.freeze();
        assert!(f.is_frozen());
        assert_eq!(query_fingerprint(&f), before);
        // Subgraph carving is identical too, including edge order.
        let keep = BTreeSet::from([0, 1]);
        let a: Vec<_> = g
            .subgraph(&keep)
            .edges()
            .iter()
            .map(|e| (e.src, e.dst))
            .collect();
        let b: Vec<_> = f
            .subgraph(&keep)
            .edges()
            .iter()
            .map(|e| (e.src, e.dst))
            .collect();
        assert_eq!(a, b);
        // Freezing twice is a no-op.
        f.freeze();
        assert_eq!(query_fingerprint(&f), before);
    }

    #[test]
    fn mutation_after_freeze_thaws() {
        let mut g = build_sample();
        g.freeze();
        g.add_edge(3, 0, EdgeAttrs::register());
        assert!(!g.is_frozen());
        assert_eq!(g.edges_from(3).count(), 2);
        assert_eq!(g.edges_to(0).count(), 2);
        // Re-freeze and verify the new edge is in the CSR view.
        let before = query_fingerprint(&g);
        g.freeze();
        assert_eq!(query_fingerprint(&g), before);
    }

    #[test]
    fn map_edges_works_while_frozen() {
        let mut g = build_sample();
        g.freeze();
        g.map_edges(|e| e.attrs.loop_carried = true);
        assert!(g.is_frozen());
        assert!(g.edges().iter().all(|e| e.attrs.loop_carried));
    }

    #[test]
    fn freeze_reports_heap_bytes() {
        let mut g = build_sample();
        let unfrozen = g.approx_heap_bytes();
        g.freeze();
        let frozen = g.approx_heap_bytes();
        assert!(unfrozen > 0 && frozen > 0);
        // The packed form should not be larger than the map form.
        assert!(frozen <= unfrozen, "frozen {frozen} > unfrozen {unfrozen}");
    }

    #[test]
    fn attrs_builders() {
        let r = EdgeAttrs::register();
        assert!(r.must && !r.memory && r.is_data());
        let m = EdgeAttrs::memory(DataDepKind::War).carried();
        assert!(m.memory && m.loop_carried && !m.must);
        let c = EdgeAttrs::control();
        assert!(c.is_control() && !c.is_data());
    }

    fn decode_u32(bytes: &[u8]) -> Result<DepGraph<u32>, DecodeError> {
        DepGraph::decode_with(bytes, |v| {
            u32::try_from(v).map_err(|_| DecodeError::new("test: node"))
        })
    }

    #[test]
    fn codec_round_trips_and_is_stable() {
        let mut g = build_sample();
        let mut carried = EdgeAttrs::memory(DataDepKind::War).carried();
        carried.distance = Some(-3);
        g.add_edge(1, 2, carried);
        let bytes = g.encode_with(u64::from);
        let d = decode_u32(&bytes).unwrap();
        assert!(d.is_frozen());
        assert_eq!(query_fingerprint(&d), query_fingerprint(&g));
        assert_eq!(d.edges(), g.edges());
        // Frozen/thawed state does not leak into the encoding, and
        // re-encoding the decoded graph is byte-identical.
        let mut f = g.clone();
        f.freeze();
        assert_eq!(f.encode_with(u64::from), bytes);
        assert_eq!(d.encode_with(u64::from), bytes);
    }

    #[test]
    fn codec_empty_graph() {
        let g: DepGraph<u32> = DepGraph::new();
        let bytes = g.encode_with(u64::from);
        let d = decode_u32(&bytes).unwrap();
        assert_eq!(d.num_internal(), 0);
        assert_eq!(d.edges().len(), 0);
    }

    #[test]
    fn codec_rejects_malformed() {
        let g = build_sample();
        let bytes = g.encode_with(u64::from);
        // Truncation at every cut is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_u32(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_u32(&long).is_err());
        // An edge endpoint outside the node sets must be a decode error,
        // not a CSR-build panic.
        let mut w = ByteWriter::new();
        w.varint(1); // one internal node: 0
        w.varint(0);
        w.varint(0); // no externals
        w.varint(1); // one edge 0 -> 7 (unknown)
        w.varint(0);
        w.varint(7);
        w.u8(1);
        assert!(decode_u32(&w.into_bytes()).is_err());
        // Reserved flag bits rejected.
        let mut w = ByteWriter::new();
        w.varint(1);
        w.varint(0);
        w.varint(0);
        w.varint(1);
        w.varint(0);
        w.varint(0);
        w.u8(0x40);
        assert!(decode_u32(&w.into_bytes()).is_err());
        // Internal/external overlap rejected.
        let mut w = ByteWriter::new();
        w.varint(1);
        w.varint(0);
        w.varint(1);
        w.varint(0);
        w.varint(0);
        assert!(decode_u32(&w.into_bytes()).is_err());
    }
}
