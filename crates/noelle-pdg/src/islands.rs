//! Islands (ISL): the disconnected sub-graphs of a graph.
//!
//! A tiny generic capability (56 LoC in the paper) used over both the call
//! graph and dependence graphs — e.g. the Time-Squeezer custom tool uses
//! islands of compare-instruction dependences, and DEAD uses call-graph
//! islands.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// Partition `nodes` into connected components of the *undirected* view of
/// `edges`. Nodes not mentioned by any edge form singleton islands.
pub fn islands_of<N: Copy + Eq + Ord + Hash>(nodes: &[N], edges: &[(N, N)]) -> Vec<BTreeSet<N>> {
    // Union-find over node indices.
    let index: HashMap<N, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b) in edges {
        let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) else {
            continue;
        };
        let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut groups: HashMap<usize, BTreeSet<N>> = HashMap::new();
    for (i, &n) in nodes.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().insert(n);
    }
    let mut out: Vec<BTreeSet<N>> = groups.into_values().collect();
    out.sort_by(|a, b| a.iter().next().cmp(&b.iter().next()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_disconnected_components() {
        let nodes = [1u32, 2, 3, 4, 5];
        let edges = [(1, 2), (2, 3), (4, 5)];
        let islands = islands_of(&nodes, &edges);
        assert_eq!(islands.len(), 2);
        assert_eq!(islands[0], BTreeSet::from([1, 2, 3]));
        assert_eq!(islands[1], BTreeSet::from([4, 5]));
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let nodes = [1u32, 2, 3];
        let islands = islands_of(&nodes, &[]);
        assert_eq!(islands.len(), 3);
    }

    #[test]
    fn direction_is_ignored() {
        let nodes = [1u32, 2, 3];
        let islands = islands_of(&nodes, &[(3, 1), (1, 3), (2, 3)]);
        assert_eq!(islands.len(), 1);
    }

    #[test]
    fn edges_to_unknown_nodes_are_skipped() {
        let nodes = [1u32, 2];
        let islands = islands_of(&nodes, &[(1, 99), (2, 98)]);
        assert_eq!(islands.len(), 2);
    }
}
