//! Program Dependence Graph construction.
//!
//! The PDG contains *all* dependences between the instructions of a program
//! (Ferrante et al.): register data dependences from SSA def-use chains,
//! memory data dependences established by the alias-analysis stack, and
//! control dependences from the post-dominance frontier. Loop dependence
//! graphs are carved from a function's PDG and then *refined* with
//! loop-centric analyses — exactly the flow the paper describes ("when a pass
//! requests the loop dependence graph from a PDG, NOELLE runs loop-centric
//! analyses to refine the dependences included in the PDG for the specific
//! loop in-question").

use crate::depgraph::{DataDepKind, DepEdge, DepGraph, EdgeAttrs};
use noelle_analysis::alias::{AliasAnalysis, AliasResult, MemoryObject};
use noelle_analysis::modref::ModRefSummaries;
use noelle_analysis::scev::{affine_recurrences, trivially_loop_invariant, AddRec};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::PostDomTree;
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{FuncId, Function, Module};
use noelle_ir::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// How an instruction touches memory, as seen by the PDG builder.
#[derive(Clone, Copy, Debug)]
struct MemEffect {
    reads: bool,
    writes: bool,
    io: bool,
    /// The pointer operand for plain loads/stores (None for calls).
    ptr: Option<Value>,
}

/// Builds PDGs for one module against a chosen alias-analysis stack.
///
/// The builder is `Sync` (the module and alias stack are immutable, the
/// mod/ref summaries shared through an `Arc`), so [`PdgBuilder::program_pdg`]
/// can fan per-function construction out across threads.
pub struct PdgBuilder<'a> {
    module: &'a Module,
    alias: &'a dyn AliasAnalysis,
    modref: Arc<ModRefSummaries>,
}

/// The whole-program PDG: one dependence graph per defined function (linked
/// by the complete call graph for interprocedural reasoning).
///
/// Each partition sits behind its own `Arc` so an incremental rebuild can
/// assemble a new program PDG that shares every undamaged function's graph
/// with the previous snapshot — reuse is a pointer copy, not a re-analysis.
#[derive(Debug)]
pub struct ProgramPdg {
    /// Dependence graph of each defined function.
    pub per_function: HashMap<FuncId, Arc<DepGraph<InstId>>>,
}

impl ProgramPdg {
    /// Total number of dependence edges across the program.
    pub fn num_edges(&self) -> usize {
        self.per_function.values().map(|g| g.edges().len()).sum()
    }

    /// True if the PDG of `fid` connects `src` and `dst` with a memory
    /// dependence (in either direction; see
    /// [`DepGraph::has_memory_dep_between`]). This is the soundness
    /// membership query the dynamic dependence oracle asks: every
    /// runtime-observed store→load pair must be covered, or the alias
    /// analysis missed a dependence.
    pub fn covers_memory_dep(&self, fid: FuncId, src: InstId, dst: InstId) -> bool {
        self.per_function
            .get(&fid)
            .map(|g| g.has_memory_dep_between(src, dst))
            .unwrap_or(false)
    }

    /// Approximate heap footprint of all per-function graphs, in bytes.
    pub fn approx_heap_bytes(&self) -> usize {
        self.per_function
            .values()
            .map(|g| g.approx_heap_bytes() + 32)
            .sum()
    }
}

impl<'a> PdgBuilder<'a> {
    /// Create a builder over `module` using alias stack `alias`.
    pub fn new(module: &'a Module, alias: &'a dyn AliasAnalysis) -> PdgBuilder<'a> {
        PdgBuilder {
            module,
            alias,
            modref: Arc::new(ModRefSummaries::compute(module)),
        }
    }

    /// Create a builder reusing already-computed mod/ref summaries — what
    /// the experiment harnesses use to share one summary computation across
    /// several alias configurations of the same module.
    pub fn new_with_modref(
        module: &'a Module,
        alias: &'a dyn AliasAnalysis,
        modref: Arc<ModRefSummaries>,
    ) -> PdgBuilder<'a> {
        PdgBuilder {
            module,
            alias,
            modref,
        }
    }

    /// The module this builder analyzes.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Mod/ref summaries (shared with invariant detection).
    pub fn modref(&self) -> &ModRefSummaries {
        &self.modref
    }

    /// A shareable handle on the mod/ref summaries.
    pub fn modref_arc(&self) -> Arc<ModRefSummaries> {
        Arc::clone(&self.modref)
    }

    /// Build the whole-program PDG, fanning per-function construction out
    /// across threads. Each function's graph is independent, so the result
    /// is edge-identical to the sequential build.
    pub fn program_pdg(&self) -> ProgramPdg {
        let fids: Vec<FuncId> = self
            .module
            .func_ids()
            .filter(|&fid| !self.module.func(fid).is_declaration())
            .collect();
        ProgramPdg {
            per_function: self.pdg_partitions(&fids),
        }
    }

    /// Build the per-function PDG partitions of exactly the given functions,
    /// fanning construction out across threads. This is the work-list core
    /// of [`PdgBuilder::program_pdg`], exposed so the incremental engine can
    /// re-derive only the partitions an edit damaged.
    pub fn pdg_partitions(&self, fids: &[FuncId]) -> HashMap<FuncId, Arc<DepGraph<InstId>>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(fids.len().max(1));
        if workers <= 1 {
            return fids
                .iter()
                .map(|&fid| (fid, Arc::new(self.function_pdg(fid))))
                .collect();
        }
        let mut per_function = HashMap::with_capacity(fids.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        // Round-robin chunking keeps per-thread work balanced
                        // without coordination.
                        fids.iter()
                            .skip(w)
                            .step_by(workers)
                            .map(|&fid| (fid, Arc::new(self.function_pdg(fid))))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                per_function.extend(h.join().expect("PDG worker panicked"));
            }
        });
        per_function
    }

    /// Sequential all-pairs reference build of the whole-program PDG: the
    /// pre-bucketing algorithm, kept as the oracle the bucketed/parallel
    /// path is tested against and the baseline the benches compare to.
    pub fn program_pdg_allpairs(&self) -> ProgramPdg {
        let per_function = self
            .module
            .func_ids()
            .filter(|&fid| !self.module.func(fid).is_declaration())
            .map(|fid| (fid, Arc::new(self.function_pdg_allpairs(fid))))
            .collect();
        ProgramPdg { per_function }
    }

    /// Sequential whole-program build through [`PdgBuilder::function_pdg_seed_layout`]:
    /// the measured "old layout" baseline of the scaling benches.
    pub fn program_pdg_seed_layout(&self) -> ProgramPdg {
        let per_function = self
            .module
            .func_ids()
            .filter(|&fid| !self.module.func(fid).is_declaration())
            .map(|fid| (fid, Arc::new(self.function_pdg_seed_layout(fid))))
            .collect();
        ProgramPdg { per_function }
    }

    /// Pre-CSR reference build, preserved verbatim as the baseline the
    /// data-layout benches extrapolate from. Every cost the layout work
    /// removed is deliberately still here: adjacency-map graph construction
    /// (`add_internal`/`add_edge` into hash maps, never frozen), a `Vec`
    /// allocated per instruction for its operands, `HashMap`-keyed block
    /// positions with a linear `position_in_block` scan per entry, a
    /// `BTreeSet`-accumulated pair list, and two independent alias queries
    /// per memory pair. Edge sets are identical to the bucketed/CSR path
    /// (pinned by `seed_layout_matches_fast_path`); only the layout differs.
    pub fn function_pdg_seed_layout(&self, fid: FuncId) -> DepGraph<InstId> {
        let f = self.module.func(fid);
        let cfg = Cfg::new(f);
        let mut g: DepGraph<InstId> = DepGraph::new();
        let inst_ids = f.inst_ids();
        for &id in &inst_ids {
            g.add_internal(id);
        }

        // Register (SSA) dependences.
        for &id in &inst_ids {
            for op in f.inst(id).operands() {
                if let Value::Inst(def) = op {
                    g.add_edge(def, id, EdgeAttrs::register());
                }
            }
        }

        // Control dependences, in the same deterministic block order as the
        // CSR path so the two layouts emit identical edge streams.
        let pdt = PostDomTree::new(f, &cfg);
        for (dep_block, ctrls) in sorted_control_deps(&pdt, &cfg) {
            for ctrl in ctrls {
                if let Some(term) = f.terminator_id(ctrl) {
                    for &id in &f.block(dep_block).insts {
                        g.add_edge(term, id, EdgeAttrs::control());
                    }
                }
            }
        }

        // Memory dependences over every ordered pair, each direction paying
        // its own alias query — the pre-layout-work cost model.
        let mem: Vec<(InstId, MemEffect)> = inst_ids
            .iter()
            .filter_map(|&id| self.mem_effect(fid, f, id).map(|e| (id, e)))
            .collect();
        let pos: HashMap<InstId, (noelle_ir::module::BlockId, usize)> = inst_ids
            .iter()
            .map(|&id| {
                (
                    id,
                    (f.parent_block(id), f.position_in_block(id).unwrap_or(0)),
                )
            })
            .collect();
        let pairs: BTreeSet<(usize, usize)> =
            PdgBuilder::all_pairs(mem.len()).into_iter().collect();
        for (i, j) in pairs {
            let (ia, ea) = &mem[i];
            let (ib, eb) = &mem[j];
            let (ba, pa) = pos[ia];
            let (bb, pb) = pos[ib];
            let same_block = ba == bb;
            let fwd = PdgBuilder::conflict_kind_of(ea, eb, self.pair_aliasing(fid, ea, eb));
            if let Some((kind, must)) = fwd {
                if !same_block || pa < pb {
                    let mut attrs = EdgeAttrs::memory(kind);
                    attrs.must = must && ea.ptr.is_some() && eb.ptr.is_some();
                    g.add_edge(*ia, *ib, attrs);
                }
            }
            let bwd = PdgBuilder::conflict_kind_of(eb, ea, self.pair_aliasing(fid, eb, ea));
            if let Some((kind, must)) = bwd {
                if !same_block || pb < pa {
                    let mut attrs = EdgeAttrs::memory(kind);
                    attrs.must = must && ea.ptr.is_some() && eb.ptr.is_some();
                    g.add_edge(*ib, *ia, attrs);
                }
            }
        }
        g
    }

    fn mem_effect(&self, fid: FuncId, f: &Function, id: InstId) -> Option<MemEffect> {
        match f.inst(id) {
            Inst::Load { ptr, .. } => Some(MemEffect {
                reads: true,
                writes: false,
                io: false,
                ptr: Some(*ptr),
            }),
            Inst::Store { ptr, .. } => Some(MemEffect {
                reads: false,
                writes: true,
                io: false,
                ptr: Some(*ptr),
            }),
            Inst::Call { callee, .. } => {
                let (reads, writes, io) = match callee {
                    Callee::Direct(cid) => (
                        self.modref.may_read(*cid),
                        self.modref.may_write(*cid),
                        self.modref.has_io(*cid),
                    ),
                    Callee::Indirect(_) => (true, true, true),
                };
                let _ = fid;
                if reads || writes || io {
                    Some(MemEffect {
                        reads,
                        writes,
                        io,
                        ptr: None,
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// One symmetric alias query for an unordered access pair: `Some`
    /// when both sides are plain pointer accesses (pointer-based
    /// disambiguation applies), `None` when either side has no pointer
    /// (calls, I/O).
    fn pair_aliasing(&self, fid: FuncId, a: &MemEffect, b: &MemEffect) -> Option<AliasResult> {
        match (a.ptr, b.ptr) {
            (Some(pa), Some(pb)) => Some(self.alias.alias(fid, pa, pb)),
            _ => None,
        }
    }

    /// Can accesses `a` and `b` conflict, and with which data-dependence kind
    /// for the ordered pair `a -> b`? `aliasing` is the pair's symmetric
    /// alias verdict from [`PdgBuilder::pair_aliasing`] — shared by both
    /// orientations of the pair.
    fn conflict_kind_of(
        a: &MemEffect,
        b: &MemEffect,
        aliasing: Option<AliasResult>,
    ) -> Option<(DataDepKind, bool)> {
        let mut must = false;
        match aliasing {
            Some(AliasResult::No) => return None,
            Some(AliasResult::Must) => must = true,
            Some(AliasResult::May) | None => {}
        }
        let kind = if a.writes && b.reads {
            DataDepKind::Raw
        } else if a.reads && b.writes {
            DataDepKind::War
        } else if a.writes && b.writes {
            DataDepKind::Waw
        } else if a.io && b.io {
            // Two I/O operations must stay ordered even though they do not
            // touch user-visible memory (e.g. two prints).
            DataDepKind::Waw
        } else {
            return None;
        };
        Some((kind, must))
    }

    /// Indices into `mem` of the unordered access pairs that base-object
    /// bucketing cannot rule out, in ascending `(i, j)` order (`i < j`).
    ///
    /// Accesses are grouped by the abstract objects their pointer may
    /// address ([`AliasAnalysis::base_objects`]); only pairs sharing a
    /// bucket are candidates. Accesses with no bounded base set — calls,
    /// unknown pointers — land in a catch-all group examined against
    /// everything. Sound and *exact* relative to the all-pairs loop: a
    /// skipped pair has disjoint known base sets, for which the alias
    /// contract guarantees `No` — the all-pairs loop would add no edge.
    fn candidate_pairs(&self, fid: FuncId, mem: &[(InstId, MemEffect)]) -> Vec<(usize, usize)> {
        let mut buckets: BTreeMap<MemoryObject, Vec<usize>> = BTreeMap::new();
        let mut catch_all: Vec<usize> = Vec::new();
        for (i, (_, e)) in mem.iter().enumerate() {
            match e.ptr.and_then(|p| self.alias.base_objects(fid, p)) {
                Some(objs) if !objs.is_empty() => {
                    for o in objs {
                        buckets.entry(o).or_default().push(i);
                    }
                }
                _ => catch_all.push(i),
            }
        }
        // Flat collect + sort + dedup: same ascending pair list a
        // `BTreeSet` would yield, without a tree insert per candidate.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for idxs in buckets.values() {
            for (k, &i) in idxs.iter().enumerate() {
                for &j in &idxs[k + 1..] {
                    pairs.push((i, j));
                }
            }
        }
        for &i in &catch_all {
            for j in 0..mem.len() {
                if i != j {
                    pairs.push((i.min(j), i.max(j)));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// All unordered index pairs — the pre-bucketing reference enumeration.
    fn all_pairs(n: usize) -> Vec<(usize, usize)> {
        (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect()
    }

    /// Build the dependence graph of one function (all instructions
    /// internal), enumerating memory pairs through base-object bucketing.
    pub fn function_pdg(&self, fid: FuncId) -> DepGraph<InstId> {
        self.function_pdg_impl(fid, false)
    }

    /// Reference build examining every memory pair — the oracle
    /// [`PdgBuilder::function_pdg`] is tested against.
    pub fn function_pdg_allpairs(&self, fid: FuncId) -> DepGraph<InstId> {
        self.function_pdg_impl(fid, true)
    }

    fn function_pdg_impl(&self, fid: FuncId, all_pairs: bool) -> DepGraph<InstId> {
        let f = self.module.func(fid);
        let cfg = Cfg::new(f);
        let inst_ids = f.inst_ids();
        // Edges accumulate into a flat list — in exactly the order the
        // incremental `add_edge` path would create them — and the graph is
        // born directly in its frozen CSR form.
        let mut edges: Vec<DepEdge<InstId>> = Vec::new();
        let push = |edges: &mut Vec<DepEdge<InstId>>, src, dst, attrs| {
            edges.push(DepEdge { src, dst, attrs });
        };

        // Register (SSA) dependences.
        for &id in &inst_ids {
            for op in f.inst(id).operands() {
                if let Value::Inst(def) = op {
                    push(&mut edges, def, id, EdgeAttrs::register());
                }
            }
        }

        // Control dependences: dependent block's instructions depend on the
        // controlling block's terminator. `control_dependences` hands back
        // hash maps, so impose block order — the frozen CSR form assigns
        // `EdgeId`s from the edge stream, which must be reproducible.
        let pdt = PostDomTree::new(f, &cfg);
        for (dep_block, ctrls) in sorted_control_deps(&pdt, &cfg) {
            for ctrl in ctrls {
                if let Some(term) = f.terminator_id(ctrl) {
                    for &id in &f.block(dep_block).insts {
                        push(&mut edges, term, id, EdgeAttrs::control());
                    }
                }
            }
        }

        // Memory dependences: ordered pairs of memory-touching instructions.
        // Same-block pairs are oriented by position; cross-block pairs get
        // edges in both directions (flow-insensitive may-dependences).
        let mem: Vec<(InstId, MemEffect)> = inst_ids
            .iter()
            .filter_map(|&id| self.mem_effect(fid, f, id).map(|e| (id, e)))
            .collect();
        // Dense per-instruction position table (InstId is an arena index).
        let max_idx = inst_ids.iter().map(|id| id.index()).max().unwrap_or(0);
        let mut pos = vec![(noelle_ir::module::BlockId(0), 0usize); max_idx + 1];
        for &id in &inst_ids {
            pos[id.index()] = (f.parent_block(id), f.position_in_block(id).unwrap_or(0));
        }
        let pairs = if all_pairs {
            PdgBuilder::all_pairs(mem.len())
        } else {
            self.candidate_pairs(fid, &mem)
        };
        for (i, j) in pairs {
            let (ia, ea) = &mem[i];
            let (ib, eb) = &mem[j];
            let (ba, pa) = pos[ia.index()];
            let (bb, pb) = pos[ib.index()];
            let same_block = ba == bb;
            // One alias query answers both directions: `alias` is symmetric,
            // so querying each ordered pair separately just doubled the hot
            // path's cost.
            let aliasing = self.pair_aliasing(fid, ea, eb);
            // a -> b direction.
            if let Some((kind, must)) = PdgBuilder::conflict_kind_of(ea, eb, aliasing) {
                if !same_block || pa < pb {
                    let mut attrs = EdgeAttrs::memory(kind);
                    attrs.must = must && ea.ptr.is_some() && eb.ptr.is_some();
                    push(&mut edges, *ia, *ib, attrs);
                }
            }
            // b -> a direction.
            if let Some((kind, must)) = PdgBuilder::conflict_kind_of(eb, ea, aliasing) {
                if !same_block || pb < pa {
                    let mut attrs = EdgeAttrs::memory(kind);
                    attrs.must = must && ea.ptr.is_some() && eb.ptr.is_some();
                    push(&mut edges, *ib, *ia, attrs);
                }
            }
        }
        DepGraph::from_edges(inst_ids, edges)
    }

    /// Memory dependences that cross a function boundary: every ordered pair
    /// of memory-touching instructions `(a in caller, b in callee)` whose
    /// accesses base-object bucketing cannot prove disjoint, as
    /// [`DepEdge`]s over `(FuncId, InstId)` nodes.
    ///
    /// Pointers live in different functions here, so the pairwise
    /// `alias(p, q)` disambiguation of the intra-procedural build does not
    /// apply; disambiguation is purely by [`AliasAnalysis::base_objects`]
    /// (accesses with an unbounded base set conflict with everything).
    /// Callers that previously re-filtered whole-graph edge lists by hand —
    /// environment-slot auditing, cross-task race detection — get the
    /// candidate pairs directly. Edges are deterministic: ascending by
    /// `(caller inst, callee inst)`.
    pub fn cross_function_memory_edges(
        &self,
        caller: FuncId,
        callee: FuncId,
    ) -> Vec<DepEdge<(FuncId, InstId)>> {
        let collect = |fid: FuncId| -> Vec<(InstId, MemEffect, Option<BTreeSet<MemoryObject>>)> {
            let f = self.module.func(fid);
            f.inst_ids()
                .into_iter()
                .filter_map(|id| self.mem_effect(fid, f, id).map(|e| (id, e)))
                .map(|(id, e)| {
                    let objs = e.ptr.and_then(|p| self.alias.base_objects(fid, p));
                    (id, e, objs)
                })
                .collect()
        };
        let caller_mem = collect(caller);
        let callee_mem = collect(callee);
        let overlap =
            |a: &Option<BTreeSet<MemoryObject>>, b: &Option<BTreeSet<MemoryObject>>| match (a, b) {
                (Some(x), Some(y)) => x.intersection(y).next().is_some(),
                // An unbounded base set may address anything.
                _ => true,
            };
        let mut out = Vec::new();
        for (ia, ea, oa) in &caller_mem {
            for (ib, eb, ob) in &callee_mem {
                if !overlap(oa, ob) {
                    continue;
                }
                if let Some((kind, _)) = self.conflict_kind_unordered(ea, eb) {
                    out.push(DepEdge {
                        src: (caller, *ia),
                        dst: (callee, *ib),
                        attrs: EdgeAttrs::memory(kind),
                    });
                }
            }
        }
        out
    }

    /// [`PdgBuilder::conflict_kind`] without the pointer-pair alias query —
    /// for accesses in different functions, where the two pointers are not
    /// comparable values.
    fn conflict_kind_unordered(&self, a: &MemEffect, b: &MemEffect) -> Option<(DataDepKind, bool)> {
        let kind = if a.writes && b.reads {
            DataDepKind::Raw
        } else if a.reads && b.writes {
            DataDepKind::War
        } else if (a.writes && b.writes) || (a.io && b.io) {
            DataDepKind::Waw
        } else {
            return None;
        };
        Some((kind, false))
    }

    /// Build the *loop dependence graph* of `l` in function `fid`: internal
    /// nodes are the loop's instructions, external nodes the boundary
    /// producers/consumers, and memory/register dependences carry
    /// loop-carried flags refined with loop-centric analyses.
    pub fn loop_pdg(&self, fid: FuncId, l: &LoopInfo) -> DepGraph<InstId> {
        self.loop_pdg_with(fid, l, &self.function_pdg(fid))
    }

    /// [`PdgBuilder::loop_pdg`] carving from an already-built function PDG —
    /// callers holding a cached whole-program PDG (the `Noelle` manager)
    /// avoid rebuilding the function graph for every loop of a function.
    pub fn loop_pdg_with(
        &self,
        fid: FuncId,
        l: &LoopInfo,
        function_graph: &DepGraph<InstId>,
    ) -> DepGraph<InstId> {
        let f = self.module.func(fid);
        let loop_insts: BTreeSet<InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|&id| l.contains(f.parent_block(id)))
            .collect();

        // Start from the carved sub-graph but drop the memory edges between
        // internal nodes: those are recomputed below with iteration
        // awareness.
        let carved = function_graph.subgraph(&loop_insts);
        let mut g: DepGraph<InstId> = DepGraph::new();
        for n in carved.internal_nodes() {
            g.add_internal(n);
        }
        for n in carved.external_nodes() {
            g.add_external(n);
        }
        for e in carved.edges() {
            let both_internal = loop_insts.contains(&e.src) && loop_insts.contains(&e.dst);
            if both_internal && e.attrs.memory {
                continue; // recomputed below
            }
            let mut attrs = e.attrs;
            // Register dependence into a header phi along the back edge is
            // the canonical loop-carried dependence.
            if both_internal && !attrs.memory && attrs.is_data() {
                if let Inst::Phi { incomings, .. } = f.inst(e.dst) {
                    if f.parent_block(e.dst) == l.header
                        && incomings
                            .iter()
                            .any(|(pred, v)| l.contains(*pred) && *v == Value::Inst(e.src))
                    {
                        attrs.loop_carried = true;
                    }
                }
            }
            g.add_edge(e.src, e.dst, attrs);
        }

        // Loop-centric memory refinement.
        let recs = affine_recurrences(f, l);
        let mem: Vec<(InstId, MemEffect)> = loop_insts
            .iter()
            .filter_map(|&id| self.mem_effect(fid, f, id).map(|e| (id, e)))
            .collect();
        let iter_local = |e: &MemEffect| {
            e.ptr
                .map(|p| distinct_per_iteration(f, l, &recs, p))
                .unwrap_or(false)
        };
        // Bucketing prunes the cross-access pairs here just as in the
        // function-level build; a pruned pair has `No` aliasing, for which
        // both `conflict_kind` directions return `None` below.
        let candidates: std::collections::HashSet<(usize, usize)> =
            self.candidate_pairs(fid, &mem).into_iter().collect();
        for (i, (ia, ea)) in mem.iter().enumerate() {
            // Self-dependence of writes across iterations.
            if ea.writes && !iter_local(ea) {
                g.add_edge(*ia, *ia, EdgeAttrs::memory(DataDepKind::Waw).carried());
            }
            if ea.io {
                // I/O must stay ordered across iterations too.
                g.add_edge(*ia, *ia, EdgeAttrs::memory(DataDepKind::Waw).carried());
            }
            for (j, (ib, eb)) in mem.iter().enumerate().skip(i + 1) {
                if !candidates.contains(&(i, j)) {
                    continue;
                }
                let aliasing = self.pair_aliasing(fid, ea, eb);
                let fwd = PdgBuilder::conflict_kind_of(ea, eb, aliasing);
                let bwd = PdgBuilder::conflict_kind_of(eb, ea, aliasing);
                if fwd.is_none() && bwd.is_none() {
                    continue;
                }
                // Same pointer, provably distinct location each iteration:
                // only an intra-iteration dependence, oriented by program
                // order within the body.
                let same_ptr = ea.ptr.is_some() && ea.ptr == eb.ptr;
                if same_ptr && iter_local(ea) {
                    let (pa, pb) = (order_key(f, l, *ia), order_key(f, l, *ib));
                    let (src, dst, kind_pair) = if pa <= pb {
                        (*ia, *ib, fwd)
                    } else {
                        (*ib, *ia, bwd)
                    };
                    if let Some((kind, must)) = kind_pair {
                        let mut attrs = EdgeAttrs::memory(kind);
                        attrs.must = must;
                        attrs.loop_carried = false;
                        attrs.distance = Some(0);
                        g.add_edge(src, dst, attrs);
                    }
                    continue;
                }
                // Otherwise the dependence may cross iterations: both
                // directions, marked carried.
                if let Some((kind, must)) = fwd {
                    let mut attrs = EdgeAttrs::memory(kind).carried();
                    attrs.must = must;
                    g.add_edge(*ia, *ib, attrs);
                }
                if let Some((kind, must)) = bwd {
                    let mut attrs = EdgeAttrs::memory(kind).carried();
                    attrs.must = must;
                    g.add_edge(*ib, *ia, attrs);
                }
            }
        }
        g.freeze();
        g
    }

    /// True if loop `l` has no loop-carried *data* dependence between its
    /// instructions other than those of its induction recurrences — the DOALL
    /// legality test.
    pub fn loop_is_doall(&self, fid: FuncId, l: &LoopInfo) -> bool {
        self.loop_is_doall_on(fid, l, &self.loop_pdg(fid, l))
    }

    /// The DOALL legality test on an already-built loop dependence graph.
    pub fn loop_is_doall_on(&self, fid: FuncId, l: &LoopInfo, g: &DepGraph<InstId>) -> bool {
        let f = self.module.func(fid);
        let recs = affine_recurrences(f, l);
        let iv_nodes: BTreeSet<InstId> = recs.iter().flat_map(|r| [r.phi, r.update]).collect();
        !g.edges().iter().any(|e| {
            e.attrs.loop_carried
                && e.attrs.is_data()
                && !(iv_nodes.contains(&e.src) && iv_nodes.contains(&e.dst))
        })
    }
}

/// Deterministic intra-body order key (block layout position, then position
/// within block).
/// Control dependences of every block, in ascending block order with each
/// controller list ascending too. [`PostDomTree::control_dependences`]
/// returns hash maps whose iteration order varies per call; both PDG build
/// paths route through this so their edge streams stay reproducible.
fn sorted_control_deps(
    pdt: &PostDomTree,
    cfg: &Cfg,
) -> Vec<(noelle_ir::module::BlockId, Vec<noelle_ir::module::BlockId>)> {
    let mut out: Vec<_> = pdt
        .control_dependences(cfg)
        .into_iter()
        .map(|(dep, ctrls)| {
            let mut ctrls: Vec<_> = ctrls.into_iter().collect();
            ctrls.sort_unstable_by_key(|b| b.0);
            (dep, ctrls)
        })
        .collect();
    out.sort_unstable_by_key(|(dep, _)| dep.0);
    out
}

fn order_key(f: &Function, _l: &LoopInfo, id: InstId) -> (usize, usize) {
    let b = f.parent_block(id);
    let bi = f
        .block_order()
        .iter()
        .position(|&x| x == b)
        .unwrap_or(usize::MAX);
    (bi, f.position_in_block(id).unwrap_or(0))
}

/// True if `ptr` provably addresses a *different* location on every
/// iteration of `l`: a `gep` whose base is loop-invariant and whose only
/// varying index is an affine recurrence of `l` with non-zero constant step.
pub fn distinct_per_iteration(f: &Function, l: &LoopInfo, recs: &[AddRec], ptr: Value) -> bool {
    let Some(id) = ptr.as_inst() else {
        return false;
    };
    let Inst::Gep { base, indices, .. } = f.inst(id) else {
        return false;
    };
    if !trivially_loop_invariant(f, l, *base) {
        return false;
    }
    let mut varying = 0;
    for idx in indices {
        if trivially_loop_invariant(f, l, *idx) {
            continue;
        }
        let is_affine = recs.iter().any(|r| {
            (*idx == Value::Inst(r.phi) || *idx == Value::Inst(r.update))
                && r.const_step().map(|s| s != 0).unwrap_or(false)
        });
        if !is_affine {
            return false;
        }
        varying += 1;
    }
    varying == 1
}

/// Counters for the Figure 3 experiment: of all pairs of memory accesses
/// that could depend (at least one write), how many does the given alias
/// stack *disprove*?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Pairs of potentially-dependent memory accesses examined.
    pub total_pairs: usize,
    /// Pairs proven independent (alias result `No`).
    pub disproved: usize,
}

impl DepStats {
    /// Fraction of pairs disproved, in `[0, 1]`.
    pub fn disproved_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.disproved as f64 / self.total_pairs as f64
        }
    }
}

/// Compute Figure 3 statistics for `m` under `alias`.
pub fn memory_dependence_stats(m: &Module, alias: &dyn AliasAnalysis) -> DepStats {
    let mut stats = DepStats::default();
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        let accesses: Vec<(Value, bool)> = f
            .inst_ids()
            .into_iter()
            .filter_map(|id| match f.inst(id) {
                Inst::Load { ptr, .. } => Some((*ptr, false)),
                Inst::Store { ptr, .. } => Some((*ptr, true)),
                _ => None,
            })
            .collect();
        for (i, (pa, wa)) in accesses.iter().enumerate() {
            for (pb, wb) in accesses.iter().skip(i + 1) {
                if !wa && !wb {
                    continue; // read-read pairs never depend
                }
                stats.total_pairs += 1;
                if alias.alias(fid, *pa, *pb) == AliasResult::No {
                    stats.disproved += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::{AndersenAlias, BasicAlias};
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::types::Type;

    /// for (i = 0; i < n; i++) a[i] = a[i] + 1   — DOALL-able.
    fn doall_loop() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::Void,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let v2 = b.binop(BinOp::Add, Type::I64, v, Value::const_i64(1));
        b.store(Type::I64, v2, p);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    /// for (i...) sum += a[i]  — loop-carried reduction through a phi.
    fn reduction_loop() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    #[test]
    fn function_pdg_has_register_and_control_edges() {
        let (m, fid, _) = doall_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.function_pdg(fid);
        assert!(g.edges().iter().any(|e| e.attrs.is_control()));
        assert!(g
            .edges()
            .iter()
            .any(|e| e.attrs.is_data() && !e.attrs.memory));
        // The load and store to a[i] produce memory edges in the flat
        // function PDG (no iteration awareness there).
        assert!(g.edges().iter().any(|e| e.attrs.memory));
    }

    #[test]
    fn loop_pdg_refines_same_iteration_accesses() {
        let (m, fid, l) = doall_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        // a[i] load/store: refined to an intra-iteration RAW-free pattern
        // (store depends on load in the same iteration; no carried edge
        // between memory accesses).
        let carried_mem: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| e.attrs.memory && e.attrs.loop_carried)
            .collect();
        assert!(
            carried_mem.is_empty(),
            "unexpected carried memory edges: {carried_mem:?}"
        );
        assert!(builder.loop_is_doall(fid, &l));
    }

    #[test]
    fn reduction_loop_has_carried_register_dep() {
        let (m, fid, l) = reduction_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        // sum2 -> sum-phi is loop-carried.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.attrs.loop_carried && e.attrs.is_data() && !e.attrs.memory));
        // Not DOALL as-is (the reduction SCC is loop-carried).
        assert!(!builder.loop_is_doall(fid, &l));
    }

    #[test]
    fn unindexed_store_blocks_doall() {
        // for (i...) *g = i  — same location every iteration.
        let mut m = Module::new("t");
        let g = m.add_global(noelle_ir::module::Global {
            name: "g".into(),
            ty: Type::I64,
            init: noelle_ir::module::GlobalInit::Zero,
            is_const: false,
        });
        let mut b = FunctionBuilder::new("k", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.store(Type::I64, i, Value::Global(g));
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g2 = builder.loop_pdg(fid, &l);
        // The store has a carried WAW self-dependence.
        assert!(g2
            .edges()
            .iter()
            .any(|e| e.src == e.dst && e.attrs.memory && e.attrs.loop_carried));
        assert!(!builder.loop_is_doall(fid, &l));
    }

    #[test]
    fn andersen_stack_disproves_more_than_basic() {
        // Two arrays allocated by two mallocs, accessed through pointers
        // loaded from memory — basic AA loses track, Andersen does not.
        let mut m = Module::new("t");
        let malloc = m.declare_function("malloc", vec![Type::I64], Type::I64.ptr_to());
        let mut b = FunctionBuilder::new("k", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let a = b.call(malloc, vec![Value::const_i64(64)], Type::I64.ptr_to());
        let c = b.call(malloc, vec![Value::const_i64(64)], Type::I64.ptr_to());
        let cell_a = b.alloca(Type::I64.ptr_to());
        let cell_c = b.alloca(Type::I64.ptr_to());
        b.store(Type::I64.ptr_to(), a, cell_a);
        b.store(Type::I64.ptr_to(), c, cell_c);
        let pa = b.load(Type::I64.ptr_to(), cell_a);
        let pc = b.load(Type::I64.ptr_to(), cell_c);
        b.store(Type::I64, Value::const_i64(1), pa);
        b.store(Type::I64, Value::const_i64(2), pc);
        b.ret(None);
        m.add_function(b.finish());

        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let s_basic = memory_dependence_stats(&m, &basic);
        let s_full = memory_dependence_stats(&m, &andersen);
        assert_eq!(s_basic.total_pairs, s_full.total_pairs);
        assert!(
            s_full.disproved > s_basic.disproved,
            "basic={s_basic:?} full={s_full:?}"
        );
    }

    /// Flatten a graph into a comparable (sorted) edge multiset.
    fn edge_set(g: &DepGraph<InstId>) -> Vec<(InstId, InstId, String)> {
        let mut v: Vec<_> = g
            .edges()
            .iter()
            .map(|e| (e.src, e.dst, format!("{:?}", e.attrs)))
            .collect();
        v.sort();
        v
    }

    /// A module mixing known-base accesses (allocas, globals, geps), calls,
    /// and unknown pointers (args, loads of pointers) across two functions —
    /// exercises every bucketing path.
    fn mixed_module() -> Module {
        let mut m = Module::new("t");
        let g = m.add_global(noelle_ir::module::Global {
            name: "g".into(),
            ty: Type::I64,
            init: noelle_ir::module::GlobalInit::Zero,
            is_const: false,
        });
        let ext = m.declare_function("print", vec![Type::I64], Type::Void);
        let mut b = FunctionBuilder::new(
            "f1",
            vec![("p", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        let a = b.alloca(Type::I64.array_of(8));
        let a0 = b.gep(
            Type::I64.array_of(8),
            a,
            vec![Value::const_i64(0), Value::const_i64(0)],
        );
        let a1 = b.gep(
            Type::I64.array_of(8),
            a,
            vec![Value::const_i64(0), Value::const_i64(1)],
        );
        b.store(Type::I64, Value::const_i64(1), a0);
        b.store(Type::I64, Value::const_i64(2), a1);
        let v0 = b.load(Type::I64, a0);
        b.store(Type::I64, v0, Value::Global(g));
        b.store(Type::I64, v0, Value::Arg(0)); // unknown base
        b.call(ext, vec![v0], Type::Void); // call: catch-all
        let gv = b.load(Type::I64, Value::Global(g));
        b.ret(Some(gv));
        m.add_function(b.finish());

        let mut b = FunctionBuilder::new("f2", vec![("q", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let cell = b.alloca(Type::I64.ptr_to());
        b.store(Type::I64.ptr_to(), Value::Arg(0), cell);
        let loaded = b.load(Type::I64.ptr_to(), cell); // unknown base ptr
        b.store(Type::I64, Value::const_i64(3), loaded);
        b.store(Type::I64, Value::const_i64(4), Value::Global(g));
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn bucketed_pdg_matches_allpairs_reference() {
        let m = mixed_module();
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack =
            noelle_analysis::alias::AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        for alias in [&basic as &dyn AliasAnalysis, &andersen, &stack] {
            let builder = PdgBuilder::new(&m, alias);
            for fid in m.func_ids() {
                if m.func(fid).is_declaration() {
                    continue;
                }
                let fast = builder.function_pdg(fid);
                let oracle = builder.function_pdg_allpairs(fid);
                assert_eq!(
                    edge_set(&fast),
                    edge_set(&oracle),
                    "bucketing diverged on {} under {}",
                    m.func(fid).name,
                    alias.name()
                );
            }
        }
    }

    #[test]
    fn seed_layout_matches_fast_path() {
        // The benches extrapolate from `function_pdg_seed_layout`; it must
        // stay a pure layout change — same nodes and edge set as the
        // bucketed/CSR path, never a semantic fork.
        let m = mixed_module();
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack =
            noelle_analysis::alias::AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        let builder = PdgBuilder::new(&m, &stack);
        for fid in m.func_ids() {
            if m.func(fid).is_declaration() {
                continue;
            }
            let fast = builder.function_pdg(fid);
            let seed = builder.function_pdg_seed_layout(fid);
            assert!(!seed.is_frozen(), "seed layout must stay adjacency-map");
            assert_eq!(
                fast.internal_nodes().collect::<BTreeSet<_>>(),
                seed.internal_nodes().collect::<BTreeSet<_>>(),
                "node sets diverged on {}",
                m.func(fid).name
            );
            assert_eq!(
                edge_set(&fast),
                edge_set(&seed),
                "seed layout diverged on {}",
                m.func(fid).name
            );
        }
    }

    #[test]
    fn parallel_program_pdg_is_deterministic() {
        let m = mixed_module();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let parallel = builder.program_pdg();
        let sequential = builder.program_pdg_allpairs();
        assert_eq!(
            parallel.per_function.keys().collect::<BTreeSet<_>>(),
            sequential.per_function.keys().collect::<BTreeSet<_>>()
        );
        for (fid, g) in &parallel.per_function {
            assert_eq!(edge_set(g), edge_set(&sequential.per_function[fid]));
        }
        // And a second parallel run reproduces itself exactly.
        let again = builder.program_pdg();
        for (fid, g) in &parallel.per_function {
            assert_eq!(edge_set(g), edge_set(&again.per_function[fid]));
        }
    }

    #[test]
    fn loop_pdg_with_reuses_prebuilt_function_graph() {
        let (m, fid, l) = doall_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let fg = builder.function_pdg(fid);
        let direct = builder.loop_pdg(fid, &l);
        let reused = builder.loop_pdg_with(fid, &l, &fg);
        assert_eq!(edge_set(&direct), edge_set(&reused));
        assert!(builder.loop_is_doall_on(fid, &l, &reused));
    }

    #[test]
    fn loop_externals_expose_live_ins_and_outs() {
        let (m, fid, l) = reduction_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        // The return consumes `sum`, so the loop has an outgoing external.
        assert!(!g.outgoing_externals().is_empty());
        assert!(g.num_internal() > 0);
    }
}
