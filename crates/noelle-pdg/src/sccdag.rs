//! The SCCDAG and its augmented form (aSCCDAG).
//!
//! "Advanced code transformations like parallelization techniques can be
//! implemented as different strategies to schedule instances of the nodes
//! that compose the SCCDAG of a loop" — HELIX distributes *instances* of an
//! SCC across cores, DSWP distributes *SCCs* across cores. The augmented
//! SCCDAG classifies each SCC as [`SccKind::Independent`],
//! [`SccKind::Sequential`], or [`SccKind::Reducible`].

use crate::depgraph::DepGraph;
use noelle_ir::inst::{BinOp, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Function;
use std::collections::{BTreeSet, HashMap};

/// Classification of an SCC of a loop dependence graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SccKind {
    /// No loop-carried dependence among the SCC's dynamic instances: the
    /// instances of different iterations can run in parallel.
    Independent,
    /// Loop-carried dependences force the instances to run in order.
    Sequential,
    /// Loop-carried dependences exist but implement a reduction that can be
    /// parallelized by cloning the accumulator.
    Reducible,
}

/// One SCC of the aSCCDAG.
#[derive(Clone, Debug)]
pub struct SccNode {
    /// Dense id of this SCC within its DAG.
    pub id: usize,
    /// Instructions composing the SCC.
    pub insts: BTreeSet<InstId>,
    /// Classification.
    pub kind: SccKind,
    /// For reducible SCCs: the reduction operator.
    pub reduction_op: Option<BinOp>,
    /// For reducible SCCs: the accumulator phi.
    pub reduction_phi: Option<InstId>,
    /// True when the SCC is an induction-variable recurrence (a header phi
    /// plus its affine update). Parallelizers handle these specially (each
    /// core computes its own IV), so they never become sequential segments.
    pub is_induction: bool,
}

/// The augmented SCCDAG of a loop.
#[derive(Clone, Debug)]
pub struct SccDag {
    nodes: Vec<SccNode>,
    /// DAG edges between SCCs: `(src, dst)` with `dst` depending on `src`.
    edges: BTreeSet<(usize, usize)>,
    /// SCC of each instruction.
    scc_of: HashMap<InstId, usize>,
}

impl SccDag {
    /// Build the aSCCDAG of loop `l` from its loop dependence graph
    /// (`loop_pdg` of [`crate::pdg::PdgBuilder`]).
    pub fn new(f: &Function, l: &LoopInfo, g: &DepGraph<InstId>) -> SccDag {
        let internal: Vec<InstId> = g.internal_nodes().collect();
        let sccs = tarjan(&internal, g);
        let mut scc_of = HashMap::new();
        for (i, scc) in sccs.iter().enumerate() {
            for &n in scc {
                scc_of.insert(n, i);
            }
        }
        let mut edges = BTreeSet::new();
        for e in g.edges() {
            if let (Some(&a), Some(&b)) = (scc_of.get(&e.src), scc_of.get(&e.dst)) {
                if a != b {
                    edges.insert((a, b));
                }
            }
        }
        let recs = noelle_analysis::scev::affine_recurrences(f, l);
        let iv_insts: BTreeSet<InstId> = recs.iter().flat_map(|r| [r.phi, r.update]).collect();
        let mut nodes = Vec::new();
        for (i, scc) in sccs.iter().enumerate() {
            let insts: BTreeSet<InstId> = scc.iter().copied().collect();
            let (kind, reduction_op, reduction_phi) = classify(f, l, g, &insts);
            // A governing-IV SCC also pulls in the exit compare and the loop
            // branch through control-dependence edges; those still count as
            // an induction SCC (each core recomputes them).
            let is_induction = insts.iter().any(|x| iv_insts.contains(x))
                && insts.iter().all(|x| {
                    iv_insts.contains(x) || matches!(f.inst(*x), Inst::Icmp { .. } | Inst::Term(_))
                });
            nodes.push(SccNode {
                id: i,
                insts,
                kind,
                reduction_op,
                reduction_phi,
                is_induction,
            });
        }
        SccDag {
            nodes,
            edges,
            scc_of,
        }
    }

    /// All SCC nodes, in topological-friendly discovery order.
    pub fn nodes(&self) -> &[SccNode] {
        &self.nodes
    }

    /// Inter-SCC dependence edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// SCC containing instruction `i`, if it is part of the loop.
    pub fn scc_of(&self, i: InstId) -> Option<usize> {
        self.scc_of.get(&i).copied()
    }

    /// SCCs with no incoming inter-SCC edges.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| !self.edges.iter().any(|&(_, d)| d == n))
            .collect()
    }

    /// Topological order of the SCC DAG.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for &(_, d) in &self.edges {
            indeg[d] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(x) = queue.pop() {
            out.push(x);
            for &(s, d) in &self.edges {
                if s == x {
                    indeg[d] -= 1;
                    if indeg[d] == 0 {
                        queue.push(d);
                    }
                }
            }
        }
        out
    }

    /// The sequential SCCs (the ones HELIX turns into sequential segments).
    pub fn sequential_sccs(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.kind == SccKind::Sequential)
            .map(|n| n.id)
            .collect()
    }

    /// True if every SCC is Independent or Reducible (DOALL after reduction
    /// handling).
    pub fn is_fully_parallelizable(&self) -> bool {
        self.nodes.iter().all(|n| n.kind != SccKind::Sequential)
    }
}

/// Tarjan's algorithm over the internal nodes of `g` (iterative).
///
/// Works entirely on dense `0..n` indices: `nodes` is sorted (it comes from
/// the graph's internal `BTreeSet`), so node→index is a binary search and all
/// per-node state lives in flat `Vec`s instead of a `HashMap<InstId, _>`.
/// Successor lists are packed once up front into a CSR array, sorted and
/// deduplicated exactly as the map-based version sorted its neighbor vectors
/// — roots and successors are visited in the same order, so the SCC output
/// (contents and emission order) is identical.
fn tarjan(nodes: &[InstId], g: &DepGraph<InstId>) -> Vec<Vec<InstId>> {
    let n = nodes.len();
    let idx = |x: InstId| {
        nodes
            .binary_search(&x)
            .expect("successor not an internal node")
    };
    // CSR successor packing. InstId sorting and dense-index sorting agree
    // because `nodes` is sorted and the mapping is monotone.
    let mut succ_off = Vec::with_capacity(n + 1);
    let mut succ: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    succ_off.push(0u32);
    for &node in nodes {
        scratch.clear();
        scratch.extend(
            g.edges_from(node)
                .filter(|e| g.is_internal(e.dst))
                .map(|e| idx(e.dst) as u32),
        );
        scratch.sort_unstable();
        scratch.dedup();
        succ.extend_from_slice(&scratch);
        succ_off.push(succ.len() as u32);
    }
    let succs_of = |v: usize| -> &[u32] { &succ[succ_off[v] as usize..succ_off[v + 1] as usize] };

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut counter = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut sccs: Vec<Vec<InstId>> = Vec::new();
    // Iterative DFS: (node, next successor position).
    let mut call_stack: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = counter;
        lowlink[root] = counter;
        counter += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        call_stack.push((root as u32, 0));

        while let Some(&mut (node, ref mut pos)) = call_stack.last_mut() {
            let v = node as usize;
            let succs = succs_of(v);
            if (*pos as usize) < succs.len() {
                let w = succs[*pos as usize] as usize;
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    lowlink[w] = counter;
                    counter += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call_stack.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow") as usize;
                        on_stack[w] = false;
                        scc.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Classify an SCC per the paper's aSCCDAG definition.
fn classify(
    f: &Function,
    l: &LoopInfo,
    g: &DepGraph<InstId>,
    insts: &BTreeSet<InstId>,
) -> (SccKind, Option<BinOp>, Option<InstId>) {
    // Loop-carried data dependences internal to the SCC?
    let carried: Vec<_> = g
        .edges()
        .iter()
        .filter(|e| {
            e.attrs.loop_carried
                && e.attrs.is_data()
                && insts.contains(&e.src)
                && insts.contains(&e.dst)
        })
        .collect();
    if carried.is_empty() {
        return (SccKind::Independent, None, None);
    }
    // Reduction pattern: the SCC is {phi, op} (possibly with casts) where op
    // is commutative+associative and the phi lives in the header. Memory
    // dependences disqualify.
    if carried.iter().any(|e| e.attrs.memory) {
        return (SccKind::Sequential, None, None);
    }
    let mut phi = None;
    let mut op = None;
    let mut clean = true;
    for &i in insts {
        match f.inst(i) {
            Inst::Phi { .. } if f.parent_block(i) == l.header => {
                if phi.replace(i).is_some() {
                    clean = false; // more than one header phi entangled
                }
            }
            Inst::Bin { op: o, .. } if o.is_reduction_op() => {
                match op {
                    None => op = Some(*o),
                    Some(prev) if prev == *o => {}
                    _ => clean = false, // mixed operators
                }
            }
            _ => clean = false,
        }
    }
    if let (true, Some(phi), Some(op)) = (clean, phi, op) {
        // The accumulated value must not be observed mid-loop by
        // instructions outside the SCC (other than after the loop). Uses of
        // the phi or the op inside the loop but outside the SCC break the
        // reduction.
        let observed_inside = g.edges().iter().any(|e| {
            insts.contains(&e.src)
                && !insts.contains(&e.dst)
                && g.is_internal(e.dst)
                && e.attrs.is_data()
                && !e.attrs.memory
        });
        if !observed_inside {
            return (SccKind::Reducible, Some(op), Some(phi));
        }
    }
    (SccKind::Sequential, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdg::PdgBuilder;
    use noelle_analysis::alias::BasicAlias;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::{FuncId, Module};
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn build_reduction() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    #[test]
    fn reduction_scc_is_reducible() {
        let (m, fid, l) = build_reduction();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        let f = m.func(fid);
        let dag = SccDag::new(f, &l, &g);
        let reducible: Vec<_> = dag
            .nodes()
            .iter()
            .filter(|n| n.kind == SccKind::Reducible)
            .collect();
        assert_eq!(reducible.len(), 1);
        assert_eq!(reducible[0].reduction_op, Some(BinOp::Add));
        assert!(reducible[0].reduction_phi.is_some());
        // The induction variable SCC is sequential (carried, not a plain
        // reduction observed only at exit? The IV phi/add *is* a reduction
        // shape by this classification).
        assert!(dag.nodes().len() >= 2);
    }

    #[test]
    fn loads_form_independent_sccs() {
        let (m, fid, l) = build_reduction();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        let f = m.func(fid);
        let dag = SccDag::new(f, &l, &g);
        // The a[i] load (no carried deps) sits in an Independent SCC.
        let load_scc = dag
            .nodes()
            .iter()
            .find(|n| {
                n.insts
                    .iter()
                    .any(|&i| matches!(f.inst(i), Inst::Load { .. }))
            })
            .expect("load SCC");
        assert_eq!(load_scc.kind, SccKind::Independent);
    }

    #[test]
    fn dag_edges_respect_dependences() {
        let (m, fid, l) = build_reduction();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        let f = m.func(fid);
        let dag = SccDag::new(f, &l, &g);
        // The reduction SCC depends on the load SCC (sum2 = sum + v).
        let load_scc = dag
            .nodes()
            .iter()
            .position(|n| {
                n.insts
                    .iter()
                    .any(|&i| matches!(f.inst(i), Inst::Load { .. }))
            })
            .unwrap();
        let red_scc = dag
            .nodes()
            .iter()
            .position(|n| n.kind == SccKind::Reducible)
            .unwrap();
        assert!(dag.edges().any(|(s, d)| s == load_scc && d == red_scc));
        // Topological order lists the load SCC before the reduction SCC.
        let topo = dag.topo_order();
        let pos = |x: usize| topo.iter().position(|&y| y == x).unwrap();
        assert!(pos(load_scc) < pos(red_scc));
        assert_eq!(topo.len(), dag.nodes().len());
    }

    #[test]
    fn sequential_scc_from_memory_recurrence() {
        // for (i...) { t = *p; *p = t + 1; } with p loop-invariant: the
        // load/store pair forms a carried memory SCC -> Sequential.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("p", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::Void,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let t = b.load(Type::I64, b.arg(0));
        let t2 = b.binop(BinOp::Add, Type::I64, t, Value::const_i64(1));
        b.store(Type::I64, t2, b.arg(0));
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        let dag = SccDag::new(f, &l, &g);
        let seq = dag.sequential_sccs();
        assert!(!seq.is_empty());
        assert!(!dag.is_fully_parallelizable());
        // The sequential SCC contains both the load and the store.
        let node = &dag.nodes()[seq[0]];
        assert!(node
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Load { .. })));
        assert!(node
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Store { .. })));
    }
}
