//! The parallelization planner: NOELLE's composed production optimizer.
//!
//! The auditor (`noelle-lint::run_audit`) answers *which* techniques are
//! legal per loop; the planner answers *which one to run*. For every loop
//! with at least one clean verdict it predicts each technique's speedup
//! from the architecture model (dispatch overhead, queue costs, inter-core
//! latency), the embedded profiles (hotness, average trip counts), and the
//! SCCDAG structure (DOALL chunking, HELIX sequential-segment serial
//! fraction, DSWP stage balance and queue traffic — including nested
//! DOALL-inside-DSWP hybrid estimates). It then picks the best candidate
//! per loop subject to nesting conflicts and emits a deterministic,
//! explainable report; [`apply_plan`] executes the winners through the
//! unified [`LoopTargetOpts`] transform surface.

use std::collections::BTreeSet;

use noelle_core::architecture::Architecture;
use noelle_core::audit::{ModuleAudit, Technique};
use noelle_core::json::Json;
use noelle_core::noelle::Noelle;
use noelle_core::profiler::Profiles;
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, FuncId};
use noelle_lint::{run_audit, run_audit_scoped};
use noelle_transforms::common::{approx_inst_cost, LoopTargetOpts};
use noelle_transforms::{doall, dswp, helix, ParallelReport};

/// Trip count assumed when neither the static analysis nor the profiles
/// know how often the loop iterates.
const DEFAULT_TRIP: f64 = 64.0;

/// Options controlling the planner.
#[derive(Clone, Debug)]
pub struct PlanOptions {
    /// Worker budget per parallelized loop (cores for DOALL/HELIX; DSWP
    /// uses up to four pipeline stages out of this budget).
    pub workers: usize,
    /// Minimum predicted speedup for a loop to be planned at all; below
    /// this the dispatch overhead is not worth paying.
    pub min_speedup: f64,
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            workers: 4,
            min_speedup: 1.05,
        }
    }
}

/// Predicted outcome of a nested DOALL inside a DSWP stage.
#[derive(Clone, Debug)]
pub struct HybridNote {
    /// `function:header` of the inner DOALL-clean loop.
    pub inner: String,
    /// Predicted speedup of the combined DSWP + inner-DOALL pipeline.
    pub predicted_speedup: f64,
}

/// One technique's entry in a loop's candidate table.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The technique.
    pub technique: Technique,
    /// Did the audit mark this technique clean for the loop?
    pub clean: bool,
    /// Predicted loop-level speedup (sequential cycles / parallel cycles);
    /// 0 for blocked techniques.
    pub predicted_speedup: f64,
    /// Workers the prediction assumed (DSWP reports its actual stage count).
    pub workers: usize,
    /// Explanation: the cost-model inputs behind the number, or the blocker
    /// behind the refusal.
    pub detail: String,
    /// Nested DOALL-inside-DSWP estimate, when the loop is a DSWP candidate
    /// containing a DOALL-clean inner loop.
    pub hybrid: Option<HybridNote>,
}

/// The planner's verdict for one loop.
#[derive(Clone, Debug)]
pub struct LoopPlan {
    /// Enclosing function name.
    pub function: String,
    /// Loop header block.
    pub header: BlockId,
    /// Loop header label.
    pub header_name: String,
    /// Share of whole-program work attributed to this loop: profiled
    /// hotness when profiles are embedded, static cost share otherwise.
    pub weight: f64,
    /// Estimated iterations per invocation.
    pub trip: f64,
    /// Estimated per-iteration body cost in cycles.
    pub body_cost: u64,
    /// Per-technique candidate table (all three techniques, always).
    pub candidates: Vec<Candidate>,
    /// The winning technique, if any candidate cleared the bar and no
    /// nesting conflict vetoed it.
    pub chosen: Option<Technique>,
    /// Why the winner won — or why nothing was planned.
    pub reason: String,
}

impl LoopPlan {
    /// The winning candidate's entry.
    pub fn chosen_candidate(&self) -> Option<&Candidate> {
        let t = self.chosen?;
        self.candidates.iter().find(|c| c.technique == t)
    }

    /// Does the audit allow at least one technique on this loop?
    pub fn any_clean(&self) -> bool {
        self.candidates.iter().any(|c| c.clean)
    }

    /// Deterministic JSON rendering of one loop's candidate table (the
    /// per-loop row of [`ModulePlan::to_json`], also pushed as an IDE hint).
    pub fn to_json(&self) -> Json {
        let candidates = self
            .candidates
            .iter()
            .map(|c| {
                let mut pairs = vec![
                    (
                        "technique".to_string(),
                        Json::Str(c.technique.as_str().to_string()),
                    ),
                    ("clean".to_string(), Json::Bool(c.clean)),
                    (
                        "predicted_speedup".to_string(),
                        Json::Float(round4(c.predicted_speedup)),
                    ),
                    ("workers".to_string(), Json::Int(c.workers as i64)),
                    ("detail".to_string(), Json::Str(c.detail.clone())),
                ];
                if let Some(h) = &c.hybrid {
                    pairs.push((
                        "hybrid".to_string(),
                        Json::object([
                            ("inner".to_string(), Json::Str(h.inner.clone())),
                            (
                                "predicted_speedup".to_string(),
                                Json::Float(round4(h.predicted_speedup)),
                            ),
                        ]),
                    ));
                }
                Json::object(pairs)
            })
            .collect();
        Json::object([
            ("function".to_string(), Json::Str(self.function.clone())),
            ("header".to_string(), Json::Str(self.header_name.clone())),
            ("weight".to_string(), Json::Float(round4(self.weight))),
            ("trip".to_string(), Json::Float(round4(self.trip))),
            ("body_cost".to_string(), Json::Int(self.body_cost as i64)),
            ("candidates".to_string(), Json::Array(candidates)),
            (
                "chosen".to_string(),
                match self.chosen {
                    Some(t) => Json::Str(t.as_str().to_string()),
                    None => Json::Null,
                },
            ),
            ("reason".to_string(), Json::Str(self.reason.clone())),
        ])
    }
}

/// A whole-module parallelization plan.
#[derive(Clone, Debug)]
pub struct ModulePlan {
    /// Worker budget the plan was computed for.
    pub workers: usize,
    /// Were embedded profiles available to weigh the loops?
    pub profiled: bool,
    /// Per-loop verdicts, in audit order (function name, header index).
    pub loops: Vec<LoopPlan>,
}

impl ModulePlan {
    /// Number of loops with a chosen technique.
    pub fn planned(&self) -> usize {
        self.loops.iter().filter(|l| l.chosen.is_some()).count()
    }

    /// Amdahl-combined whole-program speedup prediction: each planned
    /// loop's weight shrinks by its predicted speedup, the rest stays.
    pub fn predicted_program_speedup(&self) -> f64 {
        let mut covered = 0.0;
        let mut scaled = 0.0;
        for l in &self.loops {
            if let Some(c) = l.chosen_candidate() {
                if c.predicted_speedup > 0.0 {
                    covered += l.weight;
                    scaled += l.weight / c.predicted_speedup;
                }
            }
        }
        let covered = covered.min(1.0);
        let rest = 1.0 - covered;
        if scaled + rest <= 0.0 {
            return 1.0;
        }
        1.0 / (scaled + rest)
    }

    /// Deterministic JSON rendering (the golden / wire format).
    pub fn to_json(&self) -> Json {
        let loops = self.loops.iter().map(LoopPlan::to_json).collect();
        Json::object([
            (
                "summary".to_string(),
                Json::object([
                    ("loops".to_string(), Json::Int(self.loops.len() as i64)),
                    ("planned".to_string(), Json::Int(self.planned() as i64)),
                    (
                        "predicted_speedup".to_string(),
                        Json::Float(round4(self.predicted_program_speedup())),
                    ),
                    ("workers".to_string(), Json::Int(self.workers as i64)),
                    ("profiled".to_string(), Json::Bool(self.profiled)),
                ]),
            ),
            ("loops".to_string(), Json::Array(loops)),
        ])
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "parallelization plan: {} loop(s), {} planned, workers={}, \
             predicted program speedup {:.2}x{}\n",
            self.loops.len(),
            self.planned(),
            self.workers,
            self.predicted_program_speedup(),
            if self.profiled { "" } else { " (unprofiled)" },
        ));
        for l in &self.loops {
            out.push_str(&format!(
                "loop @{}:{} weight={:.3} trip={:.1} body={}\n",
                l.function, l.header_name, l.weight, l.trip, l.body_cost
            ));
            for c in &l.candidates {
                let marker = if Some(c.technique) == l.chosen {
                    "*"
                } else {
                    " "
                };
                if c.clean {
                    out.push_str(&format!(
                        " {marker} {:<5} {:>6.2}x w={} {}\n",
                        c.technique.as_str(),
                        c.predicted_speedup,
                        c.workers,
                        c.detail
                    ));
                } else {
                    out.push_str(&format!(
                        " {marker} {:<5} blocked: {}\n",
                        c.technique.as_str(),
                        c.detail
                    ));
                }
                if let Some(h) = &c.hybrid {
                    out.push_str(&format!(
                        "     hybrid doall({}) inside dswp: {:.2}x\n",
                        h.inner, h.predicted_speedup
                    ));
                }
            }
            out.push_str(&format!("   -> {}\n", l.reason));
        }
        out
    }
}

fn round4(x: f64) -> f64 {
    (x * 10000.0).round() / 10000.0
}

/// Plan the whole module.
pub fn plan_module(n: &mut Noelle, opts: &PlanOptions) -> ModulePlan {
    let audit = run_audit(n);
    plan_from_audit(n, &audit, opts)
}

/// Plan only loops in `only` functions (incremental frontends).
pub fn plan_scoped(
    n: &mut Noelle,
    only: Option<&BTreeSet<FuncId>>,
    opts: &PlanOptions,
) -> ModulePlan {
    let audit = run_audit_scoped(n, only);
    plan_from_audit(n, &audit, opts)
}

/// Plan against an already-computed audit (shares the feasibility matrix
/// instead of re-deriving it).
pub fn plan_from_audit(n: &mut Noelle, audit: &ModuleAudit, opts: &PlanOptions) -> ModulePlan {
    let arch = n.architecture();
    let profiles = n.profiles();
    let profiled = !profiles.block_counts.is_empty();

    // Pass 1: per-loop candidate tables.
    let mut loops: Vec<(LoopPlan, LoopInfo, FuncId)> = Vec::new();
    for laud in &audit.loops {
        let Some(fid) = n.module().func_id_by_name(&laud.function) else {
            continue;
        };
        let Some(l) = n
            .loops_of(fid)
            .into_iter()
            .find(|l| l.header == laud.header)
        else {
            continue;
        };
        let la = n.loop_abstraction(fid, l.clone());
        let func_loops = n.loops_of(fid);
        let m = n.module();
        let f = m.func(fid);

        let body_cost: u64 = la
            .pdg
            .internal_nodes()
            .map(|i| approx_inst_cost(f.inst(i)))
            .sum::<u64>()
            .max(1);
        let trip = trip_estimate(&profiles, profiled, m, fid, &l, la.trip_count);

        let mut candidates = Vec::new();
        for t in Technique::all() {
            let v = laud.verdict(t);
            if !v.clean {
                let why = v
                    .blockers
                    .first()
                    .map(|b| b.kind.as_str().to_string())
                    .or_else(|| v.reason.clone())
                    .unwrap_or_else(|| "blocked".to_string());
                candidates.push(Candidate {
                    technique: t,
                    clean: false,
                    predicted_speedup: 0.0,
                    workers: 0,
                    detail: why,
                    hybrid: None,
                });
                continue;
            }
            let c = match t {
                Technique::Doall => predict_doall(&arch, opts.workers, trip, body_cost),
                Technique::Helix => {
                    predict_helix(m, fid, &la, &arch, opts.workers, trip, body_cost)
                }
                Technique::Dswp => predict_dswp(
                    m,
                    audit,
                    fid,
                    &laud.function,
                    &l,
                    &la,
                    &func_loops,
                    &arch,
                    opts,
                    trip,
                    body_cost,
                ),
            };
            candidates.push(c);
        }

        let plan = LoopPlan {
            function: laud.function.clone(),
            header: laud.header,
            header_name: laud.header_name.clone(),
            weight: if profiled {
                profiles.loop_hotness(n.module(), fid, &l)
            } else {
                0.0 // filled by the static-share pass below
            },
            trip,
            body_cost,
            candidates,
            chosen: None,
            reason: String::new(),
        };
        loops.push((plan, l, fid));
    }

    // Unprofiled modules: weigh loops by their static cost share so the
    // nesting arbitration and the program-speedup prediction stay defined.
    if !profiled {
        let total: f64 = loops
            .iter()
            .map(|(p, _, _)| p.trip * p.body_cost as f64)
            .sum();
        if total > 0.0 {
            for (p, _, _) in &mut loops {
                p.weight = (p.trip * p.body_cost as f64 / total).min(1.0);
            }
        }
    }

    // Pass 2: pick winners under nesting conflicts. Greedy by saved-time
    // benefit: a loop's plan excludes plans on any loop it contains or is
    // contained by (same function).
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..loops.len()).collect();
        idx.sort_by(|&a, &b| {
            let ba = benefit(&loops[a].0);
            let bb = benefit(&loops[b].0);
            bb.partial_cmp(&ba)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| loops[a].0.function.cmp(&loops[b].0.function))
                .then_with(|| loops[a].0.header.0.cmp(&loops[b].0.header.0))
        });
        idx
    };
    let mut accepted: Vec<usize> = Vec::new();
    for i in order {
        let best = best_candidate(&loops[i].0);
        let (p, l, fid) = &loops[i];
        let Some((t, s)) = best else {
            continue;
        };
        if s < opts.min_speedup {
            continue;
        }
        // Nesting conflict with an already-accepted loop of the same function?
        let conflict = accepted.iter().copied().find(|&j| {
            let (q, lj, fj) = &loops[j];
            fj == fid && q.header != p.header && (lj.contains(p.header) || l.contains(q.header))
        });
        match conflict {
            Some(j) => {
                let (q, _, _) = &loops[j];
                let reason = format!(
                    "skipped: nesting conflict with planned @{}:{} ({} {:.2}x, benefit {:.4} vs {:.4})",
                    q.function,
                    q.header_name,
                    q.chosen.map(|t| t.as_str()).unwrap_or("?"),
                    q.chosen_candidate().map(|c| c.predicted_speedup).unwrap_or(0.0),
                    benefit(q),
                    benefit(&loops[i].0),
                );
                loops[i].0.reason = reason;
            }
            None => {
                let runners: Vec<String> = loops[i]
                    .0
                    .candidates
                    .iter()
                    .filter(|c| c.clean && c.technique != t)
                    .map(|c| format!("{} {:.2}x", c.technique.as_str(), c.predicted_speedup))
                    .collect();
                loops[i].0.chosen = Some(t);
                loops[i].0.reason = if runners.is_empty() {
                    format!(
                        "{} wins: only clean candidate, predicted {s:.2}x",
                        t.as_str()
                    )
                } else {
                    format!(
                        "{} wins: predicted {s:.2}x vs {}",
                        t.as_str(),
                        runners.join(", ")
                    )
                };
                accepted.push(i);
            }
        }
    }
    for (p, _, _) in &mut loops {
        if p.reason.is_empty() {
            p.reason = match best_candidate(p) {
                None => "no clean technique".to_string(),
                Some((t, s)) => format!(
                    "unplanned: best candidate {} predicts {s:.2}x, below the {:.2}x bar",
                    t.as_str(),
                    opts.min_speedup
                ),
            };
        }
    }

    ModulePlan {
        workers: opts.workers,
        profiled,
        loops: loops.into_iter().map(|(p, _, _)| p).collect(),
    }
}

/// Saved-time benefit of a loop's best candidate: weight × (1 − 1/speedup).
fn benefit(p: &LoopPlan) -> f64 {
    match best_candidate(p) {
        Some((_, s)) if s > 1.0 => p.weight * (1.0 - 1.0 / s),
        _ => 0.0,
    }
}

/// Best clean candidate by predicted speedup; ties break in `Technique::all`
/// order (DOALL before HELIX before DSWP — cheaper runtime machinery wins).
fn best_candidate(p: &LoopPlan) -> Option<(Technique, f64)> {
    let mut best: Option<(Technique, f64)> = None;
    for c in &p.candidates {
        if !c.clean || c.predicted_speedup <= 0.0 {
            continue;
        }
        if best.map(|(_, s)| c.predicted_speedup > s).unwrap_or(true) {
            best = Some((c.technique, c.predicted_speedup));
        }
    }
    best
}

fn trip_estimate(
    profiles: &Profiles,
    profiled: bool,
    m: &noelle_ir::module::Module,
    fid: FuncId,
    l: &LoopInfo,
    static_trip: Option<i64>,
) -> f64 {
    if profiled {
        let t = profiles.loop_avg_iterations(m, fid, l);
        if t > 0.0 {
            return t;
        }
    }
    match static_trip {
        Some(t) if t > 0 => t as f64,
        _ => DEFAULT_TRIP,
    }
}

/// DOALL: iterations split cyclically over `workers` cores; one dispatch.
fn predict_doall(arch: &Architecture, workers: usize, trip: f64, body: u64) -> Candidate {
    let w = workers.max(1);
    let seq = trip * body as f64;
    let par = seq / w as f64 + arch.dispatch_overhead as f64;
    let s = if par > 0.0 { seq / par } else { 1.0 };
    Candidate {
        technique: Technique::Doall,
        clean: true,
        predicted_speedup: s,
        workers: w,
        detail: format!(
            "chunked {trip:.0} iterations x {body} cycles over {w} cores + {} dispatch",
            arch.dispatch_overhead
        ),
        hybrid: None,
    }
}

/// HELIX: parallel portion splits over cores, the sequential-segment chain
/// plus one cross-core signal latency serializes per iteration.
#[allow(clippy::too_many_arguments)]
fn predict_helix(
    m: &noelle_ir::module::Module,
    fid: FuncId,
    la: &noelle_core::loop_abs::LoopAbstraction,
    arch: &Architecture,
    workers: usize,
    trip: f64,
    body: u64,
) -> Candidate {
    let w = workers.max(1);
    let seq = trip * body as f64;
    let f = m.func(fid);
    let seg_cost: u64 = helix::sequential_segments(m, fid, la)
        .map(|segs| {
            segs.iter()
                .flat_map(|s| s.iter())
                .map(|&i| approx_inst_cost(f.inst(i)))
                .sum()
        })
        .unwrap_or(0);
    let serial = if seg_cost > 0 {
        seg_cost as f64 + arch.max_latency() as f64
    } else {
        0.0
    };
    let per_iter = (body as f64 / w as f64).max(serial);
    let par = trip * per_iter + arch.dispatch_overhead as f64;
    let s = if par > 0.0 { seq / par } else { 1.0 };
    let serial_fraction = seg_cost as f64 / body as f64;
    Candidate {
        technique: Technique::Helix,
        clean: true,
        predicted_speedup: s,
        workers: w,
        detail: format!(
            "serial fraction {serial_fraction:.2} ({seg_cost} of {body} cycles) + {} signal \
             latency over {w} cores",
            arch.max_latency()
        ),
        hybrid: None,
    }
}

/// DSWP: throughput is bounded by the bottleneck stage (compute + queue
/// traffic + steady-state transfer latency); hybrids additionally DOALL an
/// inner clean loop inside its stage.
#[allow(clippy::too_many_arguments)]
fn predict_dswp(
    m: &noelle_ir::module::Module,
    audit: &ModuleAudit,
    fid: FuncId,
    fname: &str,
    l: &LoopInfo,
    la: &noelle_core::loop_abs::LoopAbstraction,
    func_loops: &[LoopInfo],
    arch: &Architecture,
    opts: &PlanOptions,
    trip: f64,
    body: u64,
) -> Candidate {
    let want = opts.workers.clamp(2, 4);
    let seq = trip * body as f64;
    let ss = match dswp::stage_summary(m, fid, la, want) {
        Ok(ss) => ss,
        Err(e) => {
            // The audit said clean for the default stage count; a different
            // worker budget can still refuse. Report it honestly.
            return Candidate {
                technique: Technique::Dswp,
                clean: true,
                predicted_speedup: 0.0,
                workers: want,
                detail: format!("stage planning refused at {want} stages: {e}"),
                hybrid: None,
            };
        }
    };
    let q = arch.queue_op_cost as f64;
    let lat = arch.max_latency() as f64;
    let stage_cost = |s: usize| ss.stage_costs[s] as f64 + ss.queue_ops[s] as f64 * q + lat;
    let bottleneck = (0..ss.n_stages)
        .map(stage_cost)
        .fold(0.0f64, |a, b| a.max(b));
    let par = trip * bottleneck + arch.dispatch_overhead as f64;
    let s = if par > 0.0 { seq / par } else { 1.0 };

    // Nested DOALL-inside-DSWP hybrid: an inner loop the audit marked
    // DOALL-clean could be chunked within its stage, shrinking that stage by
    // (W-1)/W of the inner body — at the price of one dispatch per outer
    // iteration. Reported as an estimate; the executable plan stays
    // single-technique per loop.
    let hybrid = audit
        .loops
        .iter()
        .filter(|il| il.function == fname && il.header != l.header && l.contains(il.header))
        .filter(|il| il.verdict(Technique::Doall).clean)
        .map(|il| {
            let inner_body: f64 = func_loops
                .iter()
                .find(|x| x.header == il.header)
                .map(|x| {
                    let f = m.func(fid);
                    x.blocks
                        .iter()
                        .flat_map(|&b| f.block(b).insts.iter())
                        .map(|&i| approx_inst_cost(f.inst(i)) as f64)
                        .sum()
                })
                .unwrap_or(0.0);
            let w = opts.workers.max(1) as f64;
            let shrunk =
                (bottleneck - inner_body + inner_body / w + arch.dispatch_overhead as f64).max(1.0);
            let hpar = trip * shrunk.max(bottleneck.min(shrunk)) + arch.dispatch_overhead as f64;
            let hs = if hpar > 0.0 { seq / hpar } else { 1.0 };
            HybridNote {
                inner: format!("{}:{}", il.function, il.header_name),
                predicted_speedup: hs,
            }
        })
        .max_by(|a, b| {
            a.predicted_speedup
                .partial_cmp(&b.predicted_speedup)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

    let balance: Vec<String> = (0..ss.n_stages)
        .map(|s| format!("{:.0}", stage_cost(s)))
        .collect();
    Candidate {
        technique: Technique::Dswp,
        clean: true,
        predicted_speedup: s,
        workers: ss.n_stages,
        detail: format!(
            "{} stages [{}] cycles/iter, {} value queue(s), bottleneck {bottleneck:.0}",
            ss.n_stages,
            balance.join(" "),
            ss.value_queues
        ),
        hybrid,
    }
}

/// Execute the plan: each chosen technique runs pinned to its loop through
/// the unified [`LoopTargetOpts`] surface. Returns the merged report.
pub fn apply_plan(n: &mut Noelle, plan: &ModulePlan) -> ParallelReport {
    let mut merged = ParallelReport::default();
    for l in &plan.loops {
        let Some(c) = l.chosen_candidate() else {
            continue;
        };
        let target = LoopTargetOpts::pinned(&l.function, l.header).with_workers(c.workers);
        let report = match c.technique {
            Technique::Doall => doall::run(n, &doall::DoallOptions { target }),
            Technique::Helix => helix::run(
                n,
                &helix::HelixOptions {
                    target,
                    ..helix::HelixOptions::default()
                },
            ),
            Technique::Dswp => dswp::run(n, &dswp::DswpOptions { target }),
        };
        merged.parallelized.extend(report.parallelized);
        merged.skipped.extend(report.skipped);
    }
    merged
}

/// Spearman rank correlation with average ranks for ties. Returns 1.0 when
/// both sides are constant (perfect trivial agreement), 0.0 when exactly
/// one is.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples");
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let mx = rx.iter().sum::<f64>() / n as f64;
    let my = ry.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = rx[i] - mx;
        let dy = ry[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 && vy == 0.0 {
        return 1.0;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_runtime::{run_module, RunConfig};

    fn noelle_for(name: &str) -> Noelle {
        let w = noelle_workloads::by_name(name).expect("workload exists");
        Noelle::new(w.build(), AliasTier::Full)
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]), 1.0);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        // Ties get average ranks: still monotone overall.
        assert!(spearman(&[1.0, 2.0, 2.0, 4.0], &[1.0, 3.0, 3.0, 9.0]) > 0.99);
    }

    #[test]
    fn plan_is_deterministic_and_explains_winners() {
        let render = || {
            let mut n = noelle_for("blackscholes");
            plan_module(&mut n, &PlanOptions::default())
                .to_json()
                .to_string_pretty()
        };
        let a = render();
        assert_eq!(a, render(), "plan JSON must be byte-identical");
        let mut n = noelle_for("blackscholes");
        let plan = plan_module(&mut n, &PlanOptions::default());
        assert!(plan.planned() >= 1, "{}", plan.render_text());
        for l in &plan.loops {
            assert!(!l.reason.is_empty(), "every loop carries a reason");
            assert_eq!(l.candidates.len(), 3, "all techniques tabled");
        }
    }

    #[test]
    fn applied_plan_preserves_semantics_and_speeds_up() {
        let w = noelle_workloads::by_name("blackscholes").expect("exists");
        let m = w.build();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).expect("runs");
        let mut n = Noelle::new(m, AliasTier::Full);
        let plan = plan_module(&mut n, &PlanOptions::default());
        let report = apply_plan(&mut n, &plan);
        assert_eq!(report.count(), plan.planned(), "{report:?}");
        let m2 = n.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("planned module verifies");
        let par = run_module(&m2, "main", &[], &RunConfig::default()).expect("runs");
        assert_eq!(par.ret_i64(), seq.ret_i64(), "semantics preserved");
        assert!(
            par.cycles < seq.cycles,
            "planned module must be faster: {} vs {}",
            par.cycles,
            seq.cycles
        );
    }

    #[test]
    fn profiles_sharpen_the_plan() {
        let w = noelle_workloads::by_name("swaptions").expect("exists");
        let mut m = w.build();
        let cfg = RunConfig {
            collect_profiles: true,
            ..RunConfig::default()
        };
        let r = run_module(&m, "main", &[], &cfg).expect("runs");
        r.profiles.embed(&mut m);
        let mut n = Noelle::new(m, AliasTier::Full);
        let plan = plan_module(&mut n, &PlanOptions::default());
        assert!(plan.profiled);
        assert!(
            plan.loops.iter().any(|l| l.weight > 0.0),
            "profiled weights populate"
        );
    }

    #[test]
    fn nested_plans_do_not_overlap() {
        for name in ["blackscholes", "ferret", "swaptions", "dedup"] {
            let mut n = noelle_for(name);
            let plan = plan_module(&mut n, &PlanOptions::default());
            let chosen: Vec<&LoopPlan> = plan.loops.iter().filter(|l| l.chosen.is_some()).collect();
            for a in &chosen {
                for b in &chosen {
                    if a.function == b.function && a.header != b.header {
                        // Re-derive containment from scratch.
                        let fid = n.module().func_id_by_name(&a.function).unwrap();
                        let la = n
                            .loops_of(fid)
                            .into_iter()
                            .find(|l| l.header == a.header)
                            .unwrap();
                        assert!(
                            !la.contains(b.header),
                            "{name}: planned loops nest: @{}:{} contains @{}:{}",
                            a.function,
                            a.header_name,
                            b.function,
                            b.header_name
                        );
                    }
                }
            }
        }
    }
}
