//! Benchmarks over the experiment regeneration paths: one measurement per
//! table/figure family, each exercising the same code the `src/bin`
//! printers run (on reduced inputs so the bench stays fast).
//!
//! Plain `std::time` harness (harness = false; the registry is offline, so
//! no criterion): each measurement reports the median of `SAMPLES` runs.

use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_analysis::modref::ModRefSummaries;
use noelle_core::invariants::{invariants_llvm, invariants_noelle};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::loops::LoopForest;
use noelle_pdg::pdg::{memory_dependence_stats, PdgBuilder};
use noelle_runtime::{run_module, RunConfig};
use std::time::Instant;

const SAMPLES: usize = 10;

fn median_micros(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn report(name: &str, micros: f64) {
    println!("{name:<40} {micros:>12.1} us");
}

fn sample() -> noelle_ir::Module {
    noelle_workloads::by_name("streamcluster")
        .expect("exists")
        .build()
}

fn bench_fig3() {
    let m = sample();
    report(
        "fig3_dependence_stats",
        median_micros(|| {
            let basic = BasicAlias::new(&m);
            let andersen = AndersenAlias::new(&m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            std::hint::black_box((
                memory_dependence_stats(&m, &basic),
                memory_dependence_stats(&m, &stack),
            ));
        }),
    );
}

fn bench_fig4() {
    let m = sample();
    report(
        "fig4_invariants_both_algorithms",
        median_micros(|| {
            let modref = ModRefSummaries::compute(&m);
            let basic = BasicAlias::new(&m);
            let builder = PdgBuilder::new(&m, &basic);
            let mut total = 0usize;
            for fid in m.func_ids() {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                for l in LoopForest::new(f, &cfg, &dt).loops() {
                    total += invariants_llvm(&m, fid, l, &dt, &basic, &modref).len();
                    let g = builder.loop_pdg(fid, l);
                    total += invariants_noelle(f, l, &g).len();
                }
            }
            std::hint::black_box(total);
        }),
    );
}

fn bench_fig5_one_benchmark() {
    // One full Figure 5 cell: profile, parallelize with DOALL, re-run.
    report(
        "fig5_doall_blackscholes",
        median_micros(|| {
            let w = noelle_workloads::by_name("blackscholes").expect("exists");
            let mut m = w.build();
            let cfg = RunConfig {
                collect_profiles: true,
                ..RunConfig::default()
            };
            let seq = run_module(&m, "main", &[], &cfg).expect("runs");
            seq.profiles.embed(&mut m);
            let mut noelle = Noelle::new(m, AliasTier::Full);
            noelle_transforms::doall::run(
                &mut noelle,
                &noelle_transforms::doall::DoallOptions {
                    target: noelle_transforms::common::LoopTargetOpts {
                        min_hotness: 0.02,
                        only: None,
                        workers: 4,
                    },
                },
            );
            let m2 = noelle.into_module();
            std::hint::black_box(
                run_module(&m2, "main", &[], &RunConfig::default())
                    .expect("parallel runs")
                    .cycles,
            );
        }),
    );
}

fn bench_simulator() {
    let m = sample();
    report(
        "simulator_sequential_run",
        median_micros(|| {
            std::hint::black_box(
                run_module(&m, "main", &[], &RunConfig::default())
                    .expect("runs")
                    .cycles,
            );
        }),
    );
}

fn main() {
    bench_fig3();
    bench_fig4();
    bench_fig5_one_benchmark();
    bench_simulator();
}
