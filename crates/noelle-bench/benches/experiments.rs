//! Criterion benchmarks over the experiment regeneration paths: one bench
//! per table/figure family, each exercising the same code the `src/bin`
//! printers run (on reduced inputs so `cargo bench` stays fast).

use criterion::{criterion_group, criterion_main, Criterion};
use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_analysis::modref::ModRefSummaries;
use noelle_core::invariants::{invariants_llvm, invariants_noelle};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::loops::LoopForest;
use noelle_pdg::pdg::{memory_dependence_stats, PdgBuilder};
use noelle_runtime::{run_module, RunConfig};

fn sample() -> noelle_ir::Module {
    noelle_workloads::by_name("streamcluster").expect("exists").build()
}

fn bench_fig3(c: &mut Criterion) {
    let m = sample();
    c.bench_function("fig3_dependence_stats", |b| {
        b.iter(|| {
            let basic = BasicAlias::new(&m);
            let andersen = AndersenAlias::new(&m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            (
                memory_dependence_stats(&m, &basic),
                memory_dependence_stats(&m, &stack),
            )
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let m = sample();
    c.bench_function("fig4_invariants_both_algorithms", |b| {
        b.iter(|| {
            let modref = ModRefSummaries::compute(&m);
            let basic = BasicAlias::new(&m);
            let builder = PdgBuilder::new(&m, &basic);
            let mut total = 0usize;
            for fid in m.func_ids() {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                for l in LoopForest::new(f, &cfg, &dt).loops() {
                    total += invariants_llvm(&m, fid, l, &dt, &basic, &modref).len();
                    let g = builder.loop_pdg(fid, l);
                    total += invariants_noelle(f, l, &g).len();
                }
            }
            total
        })
    });
}

fn bench_fig5_one_benchmark(c: &mut Criterion) {
    // One full Figure 5 cell: profile, parallelize with DOALL, re-run.
    c.bench_function("fig5_doall_blackscholes", |b| {
        b.iter(|| {
            let w = noelle_workloads::by_name("blackscholes").expect("exists");
            let mut m = w.build();
            let cfg = RunConfig {
                collect_profiles: true,
                ..RunConfig::default()
            };
            let seq = run_module(&m, "main", &[], &cfg).expect("runs");
            seq.profiles.embed(&mut m);
            let mut noelle = Noelle::new(m, AliasTier::Full);
            noelle_transforms::doall::run(
                &mut noelle,
                &noelle_transforms::doall::DoallOptions {
                    n_tasks: 4,
                    min_hotness: 0.02,
                    only: None,
                },
            );
            let m2 = noelle.into_module();
            run_module(&m2, "main", &[], &RunConfig::default())
                .expect("parallel runs")
                .cycles
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let m = sample();
    c.bench_function("simulator_sequential_run", |b| {
        b.iter(|| run_module(&m, "main", &[], &RunConfig::default()).expect("runs").cycles)
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3, bench_fig4, bench_fig5_one_benchmark, bench_simulator
);
criterion_main!(benches);
