//! Benchmarks of the infrastructure costs: how long each NOELLE abstraction
//! takes to compute over representative workloads. These are the
//! compile-time costs the demand-driven design avoids paying eagerly.
//!
//! Plain `std::time` harness (harness = false; the registry is offline, so
//! no criterion): each measurement reports the median of `SAMPLES` runs.

use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::{DomTree, PostDomTree};
use noelle_ir::loops::LoopForest;
use noelle_pdg::pdg::PdgBuilder;
use noelle_pdg::sccdag::SccDag;
use std::time::Instant;

const SAMPLES: usize = 10;

fn median_micros(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn report(name: &str, micros: f64) {
    println!("{name:<48} {micros:>12.1} us");
}

fn representative() -> Vec<noelle_workloads::Workload> {
    ["blackscholes", "crc32", "ferret"]
        .iter()
        .map(|n| noelle_workloads::by_name(n).expect("exists"))
        .collect()
}

fn bench_alias() {
    for w in representative() {
        let m = w.build();
        report(
            &format!("alias/andersen/{}", w.name),
            median_micros(|| {
                std::hint::black_box(AndersenAlias::new(&m));
            }),
        );
    }
}

fn bench_pdg() {
    for w in representative() {
        let m = w.build();
        {
            let basic = BasicAlias::new(&m);
            let builder = PdgBuilder::new(&m, &basic);
            report(
                &format!("pdg/program_pdg_basic/{}", w.name),
                median_micros(|| {
                    std::hint::black_box(builder.program_pdg());
                }),
            );
        }
        {
            let basic = BasicAlias::new(&m);
            let andersen = AndersenAlias::new(&m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            let builder = PdgBuilder::new(&m, &stack);
            report(
                &format!("pdg/program_pdg_full/{}", w.name),
                median_micros(|| {
                    std::hint::black_box(builder.program_pdg());
                }),
            );
        }
    }
}

fn bench_loop_views() {
    let w = noelle_workloads::by_name("blackscholes").expect("exists");
    let m = w.build();
    let fid = m.func_id_by_name("kernel0").expect("kernel exists");
    let f = m.func(fid);
    report(
        "loop_views/cfg+domtrees",
        median_micros(|| {
            let cfg = Cfg::new(f);
            let dt = DomTree::new(f, &cfg);
            let pdt = PostDomTree::new(f, &cfg);
            std::hint::black_box((dt, pdt));
        }),
    );
    {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        report(
            "loop_views/loop_forest",
            median_micros(|| {
                std::hint::black_box(LoopForest::new(f, &cfg, &dt));
            }),
        );
    }
    {
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let pdg = builder.loop_pdg(fid, &l);
        report(
            "loop_views/sccdag",
            median_micros(|| {
                std::hint::black_box(SccDag::new(f, &l, &pdg));
            }),
        );
    }
}

fn bench_demand_driven() {
    // The paper's design claim: loading the layer is free; abstractions cost
    // only when requested.
    let w = noelle_workloads::by_name("blackscholes").expect("exists");
    report(
        "demand_driven/noelle_load_only",
        median_micros(|| {
            std::hint::black_box(Noelle::new(w.build(), AliasTier::Full));
        }),
    );
    report(
        "demand_driven/noelle_one_loop_abstraction",
        median_micros(|| {
            let mut n = Noelle::new(w.build(), AliasTier::Full);
            let fid = n.module().func_id_by_name("kernel0").expect("exists");
            let l = n.loops_of(fid)[0].clone();
            std::hint::black_box(n.loop_abstraction(fid, l));
        }),
    );
}

fn main() {
    bench_alias();
    bench_pdg();
    bench_loop_views();
    bench_demand_driven();
}
