//! Criterion benchmarks of the infrastructure costs: how long each NOELLE
//! abstraction takes to compute over representative workloads. These are the
//! compile-time costs the demand-driven design avoids paying eagerly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::{DomTree, PostDomTree};
use noelle_ir::loops::LoopForest;
use noelle_pdg::pdg::PdgBuilder;
use noelle_pdg::sccdag::SccDag;

fn representative() -> Vec<noelle_workloads::Workload> {
    ["blackscholes", "crc32", "ferret"]
        .iter()
        .map(|n| noelle_workloads::by_name(n).expect("exists"))
        .collect()
}

fn bench_alias(c: &mut Criterion) {
    let mut g = c.benchmark_group("alias");
    for w in representative() {
        let m = w.build();
        g.bench_with_input(BenchmarkId::new("andersen", w.name), &m, |b, m| {
            b.iter(|| AndersenAlias::new(m))
        });
    }
    g.finish();
}

fn bench_pdg(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdg");
    for w in representative() {
        let m = w.build();
        g.bench_with_input(BenchmarkId::new("program_pdg_basic", w.name), &m, |b, m| {
            let basic = BasicAlias::new(m);
            let builder = PdgBuilder::new(m, &basic);
            b.iter(|| builder.program_pdg())
        });
        g.bench_with_input(BenchmarkId::new("program_pdg_full", w.name), &m, |b, m| {
            let basic = BasicAlias::new(m);
            let andersen = AndersenAlias::new(m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            let builder = PdgBuilder::new(m, &stack);
            b.iter(|| builder.program_pdg())
        });
    }
    g.finish();
}

fn bench_loop_views(c: &mut Criterion) {
    let mut g = c.benchmark_group("loop_views");
    let w = noelle_workloads::by_name("blackscholes").expect("exists");
    let m = w.build();
    let fid = m.func_id_by_name("kernel0").expect("kernel exists");
    let f = m.func(fid);
    g.bench_function("cfg+domtrees", |b| {
        b.iter(|| {
            let cfg = Cfg::new(f);
            let dt = DomTree::new(f, &cfg);
            let pdt = PostDomTree::new(f, &cfg);
            (dt, pdt)
        })
    });
    g.bench_function("loop_forest", |b| {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        b.iter(|| LoopForest::new(f, &cfg, &dt))
    });
    g.bench_function("sccdag", |b| {
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let pdg = builder.loop_pdg(fid, &l);
        b.iter(|| SccDag::new(f, &l, &pdg))
    });
    g.finish();
}

fn bench_demand_driven(c: &mut Criterion) {
    // The paper's design claim: loading the layer is free; abstractions cost
    // only when requested.
    let mut g = c.benchmark_group("demand_driven");
    let w = noelle_workloads::by_name("blackscholes").expect("exists");
    g.bench_function("noelle_load_only", |b| {
        b.iter(|| Noelle::new(w.build(), AliasTier::Full))
    });
    g.bench_function("noelle_one_loop_abstraction", |b| {
        b.iter(|| {
            let mut n = Noelle::new(w.build(), AliasTier::Full);
            let fid = n.module().func_id_by_name("kernel0").expect("exists");
            let l = n.loops_of(fid)[0].clone();
            n.loop_abstraction(fid, l)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alias, bench_pdg, bench_loop_views, bench_demand_driven
);
criterion_main!(benches);
