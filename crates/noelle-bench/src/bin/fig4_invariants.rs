//! Regenerate Figure 4: loop invariants found by Algorithm 1 (LLVM) vs
//! Algorithm 2 (NOELLE).

fn main() {
    let data = noelle_bench::fig4_invariants();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| vec![r.bench.clone(), r.llvm.to_string(), r.noelle.to_string()])
        .collect();
    println!("Figure 4 — loop invariants detected (Algorithm 1 vs Algorithm 2)\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Benchmark", "LLVM (Alg. 1)", "NOELLE (Alg. 2)"], &rows)
    );
    let (l, n) = data
        .iter()
        .fold((0, 0), |(l, n), r| (l + r.llvm, n + r.noelle));
    println!(
        "\nTotals: LLVM {l}, NOELLE {n} — NOELLE detects {:.1}x more",
        n as f64 / l.max(1) as f64
    );
}
