//! Regenerate Table 1: LoC of each NOELLE abstraction (Rust measurements).

fn main() {
    let rows: Vec<Vec<String>> = noelle_bench::table1_loc()
        .iter()
        .map(|r| vec![r.name.to_string(), r.loc.to_string(), r.files.join(", ")])
        .collect();
    let total: usize = noelle_bench::table1_loc().iter().map(|r| r.loc).sum();
    println!("Table 1 — NOELLE-rs abstractions (measured LoC)\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Abstraction", "LoC", "Files"], &rows)
    );
    println!("\nTotal abstraction LoC: {total} (paper reports 26142 C++ LoC)");
}
