//! Regenerate Figure 5: speedups of the NOELLE parallelizers vs the
//! gcc/icc-like conservative baseline, on the PARSEC- and MiBench-like
//! suites.

use noelle_workloads::Suite;

fn main() {
    let cores = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let data = noelle_bench::speedups(&[Suite::Parsec, Suite::MiBench], cores);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            let s = |k: &str| format!("{:.2}x", r.speedups.get(k).copied().unwrap_or(1.0));
            vec![
                r.bench.clone(),
                r.suite.to_string(),
                s("doall"),
                s("helix"),
                s("dswp"),
                s("perspective"),
                s("autopar"),
            ]
        })
        .collect();
    println!("Figure 5 — speedups on {cores} simulated cores (1.00x = no benefit)\n");
    print!(
        "{}",
        noelle_bench::render_table(
            &[
                "Benchmark",
                "Suite",
                "DOALL",
                "HELIX",
                "DSWP",
                "PERS",
                "gcc/icc-like"
            ],
            &rows
        )
    );
    let best_noelle = |r: &noelle_bench::Fig5Row| {
        ["doall", "helix", "dswp", "perspective"]
            .iter()
            .map(|k| r.speedups.get(*k).copied().unwrap_or(1.0))
            .fold(1.0f64, f64::max)
    };
    let wins = data
        .iter()
        .filter(|r| best_noelle(r) > r.speedups.get("autopar").copied().unwrap_or(1.0) + 0.05)
        .count();
    println!(
        "\nNOELLE-based tools beat the conservative baseline on {wins}/{} benchmarks",
        data.len()
    );
}
