//! Daemon warm restart: time from connect to first `pdg` reply for a fresh
//! daemon over an empty store directory vs a restarted daemon over the
//! store the first one populated. Written as JSON to
//! `results/BENCH_warmstart.json`.
//!
//! The restarted daemon re-fingerprints each module, finds every PDG
//! partition and loop forest already in the content-addressed store, and
//! decodes instead of recomputing — so readiness should be dominated by
//! module construction plus byte decode, not dependence analysis.

use noelle_core::json::Json;
use noelle_server::{Client, Server, ServerConfig};
use std::time::Instant;

/// A compilation-scale module: dependence analysis dominates readiness, so
/// the restart ratio measures the store, not module construction.
const WORKLOAD: &str = "workload:scale:3000";

/// Start a daemon over `store_dir`, load the scale module, and pay one
/// `sccdag` query — a small reply that forces the whole-program PDG, so
/// readiness is analysis (cold) or store decode (warm), not serialization.
/// Then shut down. Returns (seconds to readiness, store hits).
fn run_once(store_dir: &str) -> (f64, i64) {
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: Some(store_dir.to_string()),
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let addr = server.addr.to_string();

    let mut c = Client::connect(&addr).expect("connect");
    let t = Instant::now();
    c.call(
        "load",
        Json::object([
            ("path".to_string(), Json::Str(WORKLOAD.to_string())),
            ("session".to_string(), Json::Str("scale".to_string())),
        ]),
    )
    .expect("load");
    c.call(
        "sccdag",
        Json::object([
            ("session".to_string(), Json::Str("scale".to_string())),
            ("func".to_string(), Json::Str("k0".to_string())),
        ]),
    )
    .expect("first sccdag");
    let ready_s = t.elapsed().as_secs_f64();

    let stats = c.call("stats", Json::object([])).expect("stats");
    let hits = stats
        .get("store")
        .and_then(|s| s.get("hits"))
        .and_then(Json::as_i64)
        .expect("store counters present when --store-dir is set");
    c.call("shutdown", Json::object([])).expect("shutdown");
    server.join();
    (ready_s, hits)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("noelle-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("store dir");
    let dir_s = dir.to_str().expect("utf8 temp path");

    // Generation 1: empty store, every artifact computed and published.
    let (cold_s, cold_hits) = run_once(dir_s);
    assert_eq!(cold_hits, 0, "first generation must start cold");

    // Generation 2: same directory, same module content -> same keys.
    let (warm_s, warm_hits) = run_once(dir_s);
    assert!(
        warm_hits > 0,
        "restarted daemon answered without touching the store"
    );

    let speedup = cold_s / warm_s;
    let report = Json::object([
        ("bench".to_string(), Json::Str("warm_restart".into())),
        ("workload".to_string(), Json::Str(WORKLOAD.to_string())),
        ("cold_ready_s".to_string(), Json::Float(cold_s)),
        ("warm_ready_s".to_string(), Json::Float(warm_s)),
        ("store_hits".to_string(), Json::Int(warm_hits)),
        ("speedup".to_string(), Json::Float(speedup)),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_warmstart.json", text + "\n").expect("write report");
    eprintln!(
        "cold {:.3}s -> warm {:.3}s = {:.1}x faster to first reply -> results/BENCH_warmstart.json",
        cold_s, warm_s, speedup
    );
    let _ = std::fs::remove_dir_all(&dir);
}
