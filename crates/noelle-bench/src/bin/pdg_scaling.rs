//! PDG construction scaling: sequential all-pairs vs. parallel bucketed
//! vs. parallel bucketed + alias-query cache.
//!
//! Prints one row per workload (sorted by size) with the three median build
//! times, the speedups over the sequential seed path, and the alias-cache
//! hit rate of the cached run. The acceptance bar for the pipeline is a
//! >= 2x speedup on the largest bundled workload on a multi-core host.

use noelle_analysis::alias::{
    AliasAnalysis, AliasQueryCache, AliasStack, AndersenAlias, BasicAlias, CachedAlias,
};
use noelle_pdg::pdg::PdgBuilder;
use noelle_workloads::{all, pdg_stress};
use std::time::Instant;

const SAMPLES: usize = 5;

fn median_micros(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let mut rows = Vec::new();
    let mut workloads = all();
    workloads.push(pdg_stress());
    workloads.sort_by_key(|w| {
        let m = w.build();
        m.func_ids()
            .map(|fid| m.func(fid).inst_ids().len())
            .sum::<usize>()
    });

    for w in &workloads {
        let m = w.build();
        let insts: usize = m.func_ids().map(|fid| m.func(fid).inst_ids().len()).sum();
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);

        let builder = PdgBuilder::new(&m, &stack);
        let seq = median_micros(|| {
            let _ = builder.program_pdg_allpairs();
        });
        let par = median_micros(|| {
            let _ = builder.program_pdg();
        });

        let cache = AliasQueryCache::new();
        let cached_alias = CachedAlias::new(&stack, &cache);
        let cached_builder = PdgBuilder::new_with_modref(&m, &cached_alias, builder.modref_arc());
        // Warm once so the steady-state (hot-cache) cost is what's measured,
        // matching the Noelle manager's repeated-request pattern.
        let _ = cached_builder.program_pdg();
        let par_cached = median_micros(|| {
            let _ = cached_builder.program_pdg();
        });
        let (hits, misses) = cache.stats();

        rows.push(vec![
            w.name.to_string(),
            insts.to_string(),
            format!("{seq:.1}"),
            format!("{par:.1}"),
            format!("{par_cached:.1}"),
            format!("{:.2}x", seq / par),
            format!("{:.2}x", seq / par_cached),
            format!(
                "{:.1}% ({hits}/{})",
                cache.hit_rate() * 100.0,
                hits + misses
            ),
        ]);
    }

    let table = noelle_bench::render_table(
        &[
            "workload",
            "insts",
            "seq us",
            "par us",
            "par+cache us",
            "par speedup",
            "cached speedup",
            "cache hit rate",
        ],
        &rows,
    );
    println!("{table}");

    if let Some(last) = rows.last() {
        let speedup: f64 = last[6].trim_end_matches('x').parse().unwrap_or(0.0);
        println!(
            "largest workload: {} — parallel+cached speedup {:.2}x over sequential all-pairs",
            last[0], speedup
        );
    }
}
