//! PDG construction scaling: sequential all-pairs vs. parallel bucketed
//! vs. parallel bucketed + alias-query cache.
//!
//! Prints one row per workload (sorted by size) with the three median build
//! times, the speedups over the sequential seed path, and the alias-cache
//! hit rate of the cached run, and writes the same rows as machine-readable
//! JSON to `results/BENCH_pdg.json`. The acceptance bar for the pipeline is
//! a >= 2x speedup on the largest bundled workload on a multi-core host.

use noelle_analysis::alias::{
    AliasAnalysis, AliasQueryCache, AliasStack, AndersenAlias, BasicAlias, CachedAlias,
};
use noelle_core::json::Json;
use noelle_pdg::pdg::PdgBuilder;
use noelle_workloads::{all, pdg_stress};
use std::time::Instant;

const SAMPLES: usize = 5;

struct Row {
    name: String,
    insts: usize,
    edges: usize,
    seq_us: f64,
    par_us: f64,
    par_cached_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

fn median_micros(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let mut workloads = all();
    workloads.push(pdg_stress());
    workloads.sort_by_key(|w| {
        let m = w.build();
        m.func_ids()
            .map(|fid| m.func(fid).inst_ids().len())
            .sum::<usize>()
    });

    for w in &workloads {
        let m = w.build();
        let insts: usize = m.func_ids().map(|fid| m.func(fid).inst_ids().len()).sum();
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);

        let builder = PdgBuilder::new(&m, &stack);
        let seq = median_micros(|| {
            let _ = builder.program_pdg_allpairs();
        });
        let par = median_micros(|| {
            let _ = builder.program_pdg();
        });

        let cache = AliasQueryCache::new();
        let cached_alias = CachedAlias::new(&stack, &cache);
        let cached_builder = PdgBuilder::new_with_modref(&m, &cached_alias, builder.modref_arc());
        // Warm once so the steady-state (hot-cache) cost is what's measured,
        // matching the Noelle manager's repeated-request pattern.
        let warm = cached_builder.program_pdg();
        let edges = warm.num_edges();
        let par_cached = median_micros(|| {
            let _ = cached_builder.program_pdg();
        });
        let (cache_hits, cache_misses) = cache.stats();

        rows.push(Row {
            name: w.name.to_string(),
            insts,
            edges,
            seq_us: seq,
            par_us: par,
            par_cached_us: par_cached,
            cache_hits,
            cache_misses,
            hit_rate: cache.hit_rate(),
        });
    }

    let table = noelle_bench::render_table(
        &[
            "workload",
            "insts",
            "seq us",
            "par us",
            "par+cache us",
            "par speedup",
            "cached speedup",
            "cache hit rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.insts.to_string(),
                    format!("{:.1}", r.seq_us),
                    format!("{:.1}", r.par_us),
                    format!("{:.1}", r.par_cached_us),
                    format!("{:.2}x", r.seq_us / r.par_us),
                    format!("{:.2}x", r.seq_us / r.par_cached_us),
                    format!(
                        "{:.1}% ({}/{})",
                        r.hit_rate * 100.0,
                        r.cache_hits,
                        r.cache_hits + r.cache_misses
                    ),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");

    let report = Json::object([
        ("bench".to_string(), Json::Str("pdg_scaling".into())),
        ("samples".to_string(), Json::Int(SAMPLES as i64)),
        (
            "workloads".to_string(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object([
                            ("name".to_string(), Json::Str(r.name.clone())),
                            ("insts".to_string(), Json::Int(r.insts as i64)),
                            ("edges".to_string(), Json::Int(r.edges as i64)),
                            ("seq_us".to_string(), Json::Float(r.seq_us)),
                            ("par_us".to_string(), Json::Float(r.par_us)),
                            ("par_cached_us".to_string(), Json::Float(r.par_cached_us)),
                            ("par_speedup".to_string(), Json::Float(r.seq_us / r.par_us)),
                            (
                                "cached_speedup".to_string(),
                                Json::Float(r.seq_us / r.par_cached_us),
                            ),
                            ("cache_hits".to_string(), Json::Int(r.cache_hits as i64)),
                            ("cache_misses".to_string(), Json::Int(r.cache_misses as i64)),
                            ("cache_hit_rate".to_string(), Json::Float(r.hit_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_pdg.json", report.to_string_pretty() + "\n")
        .expect("write results/BENCH_pdg.json");

    if let Some(last) = rows.last() {
        println!(
            "largest workload: {} — parallel+cached speedup {:.2}x over sequential all-pairs \
             -> results/BENCH_pdg.json",
            last.name,
            last.seq_us / last.par_cached_us
        );
    }
}
