//! Regenerate Figure 3: fraction of potential memory dependences disproved
//! by the LLVM-like tier vs the full NOELLE alias stack.

fn main() {
    let rows_data = noelle_bench::fig3_dependences();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                r.suite.to_string(),
                r.total.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * r.llvm_disproved as f64 / r.total.max(1) as f64
                ),
                format!(
                    "{:.1}%",
                    100.0 * r.noelle_disproved as f64 / r.total.max(1) as f64
                ),
            ]
        })
        .collect();
    println!("Figure 3 — memory dependences disproved (LLVM tier vs NOELLE stack)\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Benchmark", "Suite", "Pairs", "LLVM", "NOELLE"], &rows)
    );
    let (t, l, n) = rows_data.iter().fold((0, 0, 0), |(t, l, n), r| {
        (t + r.total, l + r.llvm_disproved, n + r.noelle_disproved)
    });
    println!(
        "\nAggregate: LLVM tier disproves {:.1}%, NOELLE stack {:.1}% of {} pairs",
        100.0 * l as f64 / t as f64,
        100.0 * n as f64 / t as f64,
        t
    );
}
