//! IDE repair latency: time from a one-function edit to refreshed
//! diagnostics on the `workload:scale:1000` module, written as JSON to
//! `results/BENCH_ide.json`.
//!
//! Drives an **embedded** daemon (no socket — the edit-to-diagnostics path
//! itself is the unit under test) through the `ide/*` methods: open the
//! 1000-function module once, then repeatedly splice one `fmeta` line
//! inside a single function, alternating between two values so every edit
//! changes that function's content fingerprint. Each `ide/change` reply
//! carries the refreshed diagnostics, so the measured latency is the full
//! keystroke loop: diff → snippet reparse → fingerprint gate →
//! damage-scoped re-lint → damage-closure re-audit → serialized reply.
//! Audit hints ride every reply (the `audit` diagnostics section), so the
//! sub-millisecond budget below is asserted *with* the parallelism auditor
//! in the loop, not against a lint-only path.
//!
//! The baseline is what an editor without the incremental path would pay
//! per keystroke: `ide/close` + `ide/open` (full parse, full lint) on the
//! same text. The report asserts the incremental p95 stays under one
//! millisecond and beats the full reload by at least 10x — the margins the
//! roadmap's IDE milestone promises.

use noelle_core::json::Json;
use noelle_server::protocol::Request;
use noelle_server::server::{run_request_text, Server, ServerConfig};
use std::time::Instant;

const FUNCTIONS: usize = 1000;
const EDITS: usize = 200;
const BODY_EDITS: usize = 20;
const RELOADS: usize = 10;

fn request(id: i64, method: &str, params: Vec<(String, Json)>) -> Request {
    Request {
        id,
        method: method.to_string(),
        params: Json::object(params),
        deadline_ms: None,
        v: None,
    }
}

fn ok_of(reply: &str) -> Json {
    let v = Json::parse(reply).expect("reply is JSON");
    assert!(v.get("error").is_none(), "request failed: {reply}");
    v.get("ok").cloned().expect("ok reply")
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let state = Server::new(ServerConfig::default())
        .embedded()
        .expect("embedded daemon");

    let text = noelle_ir::printer::print_module(&noelle_workloads::scale_module(FUNCTIONS, 42));
    let target = format!("@k{}(", FUNCTIONS / 2);
    // 1-based line of the target function's `define`; the fmeta edit line
    // goes right below it.
    let define_line = text
        .lines()
        .position(|l| l.contains("define") && l.contains(&target))
        .expect("target function printed")
        + 1;
    let edit_line = define_line + 1;

    // The text with the bench's fmeta line already present, as the measured
    // edits leave it (for the close+reopen baseline).
    let text_with_fmeta = |value: &str| -> String {
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.insert(
            edit_line - 1,
            format!("  fmeta \"bench.tick\" = \"{value}\""),
        );
        lines.join("\n")
    };
    let open = |id: i64, doc_text: &str| -> (Json, f64) {
        let req = request(
            id,
            "ide/open",
            vec![
                ("doc".to_string(), Json::Str("bench".to_string())),
                ("text".to_string(), Json::Str(doc_text.to_string())),
            ],
        );
        let t = Instant::now();
        let reply = run_request_text(&state, &req);
        let us = t.elapsed().as_secs_f64() * 1e6;
        (ok_of(&reply), us)
    };

    let (opened, cold_open_us) = open(1, &text);
    assert!(
        opened.get("functions").and_then(Json::as_i64).unwrap_or(0) >= FUNCTIONS as i64,
        "module opened whole"
    );

    // Insert the fmeta line once (unmeasured: this first change grows the
    // function by a line; the measured edits then replace it in place).
    let mut version = 2i64;
    let splice_line = |id: i64, version: i64, start: usize, end: usize, line: &str| -> Request {
        request(
            id,
            "ide/change",
            vec![
                ("doc".to_string(), Json::Str("bench".to_string())),
                ("version".to_string(), Json::Int(version)),
                ("start_line".to_string(), Json::Int(start as i64)),
                ("end_line".to_string(), Json::Int(end as i64)),
                (
                    "lines".to_string(),
                    Json::Array(vec![Json::Str(line.to_string())]),
                ),
            ],
        )
    };
    let splice = |id: i64, version: i64, start: usize, end: usize, value: &str| -> Request {
        splice_line(
            id,
            version,
            start,
            end,
            &format!("  fmeta \"bench.tick\" = \"{value}\""),
        )
    };
    let reply = run_request_text(&state, &splice(2, version, edit_line, edit_line, "warm"));
    assert_eq!(
        ok_of(&reply).get("incremental"),
        Some(&Json::Bool(true)),
        "one-function insert takes the diff-parse path"
    );

    // The measured loop: one-line replacement, alternating values so every
    // edit is a real fingerprint change, never a no-op.
    let mut lat_us: Vec<f64> = Vec::with_capacity(EDITS);
    for i in 0..EDITS {
        version += 1;
        let req = splice(
            version,
            version,
            edit_line,
            edit_line + 1,
            if i % 2 == 0 { "tick" } else { "tock" },
        );
        let t = Instant::now();
        let reply = run_request_text(&state, &req);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
        let ok = ok_of(&reply);
        assert_eq!(ok.get("incremental"), Some(&Json::Bool(true)));
        assert!(
            ok.get("relinted").and_then(Json::as_i64).unwrap_or(0) >= 1,
            "a fingerprint change re-lints its damage set"
        );
        assert!(
            ok.get("diagnostics").and_then(|d| d.get("audit")).is_some(),
            "audit hints ride every keystroke reply"
        );
    }
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50 = percentile(&lat_us, 0.50);
    let p95 = percentile(&lat_us, 0.95);

    // A metadata-only edit provably cannot move an audit verdict (the
    // auditor reads function bodies, never metadata), so the measured loop
    // above must have skipped every re-audit — that skip is what keeps the
    // keystroke sub-millisecond with the auditor riding the reply.
    let stats = ok_of(&run_request_text(&state, &request(90_000, "stats", vec![])));
    let reaudited_meta = stats
        .get("ide")
        .and_then(|i| i.get("reaudited_functions"))
        .and_then(Json::as_i64)
        .unwrap_or(-1);
    assert_eq!(
        reaudited_meta, 0,
        "metadata-only edits skip the re-audit entirely"
    );

    // Body edits move fingerprints the auditor reads: each one re-audits
    // the damage set plus its one-hop call closure — proportional to the
    // edit, never the module. Splice a dead instruction right after the
    // target function's `entry:` label, alternating constants.
    let body_line = edit_line + 2; // define, fmeta, entry:, <here>
    let mut body_us: Vec<f64> = Vec::with_capacity(BODY_EDITS);
    for i in 0..BODY_EDITS {
        version += 1;
        let (start, end) = if i == 0 {
            (body_line, body_line) // first splice inserts the line
        } else {
            (body_line, body_line + 1)
        };
        let c = if i % 2 == 0 { 1 } else { 2 };
        let req = splice_line(
            version,
            version,
            start,
            end,
            &format!("  %bt = add i64 i64 {c}, i64 {c}"),
        );
        let t = Instant::now();
        let reply = run_request_text(&state, &req);
        body_us.push(t.elapsed().as_secs_f64() * 1e6);
        let ok = ok_of(&reply);
        assert_eq!(ok.get("incremental"), Some(&Json::Bool(true)));
        assert!(
            ok.get("diagnostics").and_then(|d| d.get("audit")).is_some(),
            "audit hints ride body-edit replies too"
        );
    }
    body_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let body_p50 = percentile(&body_us, 0.50);
    let body_p95 = percentile(&body_us, 0.95);
    let stats = ok_of(&run_request_text(&state, &request(90_001, "stats", vec![])));
    let reaudited_body = stats
        .get("ide")
        .and_then(|i| i.get("reaudited_functions"))
        .and_then(Json::as_i64)
        .unwrap_or(-1);
    assert!(
        reaudited_body >= BODY_EDITS as i64,
        "every body edit re-audits at least its own function, got {reaudited_body}"
    );
    assert!(
        reaudited_body <= (BODY_EDITS * 64) as i64,
        "re-audit stays proportional to the edit's call closure, not the \
         {FUNCTIONS}-function module, got {reaudited_body}"
    );

    // Baseline: the same edit served by close + reopen + full re-lint.
    let mut reload_us: Vec<f64> = Vec::with_capacity(RELOADS);
    for i in 0..RELOADS {
        let id = 10_000 + 2 * i as i64;
        let close = request(
            id,
            "ide/close",
            vec![("doc".to_string(), Json::Str("bench".to_string()))],
        );
        let edited = text_with_fmeta(if i % 2 == 0 { "tick" } else { "tock" });
        let t = Instant::now();
        ok_of(&run_request_text(&state, &close));
        let _ = open(id + 1, &edited);
        reload_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    reload_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let reload_med = percentile(&reload_us, 0.50);
    let speedup = reload_med / p95;

    let stats = ok_of(&run_request_text(&state, &request(99_999, "stats", vec![])));
    let ide_stats = stats.get("ide").cloned().unwrap_or(Json::Null);

    let report = Json::object([
        ("bench".to_string(), Json::Str("ide_latency".into())),
        (
            "workload".to_string(),
            Json::Str(format!("workload:scale:{FUNCTIONS}")),
        ),
        ("edits".to_string(), Json::Int(EDITS as i64)),
        ("cold_open_us".to_string(), Json::Float(cold_open_us)),
        ("repair_p50_us".to_string(), Json::Float(p50)),
        ("repair_p95_us".to_string(), Json::Float(p95)),
        ("body_repair_p50_us".to_string(), Json::Float(body_p50)),
        ("body_repair_p95_us".to_string(), Json::Float(body_p95)),
        ("reaudited_functions".to_string(), Json::Int(reaudited_body)),
        ("full_reload_us".to_string(), Json::Float(reload_med)),
        ("speedup_vs_full".to_string(), Json::Float(speedup)),
        ("ide".to_string(), ide_stats),
    ]);
    let text_out = report.to_string_pretty();
    println!("{text_out}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_ide.json", text_out + "\n").expect("write report");
    eprintln!(
        "repair p50 {p50:.0}us p95 {p95:.0}us, full reload {reload_med:.0}us ({speedup:.1}x) -> results/BENCH_ide.json"
    );

    assert!(
        p95 < 1000.0,
        "incremental repair p95 must be sub-millisecond, got {p95:.0}us"
    );
    assert!(
        speedup >= 10.0,
        "incremental repair must beat full reload by >=10x, got {speedup:.1}x"
    );
    assert!(
        body_p95 * 2.0 < reload_med,
        "a body edit (re-audit riding) must still beat the full reload by \
         >=2x, got {body_p95:.0}us vs {reload_med:.0}us"
    );
}
