//! Ablation: how much parallelization coverage the alias-analysis tier buys
//! (the DESIGN.md ablation: the PDG's precision is what DOALL spends).

fn main() {
    let cores = 4;
    let (basic, full) = noelle_bench::ablation_alias_tier(cores);
    println!("Ablation — DOALL coverage by alias tier ({cores} cores)\n");
    println!("  loops parallelized with basic (LLVM-like) tier : {basic}");
    println!("  loops parallelized with full NOELLE stack      : {full}");
    println!("\nThe full stack must parallelize at least as many loops; the gap is");
    println!("the parallelism purchased by points-to precision (Fig. 3 -> Fig. 5).");
}
