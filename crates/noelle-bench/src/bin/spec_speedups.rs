//! Regenerate §4.4's SPEC observation: only the NOELLE-based tools obtain
//! speedups, and they are small (1–5%) because those programs are dominated
//! by sequential chains.

use noelle_workloads::Suite;

fn main() {
    let cores = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let data = noelle_bench::speedups(&[Suite::Spec], cores);
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            let best = ["doall", "helix", "dswp", "perspective"]
                .iter()
                .map(|k| r.speedups.get(*k).copied().unwrap_or(1.0))
                .fold(1.0f64, f64::max);
            vec![
                r.bench.clone(),
                format!("{:.1}%", 100.0 * (best - 1.0)),
                format!(
                    "{:.1}%",
                    100.0 * (r.speedups.get("autopar").copied().unwrap_or(1.0) - 1.0)
                ),
            ]
        })
        .collect();
    println!("§4.4 — SPEC-like suite: best NOELLE speedup vs conservative baseline\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Benchmark", "NOELLE best", "gcc/icc-like"], &rows)
    );
}
