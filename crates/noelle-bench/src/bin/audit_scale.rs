//! Parallelism-auditor throughput: a cold full-module audit of the
//! `workload:scale:1000` module (1000 functions, one loop each), written as
//! JSON to `results/BENCH_audit.json`.
//!
//! The auditor's verdicts come from the transforms' own precheck gates, not
//! from cloning the module and running each transform — that design choice
//! is what this bench holds to account: a whole-module audit (every loop ×
//! DOALL/HELIX/DSWP, with interprocedural blocker attribution) must fit in
//! a sub-second budget, cold, including the Andersen solve it leans on.
//! The warm number shows what an already-analyzed session (daemon, IDE)
//! pays for a re-audit.

use noelle_core::json::Json;
use noelle_core::noelle::{AliasTier, Noelle};
use std::time::Instant;

const FUNCTIONS: usize = 1000;
const WARM_RUNS: usize = 5;

fn main() {
    let m = noelle_workloads::scale_module(FUNCTIONS, 42);

    // Cold: manager construction + every analysis the audit demands.
    let t = Instant::now();
    let mut n = Noelle::new(m, AliasTier::Full);
    let audit = noelle_lint::run_audit(&mut n);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    let loops = audit.loops.len();
    let parallelizable = audit.parallelizable();
    let blockers = audit.num_blockers();
    // Kernels carry the loops; group callers and main are straight-line.
    assert!(
        loops >= FUNCTIONS / 2,
        "the scale module audits a loop for most kernels, got {loops}"
    );

    // Warm: the analyses are cached; re-audit pays classification only.
    let mut warm_ms = f64::MAX;
    for _ in 0..WARM_RUNS {
        let t = Instant::now();
        let again = noelle_lint::run_audit(&mut n);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            again.to_json().to_string_pretty(),
            audit.to_json().to_string_pretty(),
            "re-audit is deterministic"
        );
    }

    // The NL01xx lowering rides the same budget.
    let t = Instant::now();
    let findings = noelle_lint::audit_findings(n.module(), &audit);
    let findings_ms = t.elapsed().as_secs_f64() * 1e3;

    let report = Json::object([
        ("bench".to_string(), Json::Str("audit_scale".into())),
        (
            "workload".to_string(),
            Json::Str(format!("workload:scale:{FUNCTIONS}")),
        ),
        ("loops".to_string(), Json::Int(loops as i64)),
        (
            "parallelizable".to_string(),
            Json::Int(parallelizable as i64),
        ),
        ("blockers".to_string(), Json::Int(blockers as i64)),
        ("findings".to_string(), Json::Int(findings.len() as i64)),
        ("cold_audit_ms".to_string(), Json::Float(cold_ms)),
        ("warm_audit_ms".to_string(), Json::Float(warm_ms)),
        ("findings_ms".to_string(), Json::Float(findings_ms)),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_audit.json", text + "\n").expect("write report");
    eprintln!(
        "cold audit {cold_ms:.0}ms, warm {warm_ms:.1}ms over {loops} loops -> results/BENCH_audit.json"
    );

    assert!(
        cold_ms < 1000.0,
        "full-module audit must stay sub-second, got {cold_ms:.0}ms"
    );
}
