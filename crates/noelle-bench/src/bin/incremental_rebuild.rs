//! Incremental invalidation speedup: edit 1 of N functions of the
//! `pdg_stress` workload and compare repairing the warm manager's PDG
//! against a from-scratch build, written as JSON to
//! `results/BENCH_incremental.json`.
//!
//! The bench also verifies correctness in-line: every incrementally
//! repaired PDG must be byte-identical on the wire to the from-scratch
//! build of the same module — a speedup over a wrong graph is worthless.

use noelle_core::json::Json;
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_core::wire;
use noelle_workloads::pdg_stress;
use std::time::Instant;

const ITERS: usize = 5;

fn median_us(mut xs: Vec<i64>) -> i64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn pdg_wire(n: &mut Noelle) -> String {
    let pdg = n.pdg();
    wire::pdg_to_json(n.module(), &pdg).to_string_compact()
}

fn main() {
    let m = pdg_stress().build();
    let n_funcs = m.functions().iter().filter(|f| !f.is_declaration()).count();
    // Edit target: the smallest defined function that is not `main`, the
    // "one line changed in one file" of an incremental compiler.
    let mut warm = Noelle::new(m.clone(), AliasTier::Full);
    let target = warm
        .module()
        .func_ids()
        .filter(|fid| {
            let f = warm.module().func(*fid);
            !f.is_declaration() && f.name != "main"
        })
        .min_by_key(|fid| warm.module().func(*fid).inst_ids().len())
        .expect("stress workload has kernels");
    let target_name = warm.module().func(target).name.clone();

    // Cold build, outside the measured window. Wire encoding (for the
    // identity checks below) is also kept out of every timed window: both
    // sides would pay the same serialization cost, diluting the ratio
    // that matters — analysis repaired vs analysis redone.
    let cold = Instant::now();
    let _ = warm.pdg();
    let cold_us = cold.elapsed().as_micros() as i64;
    let baseline_wire = pdg_wire(&mut warm);

    let mut fresh_us = Vec::with_capacity(ITERS);
    let mut incremental_us = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        // Incremental: touch the one function, repair the PDG.
        let t = Instant::now();
        warm.edit(|tx| {
            tx.touch(target);
        });
        let _ = warm.pdg();
        incremental_us.push(t.elapsed().as_micros() as i64);

        // From scratch: a brand-new manager over the same module.
        let module = warm.module().clone();
        let t = Instant::now();
        let mut scratch = Noelle::new(module, AliasTier::Full);
        let _ = scratch.pdg();
        fresh_us.push(t.elapsed().as_micros() as i64);

        let inc_wire = pdg_wire(&mut warm);
        let scratch_wire = pdg_wire(&mut scratch);
        assert_eq!(
            inc_wire, scratch_wire,
            "incremental repair diverged from a from-scratch build"
        );
        assert_eq!(inc_wire, baseline_wire, "a pure touch must not move edges");
    }

    let fresh = median_us(fresh_us.clone());
    let incremental = median_us(incremental_us.clone());
    let speedup = fresh as f64 / (incremental.max(1)) as f64;
    let counters = warm.func_cache_counters();

    let report = Json::object([
        ("bench".to_string(), Json::Str("incremental_rebuild".into())),
        ("workload".to_string(), Json::Str("pdg_stress".into())),
        ("functions".to_string(), Json::Int(n_funcs as i64)),
        (
            "edited_function".to_string(),
            Json::Str(target_name.clone()),
        ),
        ("iters".to_string(), Json::Int(ITERS as i64)),
        ("cold_build_us".to_string(), Json::Int(cold_us)),
        ("fresh_rebuild_us".to_string(), Json::Int(fresh)),
        ("incremental_repair_us".to_string(), Json::Int(incremental)),
        ("speedup".to_string(), Json::Float(speedup)),
        (
            "pdg_cache".to_string(),
            Json::object([
                ("hits".to_string(), Json::Int(counters.pdg_hits as i64)),
                ("misses".to_string(), Json::Int(counters.pdg_misses as i64)),
                (
                    "invalidations".to_string(),
                    Json::Int(counters.invalidations as i64),
                ),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_incremental.json", text + "\n").expect("write report");
    eprintln!(
        "edit @{target_name} (1 of {n_funcs} functions): repair {incremental}us vs rebuild \
         {fresh}us = {speedup:.1}x -> results/BENCH_incremental.json"
    );
    assert!(
        speedup >= 5.0,
        "incremental repair must be at least 5x faster than a from-scratch build (got {speedup:.1}x)"
    );
}
