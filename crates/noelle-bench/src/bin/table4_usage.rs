//! Regenerate Table 4: abstractions requested by each custom tool, recorded
//! live by the demand-driven manager.

fn main() {
    const COLS: [&str; 18] = [
        "PDG", "aSCCDAG", "CG", "ENV", "T", "DFE", "PRO", "SCD", "L", "LB", "IV", "IVS", "INV",
        "FR", "ISL", "RD", "AR", "LS",
    ];
    let usage = noelle_bench::table4_usage();
    let mut rows = Vec::new();
    for (tool, used) in &usage {
        let mut row = vec![tool.to_string()];
        for c in COLS {
            row.push(if used.contains(&c) {
                "x".into()
            } else {
                "".into()
            });
        }
        rows.push(row);
    }
    let mut headers = vec!["Tool"];
    headers.extend(COLS);
    println!("Table 4 — abstractions requested per custom tool (live-recorded)\n");
    print!("{}", noelle_bench::render_table(&headers, &rows));
    // The paper's observation: every abstraction serves several tools.
    for c in COLS {
        let n = usage.iter().filter(|(_, used)| used.contains(&c)).count();
        if n >= 2 {
            continue;
        }
        println!("note: abstraction {c} used by only {n} tool(s) in this run");
    }
}
