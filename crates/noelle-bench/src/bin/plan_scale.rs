//! Parallelization-planner throughput and prediction quality, written as
//! JSON to `results/BENCH_plan.json`.
//!
//! Two claims are held to account. **Scale**: a cold full-module plan of
//! the `workload:scale:1000` module (audit + cost model over every loop ×
//! DOALL/HELIX/DSWP) must fit in a small multiple of the audit budget,
//! and re-planning must be byte-identical (the determinism the golden
//! reports and `--check-plan` rest on). **Quality**: across the 42-workload
//! suite, the cost model's predicted program speedups must rank-correlate
//! (Spearman) with what the simulated machine actually measures after
//! `apply_plan` — ordering workloads correctly is the planner's whole job.

use noelle_core::json::Json;
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_plan::{apply_plan, plan_module, spearman, PlanOptions};
use noelle_runtime::{run_module, RunConfig};
use std::time::Instant;

const FUNCTIONS: usize = 1000;
const WARM_RUNS: usize = 3;

fn main() {
    let m = noelle_workloads::scale_module(FUNCTIONS, 42);
    let opts = PlanOptions::default();

    // Cold: manager construction + audit + cost model over every loop.
    let t = Instant::now();
    let mut n = Noelle::new(m, AliasTier::Full);
    let plan = plan_module(&mut n, &opts);
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    let loops = plan.loops.len();
    let planned = plan.planned();
    assert!(
        loops >= FUNCTIONS / 2,
        "the scale module plans a loop for most kernels, got {loops}"
    );
    let first = plan.to_json().to_string_pretty();

    // Warm: analyses cached; re-planning pays classification + arithmetic,
    // and must reproduce the report byte-for-byte.
    let mut warm_ms = f64::MAX;
    for _ in 0..WARM_RUNS {
        let t = Instant::now();
        let again = plan_module(&mut n, &opts);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            again.to_json().to_string_pretty(),
            first,
            "re-plan is deterministic"
        );
    }

    // Prediction quality over the whole workload suite: predicted program
    // speedup vs the simulated machine's measured speedup after apply_plan.
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    for w in noelle_workloads::all()
        .into_iter()
        .chain(std::iter::once(noelle_workloads::pdg_stress()))
    {
        let m = w.build();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).expect("workload runs");
        let mut n = Noelle::new(m, AliasTier::Full);
        let plan = plan_module(&mut n, &opts);
        apply_plan(&mut n, &plan);
        let par = run_module(&n.into_module(), "main", &[], &RunConfig::default())
            .expect("planned module runs");
        assert_eq!(par.ret_i64(), seq.ret_i64(), "{}: semantics", w.name);
        predicted.push(plan.predicted_program_speedup());
        measured.push(seq.cycles as f64 / par.cycles as f64);
    }
    let rho = spearman(&predicted, &measured);

    let report = Json::object([
        ("bench".to_string(), Json::Str("plan_scale".into())),
        (
            "workload".to_string(),
            Json::Str(format!("workload:scale:{FUNCTIONS}")),
        ),
        ("loops".to_string(), Json::Int(loops as i64)),
        ("planned".to_string(), Json::Int(planned as i64)),
        ("cold_plan_ms".to_string(), Json::Float(cold_ms)),
        ("warm_plan_ms".to_string(), Json::Float(warm_ms)),
        (
            "suite_workloads".to_string(),
            Json::Int(predicted.len() as i64),
        ),
        ("rank_correlation".to_string(), Json::Float(rho)),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_plan.json", text + "\n").expect("write report");
    eprintln!(
        "cold plan {cold_ms:.0}ms, warm {warm_ms:.1}ms over {loops} loops, \
         rank correlation {rho:.3} -> results/BENCH_plan.json"
    );

    assert!(
        cold_ms < 2000.0,
        "full-module plan must stay under 2s, got {cold_ms:.0}ms"
    );
    assert!(
        rho >= 0.7,
        "prediction rank correlation must stay >= 0.7, got {rho:.3}"
    );
}
