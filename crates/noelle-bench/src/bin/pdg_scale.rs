//! Raw-speed scaling: PDG + Andersen build cost on synthetic modules of
//! thousands of functions, written as JSON to `results/BENCH_scale.json`.
//!
//! The 41-benchmark corpus mirrors the paper and tops out at tens of
//! functions; this bench exists for the other regime — the 10k+-function
//! modules the CSR adjacency, interned symbols, and SCC-sharded worklist
//! solver were built for. The baseline is the seed data layout preserved
//! verbatim in `program_pdg_seed_layout` (sequential all-pairs over
//! adjacency-map graphs, two alias queries per pair, no alias cache),
//! measured on a small module and extrapolated linearly per function — a
//! floor on its true cost, since all-pairs grows superlinearly. The
//! production path (parallel bucketed build over the frozen CSR form,
//! cached alias stack, sharded Andersen) must beat that extrapolation by
//! >= 3x on the largest size run.
//!
//! Usage: `pdg_scale [--funcs N[,N..]] [--baseline-funcs N] [--time-budget-ms N]`

use noelle_analysis::alias::{
    AliasAnalysis, AliasQueryCache, AliasStack, AndersenAlias, BasicAlias, CachedAlias,
};
use noelle_core::json::Json;
use noelle_pdg::pdg::PdgBuilder;
use noelle_workloads::scale_module;
use std::time::Instant;

const SEED: u64 = 42;

struct SizeReport {
    funcs: usize,
    insts: usize,
    build_module_us: i64,
    andersen_us: i64,
    modref_us: i64,
    pdg_us: i64,
    edges: usize,
    pdg_bytes: usize,
    andersen_bytes: usize,
    bytes_per_function: i64,
    extrapolated_allpairs_us: i64,
    speedup_extrapolated: f64,
}

fn us(t: Instant) -> i64 {
    t.elapsed().as_micros() as i64
}

/// Sequential seed-path cost per function, measured on a small module.
fn baseline_us_per_func(funcs: usize) -> f64 {
    let m = scale_module(funcs, SEED);
    let t = Instant::now();
    let basic = BasicAlias::new(&m);
    let andersen = AndersenAlias::new(&m);
    let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
    let builder = PdgBuilder::new(&m, &stack);
    let _ = builder.program_pdg_seed_layout();
    us(t) as f64 / funcs as f64
}

fn measure(funcs: usize, us_per_func: f64) -> SizeReport {
    let t = Instant::now();
    let m = scale_module(funcs, SEED);
    let build_module_us = us(t);
    let insts: usize = m.func_ids().map(|fid| m.func(fid).inst_ids().len()).sum();

    let basic = BasicAlias::new(&m);
    let t = Instant::now();
    let andersen = AndersenAlias::new(&m);
    let andersen_us = us(t);
    let andersen_bytes = andersen.approx_heap_bytes();
    let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);

    let t = Instant::now();
    let builder = PdgBuilder::new(&m, &stack);
    let modref_us = us(t);

    let cache = AliasQueryCache::new();
    let cached = CachedAlias::new(&stack, &cache);
    let cached_builder = PdgBuilder::new_with_modref(&m, &cached, builder.modref_arc());
    let t = Instant::now();
    let pdg = cached_builder.program_pdg();
    let pdg_us = us(t);

    let pdg_bytes = pdg.approx_heap_bytes();
    let bytes_per_function = ((pdg_bytes + andersen_bytes) / funcs) as i64;
    let extrapolated_allpairs_us = (us_per_func * funcs as f64) as i64;
    let speedup_extrapolated =
        extrapolated_allpairs_us as f64 / (andersen_us + pdg_us).max(1) as f64;

    SizeReport {
        funcs,
        insts,
        build_module_us,
        andersen_us,
        modref_us,
        pdg_us,
        edges: pdg.num_edges(),
        pdg_bytes,
        andersen_bytes,
        bytes_per_function,
        extrapolated_allpairs_us,
        speedup_extrapolated,
    }
}

fn main() {
    let mut sizes = vec![1000, 5000, 10_000];
    let mut baseline_funcs = 500usize;
    let mut budget_ms: Option<u128> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--funcs" => {
                sizes = val(i)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--funcs takes integers"))
                    .collect();
                i += 2;
            }
            "--baseline-funcs" => {
                baseline_funcs = val(i).parse().expect("--baseline-funcs takes an integer");
                i += 2;
            }
            "--time-budget-ms" => {
                budget_ms = Some(val(i).parse().expect("--time-budget-ms takes an integer"));
                i += 2;
            }
            other => panic!("unknown argument '{other}'"),
        }
    }
    sizes.sort_unstable();

    let started = Instant::now();
    let us_per_func = baseline_us_per_func(baseline_funcs);
    eprintln!(
        "baseline: sequential all-pairs on {baseline_funcs} functions = {:.1} us/function",
        us_per_func
    );

    let mut reports = Vec::new();
    let mut skipped = Vec::new();
    for &n in &sizes {
        if let Some(budget) = budget_ms {
            if started.elapsed().as_millis() > budget {
                skipped.push(n);
                continue;
            }
        }
        let r = measure(n, us_per_func);
        eprintln!(
            "{} functions: module {}us, andersen {}us, modref {}us, pdg {}us, {} edges, \
             {} B/function, {:.1}x vs extrapolated all-pairs",
            r.funcs,
            r.build_module_us,
            r.andersen_us,
            r.modref_us,
            r.pdg_us,
            r.edges,
            r.bytes_per_function,
            r.speedup_extrapolated
        );
        reports.push(r);
    }
    if !skipped.is_empty() {
        eprintln!("time budget exhausted; skipped sizes: {skipped:?}");
    }
    assert!(!reports.is_empty(), "time budget too small to run any size");

    let report = Json::object([
        ("bench".to_string(), Json::Str("pdg_scale".into())),
        ("seed".to_string(), Json::Int(SEED as i64)),
        (
            "baseline".to_string(),
            Json::object([
                ("funcs".to_string(), Json::Int(baseline_funcs as i64)),
                (
                    "path".to_string(),
                    Json::Str("program_pdg_seed_layout".into()),
                ),
                ("us_per_func".to_string(), Json::Float(us_per_func)),
            ]),
        ),
        (
            "sizes".to_string(),
            Json::Array(
                reports
                    .iter()
                    .map(|r| {
                        Json::object([
                            ("funcs".to_string(), Json::Int(r.funcs as i64)),
                            ("insts".to_string(), Json::Int(r.insts as i64)),
                            ("build_module_us".to_string(), Json::Int(r.build_module_us)),
                            ("andersen_us".to_string(), Json::Int(r.andersen_us)),
                            ("modref_us".to_string(), Json::Int(r.modref_us)),
                            ("pdg_us".to_string(), Json::Int(r.pdg_us)),
                            ("edges".to_string(), Json::Int(r.edges as i64)),
                            ("pdg_bytes".to_string(), Json::Int(r.pdg_bytes as i64)),
                            (
                                "andersen_bytes".to_string(),
                                Json::Int(r.andersen_bytes as i64),
                            ),
                            (
                                "bytes_per_function".to_string(),
                                Json::Int(r.bytes_per_function),
                            ),
                            (
                                "extrapolated_allpairs_us".to_string(),
                                Json::Int(r.extrapolated_allpairs_us),
                            ),
                            (
                                "speedup_extrapolated".to_string(),
                                Json::Float(r.speedup_extrapolated),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_scale.json", text + "\n").expect("write report");

    let largest = reports.last().expect("at least one size ran");
    eprintln!(
        "largest size {} functions: {:.1}x vs extrapolated all-pairs -> results/BENCH_scale.json",
        largest.funcs, largest.speedup_extrapolated
    );
    assert!(
        largest.speedup_extrapolated >= 3.0,
        "CSR + sharded-solver path must be >= 3x the extrapolated all-pairs seed cost \
         (got {:.1}x on {} functions)",
        largest.speedup_extrapolated,
        largest.funcs
    );
}
