//! Daemon throughput: requests/sec and tail latency of `noelle-served`
//! under concurrent clients, written as JSON to `results/BENCH_server.json`
//! (the seed of the server performance trajectory).
//!
//! Starts an in-process daemon on an ephemeral port, loads one session per
//! workload, pays the cold PDG build once, then hammers the warm cache
//! from `CLIENTS` threads with a `pdg`/`loops`/`sccdag`/`stats` mix —
//! the steady state a resident analysis service actually runs in.

use noelle_core::json::Json;
use noelle_server::{Client, Server, ServerConfig};
use std::time::Instant;

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 100;
const PIPELINED_REQUESTS: usize = 320;
/// In-flight window, kept under the server's per-connection admission
/// depth so nothing is shed.
const PIPELINE_WINDOW: usize = 64;
const WORKLOADS: [&str; 3] = ["blackscholes", "swaptions", "crc32"];

/// The warm request mix used by every phase.
fn send_mixed(c: &mut Client, i: usize) -> std::io::Result<i64> {
    let w = WORKLOADS[i % WORKLOADS.len()];
    let sess = Json::object([("session".to_string(), Json::Str(w.to_string()))]);
    match i % 4 {
        0 | 1 => c.send("pdg", sess),
        2 => c.send("loops", sess),
        _ => c.send("stats", Json::object([])),
    }
}

fn main() {
    let server = Server::new(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        ..ServerConfig::default()
    })
    .start()
    .expect("bind ephemeral port");
    let addr = server.addr.to_string();

    let mut c = Client::connect(&addr).expect("connect");
    let cold_start = Instant::now();
    for w in WORKLOADS {
        c.call(
            "load",
            Json::object([
                ("path".to_string(), Json::Str(format!("workload:{w}"))),
                ("session".to_string(), Json::Str(w.to_string())),
            ]),
        )
        .expect("load");
        // Pay every cold build up front so the measured window is warm.
        c.call(
            "pdg",
            Json::object([("session".to_string(), Json::Str(w.to_string()))]),
        )
        .expect("cold pdg");
    }
    let cold_us = cold_start.elapsed().as_micros() as i64;

    let t = Instant::now();
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    let w = WORKLOADS[(client_id + i) % WORKLOADS.len()];
                    let sess = Json::object([("session".to_string(), Json::Str(w.to_string()))]);
                    // Raw-text calls: the bench measures the daemon, so the
                    // client checks the envelope without parsing payloads.
                    let r = match i % 4 {
                        0 | 1 => c.call_text("pdg", sess),
                        2 => c.call_text("loops", sess),
                        _ => c.call_text("stats", Json::object([])),
                    };
                    r.expect("warm request succeeds");
                }
            });
        }
    });
    let wall_s = t.elapsed().as_secs_f64();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;

    // Single-connection phases: the same warm mix, first one request at a
    // time, then pipelined — a window of requests in flight on one socket,
    // replies read back strictly in request order.
    let mut p = Client::connect(&addr).expect("connect");
    let t = Instant::now();
    for i in 0..PIPELINED_REQUESTS {
        send_mixed(&mut p, i).expect("send");
        p.recv_text().expect("sequential reply");
    }
    let sequential_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut next = 0;
    while next < PIPELINED_REQUESTS {
        let batch = PIPELINE_WINDOW.min(PIPELINED_REQUESTS - next);
        let mut ids = Vec::with_capacity(batch);
        for i in next..next + batch {
            ids.push(send_mixed(&mut p, i).expect("send"));
        }
        for id in ids {
            let reply = p.recv_text().expect("pipelined reply");
            assert!(
                reply.starts_with(&format!("{{\"id\":{id},\"ok\":")),
                "replies must come back in request order: {reply}"
            );
        }
        next += batch;
    }
    let pipelined_s = t.elapsed().as_secs_f64();
    let single = PIPELINED_REQUESTS as f64;

    let metrics = c.call("metrics", Json::object([])).expect("metrics");
    c.call("shutdown", Json::object([])).expect("shutdown");
    server.join();

    let report = Json::object([
        ("bench".to_string(), Json::Str("server_throughput".into())),
        ("clients".to_string(), Json::Int(CLIENTS as i64)),
        (
            "requests".to_string(),
            Json::Int((CLIENTS * REQUESTS_PER_CLIENT) as i64),
        ),
        ("cold_load_us".to_string(), Json::Int(cold_us)),
        ("wall_s".to_string(), Json::Float(wall_s)),
        ("requests_per_sec".to_string(), Json::Float(total / wall_s)),
        (
            "single_connection".to_string(),
            Json::object([
                ("requests".to_string(), Json::Int(PIPELINED_REQUESTS as i64)),
                (
                    "sequential_req_per_sec".to_string(),
                    Json::Float(single / sequential_s),
                ),
                (
                    "pipelined_req_per_sec".to_string(),
                    Json::Float(single / pipelined_s),
                ),
                (
                    "pipeline_window".to_string(),
                    Json::Int(PIPELINE_WINDOW as i64),
                ),
                (
                    "pipeline_speedup".to_string(),
                    Json::Float(sequential_s / pipelined_s),
                ),
            ]),
        ),
        (
            "methods".to_string(),
            metrics.get("requests").cloned().unwrap_or(Json::Null),
        ),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_server.json", text + "\n").expect("write report");
    eprintln!(
        "{} requests in {:.3}s = {:.0} req/s; 1-conn pipelined {:.0} vs sequential {:.0} req/s -> results/BENCH_server.json",
        total,
        wall_s,
        total / wall_s,
        single / pipelined_s,
        single / sequential_s
    );
}
