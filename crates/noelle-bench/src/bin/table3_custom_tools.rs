//! Regenerate Table 3: custom tool sizes — the paper's headline LoC
//! reduction claim, with our measured NOELLE-based sizes alongside.

fn main() {
    let rows: Vec<Vec<String>> = noelle_bench::table3_loc()
        .iter()
        .map(|r| {
            vec![
                r.tool.to_string(),
                r.paper_llvm.to_string(),
                r.paper_noelle.to_string(),
                format!("{:.1}%", 100.0 * r.paper_reduction()),
                r.ours.to_string(),
            ]
        })
        .collect();
    println!("Table 3 — custom tools: paper LoC vs our measured NOELLE-rs LoC\n");
    print!(
        "{}",
        noelle_bench::render_table(
            &[
                "Tool",
                "paper LLVM",
                "paper +NOELLE",
                "paper reduction",
                "ours (+NOELLE-rs)"
            ],
            &rows
        )
    );
    println!("\nEvery NOELLE-based tool stays in the same few-hundred-line band the paper");
    println!("reports (PERS excepted, as in the paper), far below its LLVM-only size.");
}
