//! Regenerate §4.5: binary-size reduction from dead-function elimination
//! (paper: 6.3% average across the 41 benchmarks).

fn main() {
    let data = noelle_bench::binary_size();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                r.before.to_string(),
                r.after.to_string(),
                format!("{:.1}%", 100.0 * r.reduction()),
            ]
        })
        .collect();
    println!("§4.5 — DEAD: instruction-count reduction (binary-size proxy)\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Benchmark", "Before", "After", "Reduction"], &rows)
    );
    let avg = data.iter().map(|r| r.reduction()).sum::<f64>() / data.len() as f64;
    println!("\nAverage reduction: {:.1}% (paper: 6.3%)", 100.0 * avg);
}
