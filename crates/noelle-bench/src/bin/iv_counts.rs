//! Regenerate the §4.3 governing-induction-variable comparison
//! (paper: LLVM 11 vs NOELLE 385 across 41 benchmarks).

fn main() {
    let data = noelle_bench::iv_counts();
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| vec![r.bench.clone(), r.llvm.to_string(), r.noelle.to_string()])
        .collect();
    println!("§4.3 — governing induction variables detected\n");
    print!(
        "{}",
        noelle_bench::render_table(&["Benchmark", "LLVM", "NOELLE"], &rows)
    );
    let (l, n) = data
        .iter()
        .fold((0, 0), |(l, n), r| (l + r.llvm, n + r.noelle));
    println!("\nTotals: LLVM {l}, NOELLE {n} (paper: 11 vs 385 — while-shaped loops defeat LLVM's analysis)");
}
