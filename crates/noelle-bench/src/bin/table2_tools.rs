//! Regenerate Table 2: LoC of each noelle-* tool.

fn main() {
    let rows: Vec<Vec<String>> = noelle_bench::table2_loc()
        .iter()
        .map(|r| vec![r.name.to_string(), r.loc.to_string()])
        .collect();
    let total: usize = noelle_bench::table2_loc().iter().map(|r| r.loc).sum();
    println!("Table 2 — NOELLE-rs tools (measured LoC)\n");
    print!("{}", noelle_bench::render_table(&["Tool", "LoC"], &rows));
    println!("\nTotal tool LoC: {total} (paper reports 5143 C++ LoC)");
}
