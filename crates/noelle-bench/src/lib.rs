//! # noelle-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§4). Each experiment is a library function returning
//! structured rows — the `src/bin` printers render them like the paper's
//! tables, the integration tests assert the *shape* claims, and the
//! Criterion benches measure the infrastructure costs. The experiment ↔
//! module map lives in DESIGN.md; paper-vs-measured numbers in
//! EXPERIMENTS.md.

use noelle_analysis::alias::{AliasAnalysis, AliasStack, AndersenAlias, BasicAlias};
use noelle_analysis::modref::ModRefSummaries;
use noelle_core::architecture::Architecture;
use noelle_core::induction::{ivs_llvm, ivs_noelle};
use noelle_core::invariants::{invariants_llvm, invariants_noelle};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::loops::LoopForest;
use noelle_pdg::pdg::{memory_dependence_stats, PdgBuilder};
use noelle_runtime::{run_module, RunConfig};
use noelle_transforms as tools;
use noelle_workloads::{all, Suite, Workload};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Figure 3: memory dependences disproved, LLVM tier vs NOELLE tier
// ---------------------------------------------------------------------------

/// One benchmark's Figure 3 data point.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Benchmark name.
    pub bench: String,
    /// Suite label.
    pub suite: &'static str,
    /// Potential memory dependence pairs examined.
    pub total: usize,
    /// Pairs disproved by the basic (LLVM-like) alias tier.
    pub llvm_disproved: usize,
    /// Pairs disproved by the full NOELLE stack (basic + points-to).
    pub noelle_disproved: usize,
}

/// Regenerate Figure 3 over the 41-benchmark corpus.
pub fn fig3_dependences() -> Vec<Fig3Row> {
    all()
        .iter()
        .map(|w| {
            let m = w.build();
            let basic = BasicAlias::new(&m);
            let s_basic = memory_dependence_stats(&m, &basic);
            let andersen = AndersenAlias::new(&m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            let s_full = memory_dependence_stats(&m, &stack);
            Fig3Row {
                bench: w.name.to_string(),
                suite: w.suite.name(),
                total: s_basic.total_pairs,
                llvm_disproved: s_basic.disproved,
                noelle_disproved: s_full.disproved,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 4: loop invariants, Algorithm 1 vs Algorithm 2
// ---------------------------------------------------------------------------

/// One benchmark's Figure 4 data point.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub bench: String,
    /// Invariants found by Algorithm 1 (LLVM logic, basic alias tier).
    pub llvm: usize,
    /// Invariants found by Algorithm 2 (PDG-powered).
    pub noelle: usize,
}

/// Regenerate Figure 4: total loop invariants detected per benchmark.
pub fn fig4_invariants() -> Vec<Fig4Row> {
    all()
        .iter()
        .map(|w| {
            let m = w.build();
            // One mod/ref summary + one PDG builder shared by both
            // algorithms: Algorithm 1 consumes the summaries directly and
            // the builder reuses the same Arc instead of recomputing.
            let modref = std::sync::Arc::new(ModRefSummaries::compute(&m));
            let basic = BasicAlias::new(&m);
            let andersen = AndersenAlias::new(&m);
            let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
            let builder = PdgBuilder::new_with_modref(&m, &stack, std::sync::Arc::clone(&modref));
            let (mut n_llvm, mut n_noelle) = (0usize, 0usize);
            for fid in m.func_ids() {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                let forest = LoopForest::new(f, &cfg, &dt);
                let fg = builder.function_pdg(fid);
                for l in forest.loops() {
                    n_llvm += invariants_llvm(&m, fid, l, &dt, &basic, &modref).len();
                    let g = builder.loop_pdg_with(fid, l, &fg);
                    n_noelle += invariants_noelle(f, l, &g).len();
                }
            }
            Fig4Row {
                bench: w.name.to_string(),
                llvm: n_llvm,
                noelle: n_noelle,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §4.3: governing induction variables, LLVM vs NOELLE
// ---------------------------------------------------------------------------

/// One benchmark's governing-IV counts.
#[derive(Debug, Clone)]
pub struct IvRow {
    /// Benchmark name.
    pub bench: String,
    /// Governing IVs the do-while-only LLVM-style analysis finds.
    pub llvm: usize,
    /// Governing IVs NOELLE's shape-independent analysis finds.
    pub noelle: usize,
}

/// Regenerate the §4.3 governing-IV comparison (paper: 11 vs 385 in total).
pub fn iv_counts() -> Vec<IvRow> {
    all()
        .iter()
        .map(|w| {
            let m = w.build();
            let (mut n_llvm, mut n_noelle) = (0usize, 0usize);
            for fid in m.func_ids() {
                let f = m.func(fid);
                if f.is_declaration() {
                    continue;
                }
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                let forest = LoopForest::new(f, &cfg, &dt);
                for l in forest.loops() {
                    n_llvm += usize::from(ivs_llvm(f, l).governing().is_some());
                    n_noelle += usize::from(ivs_noelle(f, l).governing().is_some());
                }
            }
            IvRow {
                bench: w.name.to_string(),
                llvm: n_llvm,
                noelle: n_noelle,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 5 + §4.4: parallelization speedups
// ---------------------------------------------------------------------------

/// One benchmark's speedups under each parallelizing tool.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Benchmark name.
    pub bench: String,
    /// Suite label.
    pub suite: &'static str,
    /// Sequential (clang-stand-in) cycles.
    pub seq_cycles: u64,
    /// Speedup per technique (1.0 = no benefit); keys: `doall`, `helix`,
    /// `dswp`, `autopar` (the gcc/icc stand-in), `perspective`.
    pub speedups: BTreeMap<&'static str, f64>,
}

/// Run the paper's profile-guided compilation flow for one technique on a
/// fresh copy of the workload, then measure simulated cycles.
fn measure_technique(w: &Workload, technique: &str, cores: usize, arch: &Architecture) -> f64 {
    let mut m = w.build();
    // Profile and embed (noelle-prof-coverage + noelle-meta-prof-embed).
    let prof_cfg = RunConfig {
        collect_profiles: true,
        arch: arch.clone(),
        ..RunConfig::default()
    };
    let Ok(seq) = run_module(&m, "main", &[], &prof_cfg) else {
        return 1.0;
    };
    seq.profiles.embed(&mut m);
    arch.clone().embed(&mut m);

    let min_hotness = 0.02;
    let (m2, changed) = match technique {
        "autopar" => {
            let (m2, report) = tools::baseline::conservative_parallelize(m, cores);
            (m2, report.count() > 0)
        }
        _ => {
            let mut noelle = Noelle::new(m, AliasTier::Full);
            let count = match technique {
                "doall" => tools::doall::run(
                    &mut noelle,
                    &tools::doall::DoallOptions {
                        target: tools::common::LoopTargetOpts {
                            min_hotness,
                            only: None,
                            workers: cores,
                        },
                    },
                )
                .count(),
                "helix" => tools::helix::run(
                    &mut noelle,
                    &tools::helix::HelixOptions {
                        target: tools::common::LoopTargetOpts {
                            min_hotness,
                            only: None,
                            workers: cores,
                        },
                        max_sequential_fraction: 0.7,
                    },
                )
                .count(),
                "dswp" => tools::dswp::run(
                    &mut noelle,
                    &tools::dswp::DswpOptions {
                        target: tools::common::LoopTargetOpts {
                            min_hotness,
                            only: None,
                            workers: 2,
                        },
                    },
                )
                .count(),
                "perspective" => tools::perspective::run(
                    &mut noelle,
                    &tools::perspective::PerspectiveOptions { n_tasks: cores },
                )
                .count(),
                other => panic!("unknown technique {other}"),
            };
            (noelle.into_module(), count > 0)
        }
    };
    if !changed {
        return 1.0;
    }
    if noelle_ir::verifier::verify_module(&m2).is_err() {
        return f64::NAN; // would be a compiler bug; surfaced by tests
    }
    let run_cfg = RunConfig {
        arch: arch.clone(),
        ..RunConfig::default()
    };
    let Ok(par) = run_module(&m2, "main", &[], &run_cfg) else {
        return f64::NAN;
    };
    // Semantics check: a transformed program must compute the same result.
    if par.ret_i64() != seq.ret_i64() {
        return f64::NAN;
    }
    seq.cycles as f64 / par.cycles as f64
}

/// Regenerate Figure 5 (PARSEC + MiBench) or §4.4 (SPEC) speedups.
pub fn speedups(suites: &[Suite], cores: usize) -> Vec<Fig5Row> {
    let arch = Architecture::synthetic(cores.max(2), 1);
    all()
        .iter()
        .filter(|w| suites.contains(&w.suite))
        .map(|w| {
            let m = w.build();
            let cfg = RunConfig {
                arch: arch.clone(),
                ..RunConfig::default()
            };
            let seq = run_module(&m, "main", &[], &cfg).expect("workload runs");
            let mut speedup_map = BTreeMap::new();
            for technique in ["doall", "helix", "dswp", "autopar", "perspective"] {
                speedup_map.insert(
                    match technique {
                        "doall" => "doall",
                        "helix" => "helix",
                        "dswp" => "dswp",
                        "autopar" => "autopar",
                        _ => "perspective",
                    },
                    measure_technique(w, technique, cores, &arch),
                );
            }
            Fig5Row {
                bench: w.name.to_string(),
                suite: w.suite.name(),
                seq_cycles: seq.cycles,
                speedups: speedup_map,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §4.5: binary-size reduction by DEAD
// ---------------------------------------------------------------------------

/// One benchmark's DEAD result.
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// Benchmark name.
    pub bench: String,
    /// Instruction count before (the binary-size proxy).
    pub before: usize,
    /// Instruction count after dead-function elimination.
    pub after: usize,
}

impl SizeRow {
    /// Fractional reduction.
    pub fn reduction(&self) -> f64 {
        1.0 - self.after as f64 / self.before.max(1) as f64
    }
}

/// Regenerate the §4.5 experiment.
pub fn binary_size() -> Vec<SizeRow> {
    all()
        .iter()
        .map(|w| {
            let m = w.build();
            let mut noelle = Noelle::new(m, AliasTier::Full);
            let report = tools::dead::run(&mut noelle, "main");
            SizeRow {
                bench: w.name.to_string(),
                before: report.insts_before,
                after: report.insts_after,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table 4: abstractions used per custom tool
// ---------------------------------------------------------------------------

/// Run every custom tool on a representative workload and record which
/// abstractions it requested from the demand-driven manager.
pub fn table4_usage() -> Vec<(&'static str, Vec<&'static str>)> {
    let run_tool = |tool: &str| -> Vec<&'static str> {
        let w = noelle_workloads::by_name(match tool {
            "PRVJ" => "bodytrack",
            "CARAT" => "fluidanimate",
            "PERS" => "wrf",
            _ => "blackscholes",
        })
        .expect("workload exists");
        let mut noelle = Noelle::new(w.build(), AliasTier::Full);
        match tool {
            "HELIX" => {
                tools::helix::run(&mut noelle, &tools::helix::HelixOptions::default());
            }
            "DSWP" => {
                tools::dswp::run(&mut noelle, &tools::dswp::DswpOptions::default());
            }
            "DOALL" => {
                tools::doall::run(&mut noelle, &tools::doall::DoallOptions::default());
            }
            "CARAT" => {
                tools::carat::run(&mut noelle);
            }
            "COOS" => {
                tools::coos::run(&mut noelle);
            }
            "PRVJ" => {
                tools::prvj::run(&mut noelle, &tools::prvj::PrvjOptions::default());
            }
            "LICM" => {
                tools::licm::run(&mut noelle);
            }
            "TIME" => {
                tools::time::run(&mut noelle);
            }
            "DEAD" => {
                tools::dead::run(&mut noelle, "main");
            }
            "PERS" => {
                tools::perspective::run(
                    &mut noelle,
                    &tools::perspective::PerspectiveOptions::default(),
                );
            }
            _ => unreachable!(),
        }
        noelle.requested().iter().map(|a| a.short_name()).collect()
    };
    [
        "HELIX", "DSWP", "CARAT", "COOS", "PRVJ", "DOALL", "LICM", "TIME", "DEAD", "PERS",
    ]
    .into_iter()
    .map(|t| (t, run_tool(t)))
    .collect()
}

// ---------------------------------------------------------------------------
// Tables 1–3: lines of code
// ---------------------------------------------------------------------------

/// Lines-of-code row.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component name (abstraction / tool).
    pub name: &'static str,
    /// Source files measured, relative to the workspace root.
    pub files: Vec<&'static str>,
    /// Total source lines.
    pub loc: usize,
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

fn count_loc(files: &[&'static str]) -> usize {
    let root = workspace_root();
    files
        .iter()
        .map(|f| {
            std::fs::read_to_string(root.join(f))
                .map(|t| t.lines().count())
                .unwrap_or(0)
        })
        .sum()
}

/// Regenerate Table 1: LoC per NOELLE abstraction (our Rust measurements).
pub fn table1_loc() -> Vec<LocRow> {
    let rows: Vec<(&'static str, Vec<&'static str>)> = vec![
        (
            "PDG",
            vec![
                "crates/noelle-pdg/src/depgraph.rs",
                "crates/noelle-pdg/src/pdg.rs",
            ],
        ),
        ("aSCCDAG", vec!["crates/noelle-pdg/src/sccdag.rs"]),
        (
            "Call graph (CG)",
            vec!["crates/noelle-pdg/src/callgraph.rs"],
        ),
        ("Environment (ENV)", vec!["crates/noelle-core/src/env.rs"]),
        ("Task (T)", vec!["crates/noelle-core/src/task.rs"]),
        (
            "Data-flow engine (DFE)",
            vec![
                "crates/noelle-analysis/src/dfe.rs",
                "crates/noelle-analysis/src/analyses.rs",
            ],
        ),
        ("Loop structure (LS)", vec!["crates/noelle-ir/src/loops.rs"]),
        ("Profiler (PRO)", vec!["crates/noelle-core/src/profiler.rs"]),
        (
            "Scheduler (SCD)",
            vec!["crates/noelle-core/src/scheduler.rs"],
        ),
        (
            "Invariant (INV)",
            vec!["crates/noelle-core/src/invariants.rs"],
        ),
        (
            "Induction variable (IV)",
            vec![
                "crates/noelle-core/src/induction.rs",
                "crates/noelle-analysis/src/scev.rs",
            ],
        ),
        (
            "IV stepper (IVS)",
            vec!["crates/noelle-core/src/ivstepper.rs"],
        ),
        (
            "Reduction (RD)",
            vec!["crates/noelle-core/src/reduction.rs"],
        ),
        ("Loop (L)", vec!["crates/noelle-core/src/loop_abs.rs"]),
        ("Forest (FR)", vec!["crates/noelle-core/src/forest.rs"]),
        (
            "Loop builder (LB)",
            vec!["crates/noelle-core/src/loop_builder.rs"],
        ),
        ("Islands (ISL)", vec!["crates/noelle-pdg/src/islands.rs"]),
        (
            "Architecture (AR)",
            vec!["crates/noelle-core/src/architecture.rs"],
        ),
        (
            "Others (manager, alias analyses)",
            vec![
                "crates/noelle-core/src/noelle.rs",
                "crates/noelle-analysis/src/alias.rs",
                "crates/noelle-analysis/src/modref.rs",
            ],
        ),
    ];
    rows.into_iter()
        .map(|(name, files)| LocRow {
            loc: count_loc(&files),
            name,
            files,
        })
        .collect()
}

/// Regenerate Table 2: LoC per NOELLE tool.
pub fn table2_loc() -> Vec<LocRow> {
    let rows: Vec<(&'static str, Vec<&'static str>)> = vec![
        (
            "noelle-whole-IR",
            vec![
                "crates/noelle-tools/src/bin/noelle-whole-ir.rs",
                "crates/noelle-tools/src/lib.rs",
            ],
        ),
        (
            "noelle-rm-lc-dependences",
            vec!["crates/noelle-tools/src/bin/noelle-rm-lc-dependences.rs"],
        ),
        (
            "noelle-prof-coverage",
            vec!["crates/noelle-tools/src/bin/noelle-prof-coverage.rs"],
        ),
        (
            "noelle-meta-prof-embed",
            vec!["crates/noelle-tools/src/bin/noelle-meta-prof-embed.rs"],
        ),
        (
            "noelle-meta-pdg-embed",
            vec!["crates/noelle-tools/src/bin/noelle-meta-pdg-embed.rs"],
        ),
        (
            "noelle-meta-clean",
            vec!["crates/noelle-tools/src/bin/noelle-meta-clean.rs"],
        ),
        (
            "noelle-load",
            vec!["crates/noelle-tools/src/bin/noelle-load.rs"],
        ),
        (
            "noelle-arch",
            vec!["crates/noelle-tools/src/bin/noelle-arch.rs"],
        ),
        (
            "noelle-linker",
            vec!["crates/noelle-tools/src/bin/noelle-linker.rs"],
        ),
        (
            "noelle-bin",
            vec!["crates/noelle-tools/src/bin/noelle-bin.rs"],
        ),
    ];
    rows.into_iter()
        .map(|(name, files)| LocRow {
            loc: count_loc(&files),
            name,
            files,
        })
        .collect()
}

/// A Table 3 row: our measured LoC for the NOELLE-based tool next to the
/// paper's reported numbers.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Tool name.
    pub tool: &'static str,
    /// Paper: LLVM-only implementation LoC.
    pub paper_llvm: usize,
    /// Paper: LLVM+NOELLE implementation LoC.
    pub paper_noelle: usize,
    /// Our measured LoC for the NOELLE-based Rust implementation.
    pub ours: usize,
}

impl Table3Row {
    /// The paper's reported reduction.
    pub fn paper_reduction(&self) -> f64 {
        1.0 - self.paper_noelle as f64 / self.paper_llvm as f64
    }
}

/// Regenerate Table 3 (paper numbers + our measured tool sizes).
pub fn table3_loc() -> Vec<Table3Row> {
    let t = |tool, paper_llvm, paper_noelle, files: Vec<&'static str>| Table3Row {
        tool,
        paper_llvm,
        paper_noelle,
        ours: count_loc(&files),
    };
    vec![
        t(
            "TIME",
            510,
            92,
            vec!["crates/noelle-transforms/src/time.rs"],
        ),
        t(
            "COOS",
            1641,
            495,
            vec!["crates/noelle-transforms/src/coos.rs"],
        ),
        t(
            "LICM",
            2317,
            170,
            vec!["crates/noelle-transforms/src/licm.rs"],
        ),
        t(
            "DOALL",
            5512,
            321,
            vec!["crates/noelle-transforms/src/doall.rs"],
        ),
        t(
            "DEAD",
            7512,
            61,
            vec!["crates/noelle-transforms/src/dead.rs"],
        ),
        t(
            "DSWP",
            8525,
            775,
            vec!["crates/noelle-transforms/src/dswp.rs"],
        ),
        t(
            "HELIX",
            15453,
            958,
            vec!["crates/noelle-transforms/src/helix.rs"],
        ),
        t(
            "PRVJ",
            17863,
            456,
            vec!["crates/noelle-transforms/src/prvj.rs"],
        ),
        t(
            "CARAT",
            21899,
            595,
            vec!["crates/noelle-transforms/src/carat.rs"],
        ),
        t(
            "PERS",
            33998,
            22706,
            vec!["crates/noelle-transforms/src/perspective.rs"],
        ),
    ]
}

// ---------------------------------------------------------------------------
// Ablation: PDG precision vs parallelization coverage
// ---------------------------------------------------------------------------

/// How many loops DOALL parallelizes across the corpus when its PDG is
/// powered by the basic tier vs the full stack — the ablation DESIGN.md
/// calls out (alias precision is what buys parallelism).
pub fn ablation_alias_tier(cores: usize) -> (usize, usize) {
    let mut basic_total = 0;
    let mut full_total = 0;
    for w in all() {
        for (tier, total) in [
            (AliasTier::Basic, &mut basic_total),
            (AliasTier::Full, &mut full_total),
        ] {
            let mut noelle = Noelle::new(w.build(), tier);
            let report = tools::doall::run(
                &mut noelle,
                &tools::doall::DoallOptions {
                    target: tools::common::LoopTargetOpts {
                        min_hotness: 0.0,
                        only: None,
                        workers: cores,
                    },
                },
            );
            *total += report.count();
        }
    }
    (basic_total, full_total)
}

/// Render rows as a fixed-width text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Used by tests: the subset of workloads with parallelizable hot loops.
pub fn parallel_friendly() -> Vec<&'static str> {
    vec![
        "blackscholes",
        "fluidanimate",
        "streamcluster",
        "vips",
        "swaptions",
        "basicmath",
        "bitcount",
        "dijkstra",
        "susan",
        "fft",
    ]
}
