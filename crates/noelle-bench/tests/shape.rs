//! Shape tests: the qualitative claims of the paper's evaluation must hold
//! on the reproduction — who wins, in which direction, and roughly by how
//! much. (Absolute numbers differ: our substrate is a simulator.)

use noelle_bench::*;
use noelle_workloads::Suite;

#[test]
fn fig3_noelle_disproves_more_dependences() {
    let rows = fig3_dependences();
    assert_eq!(rows.len(), 41);
    let (mut total, mut llvm, mut noelle) = (0usize, 0usize, 0usize);
    for r in &rows {
        // The stack is layered: it can never disprove fewer than its first
        // tier alone.
        assert!(
            r.noelle_disproved >= r.llvm_disproved,
            "{}: NOELLE disproved {} < LLVM {}",
            r.bench,
            r.noelle_disproved,
            r.llvm_disproved
        );
        total += r.total;
        llvm += r.llvm_disproved;
        noelle += r.noelle_disproved;
    }
    assert!(total > 0);
    // Figure 3's headline: the state-of-the-art stack disproves strictly
    // more in aggregate, by a visible margin.
    assert!(
        noelle as f64 >= llvm as f64 * 1.1,
        "aggregate: NOELLE {noelle} vs LLVM {llvm} of {total}"
    );
}

#[test]
fn fig4_algorithm2_finds_more_invariants() {
    let rows = fig4_invariants();
    let (mut llvm, mut noelle) = (0usize, 0usize);
    for r in &rows {
        assert!(
            r.noelle >= r.llvm,
            "{}: Algorithm 2 found {} < Algorithm 1's {}",
            r.bench,
            r.noelle,
            r.llvm
        );
        llvm += r.llvm;
        noelle += r.noelle;
    }
    // "NOELLE detects significantly more invariants than LLVM".
    assert!(
        noelle as f64 >= llvm as f64 * 1.5,
        "NOELLE {noelle} vs LLVM {llvm}"
    );
    assert!(noelle > 0);
}

#[test]
fn iv_counts_match_the_shape_asymmetry() {
    let rows = iv_counts();
    let (mut llvm, mut noelle) = (0usize, 0usize);
    for r in &rows {
        llvm += r.llvm;
        noelle += r.noelle;
    }
    // Paper: 11 vs 385 — while-shaped loops defeat the LLVM-style analysis.
    // Our corpus is while-dominated too, so the ratio must be large.
    assert!(
        noelle >= llvm * 10,
        "governing IVs: NOELLE {noelle} vs LLVM {llvm}"
    );
    assert!(noelle >= 41, "at least one governing IV per benchmark");
}

#[test]
fn fig5_shape_noelle_beats_conservative_baseline() {
    // A fast slice of Figure 5: a handful of benchmarks at 4 cores.
    let cores = 4;
    let rows: Vec<Fig5Row> = speedups(&[Suite::Parsec, Suite::MiBench], cores)
        .into_iter()
        .filter(|r| {
            ["blackscholes", "streamcluster", "vips", "crc32", "fft"].contains(&r.bench.as_str())
        })
        .collect();
    assert_eq!(rows.len(), 5);
    for r in &rows {
        let autopar = r.speedups["autopar"];
        let best = ["doall", "helix", "dswp", "perspective"]
            .iter()
            .map(|k| r.speedups[*k])
            .fold(1.0f64, f64::max);
        assert!(
            !best.is_nan() && !autopar.is_nan(),
            "{}: NaN speedup (semantics violated)",
            r.bench
        );
        // The gcc/icc stand-in gets (essentially) nothing.
        assert!(autopar <= 1.05, "{}: autopar {autopar}", r.bench);
        match r.bench.as_str() {
            // crc's sequential chain resists parallelization (paper calls
            // this out); only its input preparation speeds up a little.
            "crc32" => assert!(best < 1.6, "crc32 best {best}"),
            // The compute-heavy kernels must see real speedups.
            _ => assert!(best > 1.5, "{}: best {best}", r.bench),
        }
        assert!(best >= autopar, "{}: {best} < {autopar}", r.bench);
    }
}

#[test]
fn spec_speedups_are_small_but_positive() {
    let rows = speedups(&[Suite::Spec], 4);
    assert_eq!(rows.len(), 14);
    let mut positive = 0;
    for r in &rows {
        let best = ["doall", "helix", "dswp", "perspective"]
            .iter()
            .map(|k| r.speedups[*k])
            .fold(1.0f64, f64::max);
        let autopar = r.speedups["autopar"];
        assert!(autopar <= 1.05, "{}: autopar {autopar}", r.bench);
        // §4.4: speedups exist but are small — the sequential chains bound
        // them well below the parallel suites' numbers.
        assert!(
            best < 1.4,
            "{}: {best} too large for a SPEC-like program",
            r.bench
        );
        if best > 1.005 {
            positive += 1;
        }
    }
    assert!(positive >= 10, "only {positive} SPEC benchmarks improved");
}

#[test]
fn binary_size_reduction_present_everywhere() {
    let rows = binary_size();
    assert_eq!(rows.len(), 41);
    for r in &rows {
        assert!(r.after < r.before, "{}: DEAD removed nothing", r.bench);
    }
    let avg = rows.iter().map(|r| r.reduction()).sum::<f64>() / rows.len() as f64;
    // Paper: 6.3% average. Same order of magnitude here.
    assert!(avg > 0.02 && avg < 0.20, "average reduction {avg}");
}

#[test]
fn table4_every_abstraction_serves_multiple_tools() {
    let usage = table4_usage();
    assert_eq!(usage.len(), 10);
    // The paper's point: high heterogeneity, yet every abstraction is used
    // by more than one custom tool.
    const COLS: [&str; 18] = [
        "PDG", "aSCCDAG", "CG", "ENV", "T", "DFE", "PRO", "SCD", "L", "LB", "IV", "IVS", "INV",
        "FR", "ISL", "RD", "AR", "LS",
    ];
    for c in COLS {
        let n = usage.iter().filter(|(_, used)| used.contains(&c)).count();
        assert!(n >= 2, "abstraction {c} used by only {n} tool(s)");
    }
    // And the parallelizers are the heaviest consumers.
    let helix = usage.iter().find(|(t, _)| *t == "HELIX").unwrap();
    assert!(helix.1.len() >= 12, "HELIX used only {:?}", helix.1);
}

#[test]
fn ablation_full_stack_parallelizes_at_least_as_much() {
    let (basic, full) = ablation_alias_tier(4);
    assert!(full >= basic, "full {full} < basic {basic}");
    assert!(full > 0);
}

#[test]
fn loc_tables_are_nonempty_and_in_band() {
    let t1: usize = table1_loc().iter().map(|r| r.loc).sum();
    assert!(t1 > 3000, "abstraction layer suspiciously small: {t1}");
    let t2: usize = table2_loc().iter().map(|r| r.loc).sum();
    assert!(t2 > 300, "tools suspiciously small: {t2}");
    for r in table3_loc() {
        assert!(r.ours > 0, "{}: no source measured", r.tool);
        // Table 3's claim transfers: every NOELLE-based tool is far below
        // its LLVM-only size (paper's LLVM column), PERS excepted.
        if r.tool != "PERS" {
            assert!(
                r.ours < r.paper_llvm,
                "{}: ours {} not smaller than paper's LLVM-only {}",
                r.tool,
                r.ours,
                r.paper_llvm
            );
        }
    }
}
