//! Kernel-shape builders: the loop/memory/call patterns that make up the
//! synthetic benchmark corpus. Each builder appends one kernel function to a
//! module and returns its id; `main` composes them.

use noelle_ir::builder::FunctionBuilder;
use noelle_ir::inst::{BinOp, CastOp, IcmpPred};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::Value;

/// Signature shared by array kernels: `i64 kernel(i64* a, i64* b, i64 n)`.
/// Public so generative tooling (the fuzzer) emits the same shapes the
/// workload corpus does.
pub fn kernel_params() -> Vec<(&'static str, Type)> {
    vec![
        ("a", Type::I64.ptr_to()),
        ("b", Type::I64.ptr_to()),
        ("n", Type::I64),
    ]
}

/// Standard counted-loop skeleton: calls `body` with (builder, i) inside
/// `for (i = 0; i < n; i++)`, threading an i64 accumulator. `body` returns
/// the value to add to the accumulator. Public for reuse by the fuzzer's
/// program generator.
pub fn counted_loop(
    b: &mut FunctionBuilder,
    body: impl FnOnce(&mut FunctionBuilder, Value) -> Value,
) -> Value {
    let entry = b.entry_block();
    let header = b.block("header");
    let body_bb = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body_bb, exit);
    b.switch_to(body_bb);
    let contrib = body(b, i);
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, contrib);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body_bb, i2);
    b.add_incoming(acc, body_bb, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    acc
}

/// DOALL map over `a`: `a[i] = f(a[i])` with a configurable op chain; the
/// kernel returns the sum of the written values (a reduction).
pub fn add_map(m: &mut Module, name: &str, heavy: bool) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        // Invariant chain: k1 depends only on the argument; k2 chains off
        // k1 (Algorithm 2 catches the chain, Algorithm 1 only k1).
        let k1 = b.binop(BinOp::Mul, Type::I64, b.arg(2), Value::const_i64(5));
        let k2 = b.binop(BinOp::Add, Type::I64, k1, Value::const_i64(3));
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let mut x = b.binop(BinOp::Mul, Type::I64, v, Value::const_i64(3));
        x = b.binop(BinOp::Add, Type::I64, x, k2);
        if heavy {
            x = b.binop(BinOp::Div, Type::I64, x, Value::const_i64(5));
            x = b.binop(BinOp::Mul, Type::I64, x, x);
            x = b.binop(BinOp::Div, Type::I64, x, Value::const_i64(11));
            x = b.binop(BinOp::Xor, Type::I64, x, v);
            x = b.binop(BinOp::And, Type::I64, x, Value::const_i64(0xFFFF));
        }
        b.store(Type::I64, x, p);
        x
    });
    m.add_function(b.finish())
}

/// Reduction sum over `a` with optional extra per-element work.
pub fn add_sum(m: &mut Module, name: &str, heavy: bool) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        if heavy {
            let k1 = b.binop(BinOp::Or, Type::I64, b.arg(2), Value::const_i64(1));
            let k2 = b.binop(BinOp::Add, Type::I64, k1, Value::const_i64(12));
            let s = b.binop(BinOp::Mul, Type::I64, v, v);
            let t = b.binop(BinOp::Div, Type::I64, s, k2);
            b.binop(BinOp::Add, Type::I64, t, v)
        } else {
            v
        }
    });
    m.add_function(b.finish())
}

/// Min-reduction (streamcluster/dijkstra shape).
pub fn add_min(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let best = b.phi(Type::I64, vec![(entry, Value::const_i64(i64::MAX))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let d = b.binop(BinOp::Mul, Type::I64, v, Value::const_i64(17));
    let dist = b.binop(BinOp::Xor, Type::I64, d, Value::const_i64(0x55));
    let best2 = b.binop(BinOp::SMin, Type::I64, best, dist);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(best, body, best2);
    b.switch_to(exit);
    b.ret(Some(best));
    m.add_function(b.finish())
}

/// Floating-point reduction with library math (blackscholes shape).
pub fn add_fsum(m: &mut Module, name: &str) -> FuncId {
    let sqrt = m.get_or_declare("sqrt", vec![Type::F64], Type::F64);
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::F64, vec![(entry, Value::const_f64(0.0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let fk1 = b.cast(CastOp::SiToFp, Type::I64, Type::F64, b.arg(2));
    let fk2 = b.binop(BinOp::FMul, Type::F64, fk1, Value::const_f64(0.001));
    let fk3 = b.binop(BinOp::FAdd, Type::F64, fk2, Value::const_f64(1.0));
    let x = b.cast(CastOp::SiToFp, Type::I64, Type::F64, v);
    let x1 = b.binop(BinOp::FMul, Type::F64, x, fk3);
    let x2 = b.binop(BinOp::FAdd, Type::F64, x1, Value::const_f64(1.0));
    let r = b.call(sqrt, vec![x2], Type::F64);
    let r2 = b.binop(BinOp::FDiv, Type::F64, r, Value::const_f64(1.5));
    let acc2 = b.binop(BinOp::FAdd, Type::F64, acc, r2);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    let out = b.cast(CastOp::FpToSi, Type::F64, Type::I64, acc);
    b.ret(Some(out));
    m.add_function(b.finish())
}

/// Stencil: `b[i] = a[i-1] + a[i] + a[i+1]` for `i in 1..n-1` (fluidanimate
/// shape; DOALL with a points-to-powered PDG since `a` and `b` are distinct
/// allocations).
pub fn add_stencil(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    let n1 = b.binop(BinOp::Sub, Type::I64, b.arg(2), Value::const_i64(1));
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(1))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, n1);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let im1 = b.binop(BinOp::Sub, Type::I64, i, Value::const_i64(1));
    let ip1 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    let p0 = b.index_ptr(Type::I64, b.arg(0), im1);
    let p1 = b.index_ptr(Type::I64, b.arg(0), i);
    let p2 = b.index_ptr(Type::I64, b.arg(0), ip1);
    let v0 = b.load(Type::I64, p0);
    let v1 = b.load(Type::I64, p1);
    let v2 = b.load(Type::I64, p2);
    let s01 = b.binop(BinOp::Add, Type::I64, v0, v1);
    let s = b.binop(BinOp::Add, Type::I64, s01, v2);
    let q = b.index_ptr(Type::I64, b.arg(1), i);
    b.store(Type::I64, s, q);
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, s);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish())
}

/// Bit-mixing sequential chain (crc32/sha shape): the accumulator update
/// mixes shifts and xors, so the recurrence is NOT a reduction — the loop
/// stays sequential for every parallelizer, matching the paper's crc
/// observation.
pub fn add_seq_chain(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let crc = b.phi(Type::I64, vec![(entry, Value::const_i64(-1))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let sh = b.binop(BinOp::Shl, Type::I64, crc, Value::const_i64(1));
    let x = b.binop(BinOp::Xor, Type::I64, sh, v);
    let crc2 = b.binop(BinOp::And, Type::I64, x, Value::const_i64(0xFFFF_FFFF));
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(crc, body, crc2);
    b.switch_to(exit);
    b.ret(Some(crc));
    m.add_function(b.finish())
}

/// Heavy bit-mixing sequential chain (the SPEC-like programs' dominant
/// phase): ~8 dependent mixing rounds per element, all chained through the
/// accumulator, so no parallelizer can touch it and it dwarfs the parallel
/// fraction (the paper's explanation for SPEC's 1-5% ceilings).
pub fn add_seq_chain_heavy(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(-1))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let mut x = b.binop(BinOp::Xor, Type::I64, acc, v);
    for d in [7i64, 11, 5, 13, 3, 17, 9, 23] {
        let sh = b.binop(BinOp::Shl, Type::I64, x, Value::const_i64(1));
        let dv = b.binop(BinOp::Div, Type::I64, sh, Value::const_i64(d));
        x = b.binop(BinOp::Xor, Type::I64, dv, v);
    }
    let acc2 = b.binop(BinOp::And, Type::I64, x, Value::const_i64(0xFFFF_FFFF));
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish())
}

/// Histogram: `b[a[i] & 15] += 1` — the data-dependent store index defeats
/// per-iteration disambiguation; HELIX can still bracket the bin update.
pub fn add_hist(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let bin = b.binop(BinOp::And, Type::I64, v, Value::const_i64(15));
        let q = b.index_ptr(Type::I64, b.arg(1), bin);
        let old = b.load(Type::I64, q);
        let new = b.binop(BinOp::Add, Type::I64, old, Value::const_i64(1));
        b.store(Type::I64, new, q);
        new
    });
    m.add_function(b.finish())
}

/// Write-before-read scratch cell per iteration (Perspective's
/// privatization pattern).
pub fn add_scratch(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    // Pre-create the scratch cell in the entry block.
    let entry = b.entry_block();
    b.switch_to(entry);
    let tmp = b.alloca(Type::I64);
    counted_loop_from(&mut b, entry, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sq = b.binop(BinOp::Mul, Type::I64, v, v);
        b.store(Type::I64, sq, tmp);
        let t = b.load(Type::I64, tmp);
        b.binop(BinOp::Add, Type::I64, t, v)
    });
    m.add_function(b.finish())
}

/// Bucketing stress kernel: `banks` disjoint scratch cells, each
/// read-modify-written `touches` times. The shape where all-pairs dependence
/// testing pays ~(banks·touches)² alias queries while base-object bucketing
/// proves the banks disjoint from one `base_objects` query per access.
pub fn add_bank_scratch(m: &mut Module, name: &str, banks: usize, touches: usize) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    b.switch_to(entry);
    let cells: Vec<Value> = (0..banks)
        .map(|k| {
            let c = b.alloca(Type::I64);
            b.store(Type::I64, Value::const_i64(k as i64 + 1), c);
            c
        })
        .collect();
    for t in 0..touches {
        for &c in &cells {
            let v = b.load(Type::I64, c);
            let v2 = b.binop(
                BinOp::Mul,
                Type::I64,
                v,
                Value::const_i64((t % 5) as i64 + 3),
            );
            let v3 = b.binop(BinOp::Xor, Type::I64, v2, Value::const_i64(0x2D));
            b.store(Type::I64, v3, c);
        }
    }
    let mut sum = Value::const_i64(0);
    for &c in &cells {
        let v = b.load(Type::I64, c);
        sum = b.binop(BinOp::Add, Type::I64, sum, v);
    }
    b.ret(Some(sum));
    m.add_function(b.finish())
}

/// Like [`counted_loop`] but continues from a pre-populated entry block.
pub fn counted_loop_from(
    b: &mut FunctionBuilder,
    entry: noelle_ir::module::BlockId,
    body: impl FnOnce(&mut FunctionBuilder, Value) -> Value,
) {
    let header = b.block("header");
    let body_bb = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body_bb, exit);
    b.switch_to(body_bb);
    let contrib = body(b, i);
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, contrib);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body_bb, i2);
    b.add_incoming(acc, body_bb, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
}

/// Monte-Carlo draws from a PRVG (bodytrack/swaptions shape, PRVJ fodder).
pub fn add_monte(m: &mut Module, name: &str) -> FuncId {
    let prv = m.get_or_declare("prv.mt.next", vec![Type::I64], Type::I64);
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, _i| {
        let r = b.call(prv, vec![Value::const_i64(0)], Type::I64);
        b.binop(BinOp::And, Type::I64, r, Value::const_i64(1023))
    });
    m.add_function(b.finish())
}

/// Constant-on-the-left compares (x264/stringsearch shape, TIME fodder).
pub fn add_branchy(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let th = b.binop(BinOp::Div, Type::I64, b.arg(2), Value::const_i64(2));
        let th2 = b.binop(BinOp::Add, Type::I64, th, Value::const_i64(5));
        let c0 = b.icmp(IcmpPred::Slt, Type::I64, v, th2);
        let c1 = b.icmp(IcmpPred::Sgt, Type::I64, Value::const_i64(100), v);
        let c2 = b.icmp(IcmpPred::Slt, Type::I64, Value::const_i64(10), v);
        let _ = c0;
        let w1 = b.select(Type::I64, c1, Value::const_i64(2), Value::const_i64(5));
        let w2 = b.select(Type::I64, c2, w1, Value::const_i64(1));
        b.binop(BinOp::Mul, Type::I64, w2, Value::const_i64(3))
    });
    m.add_function(b.finish())
}

/// Loop whose body calls a defined leaf function (qsort/COOS shape).
pub fn add_call_work(m: &mut Module, name: &str) -> FuncId {
    let leaf = {
        let mut lb =
            FunctionBuilder::new(&format!("{name}.leaf"), vec![("x", Type::I64)], Type::I64);
        let e = lb.entry_block();
        lb.switch_to(e);
        let a = lb.binop(BinOp::Mul, Type::I64, lb.arg(0), lb.arg(0));
        let bq = lb.binop(BinOp::Div, Type::I64, a, Value::const_i64(7));
        let r = lb.binop(BinOp::Add, Type::I64, bq, lb.arg(0));
        lb.ret(Some(r));
        m.add_function(lb.finish())
    };
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        b.call(leaf, vec![v], Type::I64)
    });
    m.add_function(b.finish())
}

/// Indirect dispatch through a function pointer chosen at run time (ferret
/// shape; exercises the complete call graph).
pub fn add_indirect(m: &mut Module, name: &str) -> FuncId {
    let mk_leaf = |m: &mut Module, nm: String, c: i64| -> FuncId {
        let mut lb = FunctionBuilder::new(&nm, vec![("x", Type::I64)], Type::I64);
        let e = lb.entry_block();
        lb.switch_to(e);
        let r = lb.binop(BinOp::Add, Type::I64, lb.arg(0), Value::const_i64(c));
        lb.ret(Some(r));
        m.add_function(lb.finish())
    };
    let f1 = mk_leaf(m, format!("{name}.t1"), 3);
    let f2 = mk_leaf(m, format!("{name}.t2"), 11);
    let fty = Type::Func(std::sync::Arc::new(noelle_ir::types::FuncType {
        params: vec![Type::I64],
        ret: Type::I64,
    }))
    .ptr_to();
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    let entry = b.entry_block();
    b.switch_to(entry);
    let c = b.icmp(IcmpPred::Sgt, Type::I64, b.arg(2), Value::const_i64(100));
    let fp = b.select(fty, c, Value::Func(f1), Value::Func(f2));
    counted_loop_from(&mut b, entry, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        b.call_indirect(fp, vec![v], Type::I64)
    });
    m.add_function(b.finish())
}

/// Deep per-element dependence chain (raytrace/imagick shading shape):
/// enough work per iteration that decoupled pipelining pays for its queues.
pub fn add_pipe(m: &mut Module, name: &str) -> FuncId {
    let mut b = FunctionBuilder::new(name, kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let mut x = b.binop(BinOp::Mul, Type::I64, v, v);
        for d in [
            7i64, 3, 5, 9, 11, 13, 2, 17, 19, 23, 4, 7, 3, 5, 9, 11, 13, 2, 17, 19, 23, 4,
        ] {
            x = b.binop(BinOp::Div, Type::I64, x, Value::const_i64(d));
            x = b.binop(BinOp::Add, Type::I64, x, v);
        }
        x
    });
    m.add_function(b.finish())
}

/// Dead helper functions (never called): §4.5 fodder. `weight` scales their
/// size.
pub fn add_dead_functions(m: &mut Module, count: usize, weight: usize) {
    for k in 0..count {
        let mut b = FunctionBuilder::new(
            &format!("unused.helper{k}"),
            vec![("x", Type::I64)],
            Type::I64,
        );
        let e = b.entry_block();
        b.switch_to(e);
        let mut v = b.arg(0);
        for j in 0..weight {
            v = b.binop(BinOp::Mul, Type::I64, v, Value::const_i64(j as i64 + 3));
            v = b.binop(BinOp::Xor, Type::I64, v, Value::const_i64(0x5A5A));
        }
        b.ret(Some(v));
        m.add_function(b.finish());
    }
}

/// Build `main`: allocate and fill two arrays of `n` i64s, call each kernel
/// in order, and return a checksum of their results.
pub fn add_main(m: &mut Module, kernels: &[FuncId], n: i64, passes: usize, do_while_tail: bool) {
    let malloc = m.get_or_declare("malloc", vec![Type::I64], Type::I64.ptr_to());
    let kernel_sigs: Vec<FuncId> = kernels.to_vec();
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let entry = b.entry_block();
    b.switch_to(entry);
    let a = b.call(malloc, vec![Value::const_i64(n * 8)], Type::I64.ptr_to());
    let bb = b.call(malloc, vec![Value::const_i64(n * 8)], Type::I64.ptr_to());
    // While-shaped fill loop (test in the header): realistic Clang output,
    // and the shape LLVM-style IV detection cannot govern (§4.3).
    let fill_h = b.block("fill_header");
    let fill_b = b.block("fill_body");
    let run = b.block("run");
    b.br(fill_h);
    b.switch_to(fill_h);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, Value::const_i64(n));
    b.cond_br(c, fill_b, run);
    b.switch_to(fill_b);
    let x = b.binop(BinOp::Mul, Type::I64, i, Value::const_i64(37));
    let y = b.binop(BinOp::And, Type::I64, x, Value::const_i64(255));
    let p = b.index_ptr(Type::I64, a, i);
    b.store(Type::I64, y, p);
    let q = b.index_ptr(Type::I64, bb, i);
    b.store(Type::I64, Value::const_i64(0), q);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(fill_h);
    b.add_incoming(i, fill_b, i2);
    b.switch_to(run);
    let mut sum = Value::const_i64(0);
    for _ in 0..passes.max(1) {
        for &k in &kernel_sigs {
            let r = b.call(k, vec![a, bb, Value::const_i64(n)], Type::I64);
            let masked = b.binop(BinOp::And, Type::I64, r, Value::const_i64(0xFFFF_FFFF));
            sum = b.binop(BinOp::Add, Type::I64, sum, masked);
        }
    }
    if do_while_tail {
        // A small bottom-tested (do-while) mixing loop: the shape LLVM's IV
        // analysis *can* govern — the paper found a few such loops (11 of
        // 385) in its suites, so a slice of the corpus carries one too.
        let run_end = b.current_block();
        let mix = b.block("mix");
        let out = b.block("out");
        b.br(mix);
        b.switch_to(mix);
        let j = b.phi(Type::I64, vec![(run_end, Value::const_i64(0))]);
        let h = b.phi(Type::I64, vec![(run_end, sum)]);
        let h1 = b.binop(BinOp::Mul, Type::I64, h, Value::const_i64(31));
        let h2 = b.binop(BinOp::Add, Type::I64, h1, j);
        let h3 = b.binop(BinOp::And, Type::I64, h2, Value::const_i64(0xFFFF_FFFF));
        let j2 = b.binop(BinOp::Add, Type::I64, j, Value::const_i64(1));
        let c = b.icmp(IcmpPred::Slt, Type::I64, j2, Value::const_i64(16));
        b.cond_br(c, mix, out);
        b.add_incoming(j, mix, j2);
        b.add_incoming(h, mix, h3);
        b.switch_to(out);
        b.ret(Some(h3));
    } else {
        b.ret(Some(sum));
    }
    m.add_function(b.finish());
}
