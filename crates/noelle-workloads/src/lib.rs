//! # noelle-workloads
//!
//! The benchmark corpus standing in for the paper's 41 benchmarks from SPEC
//! CPU2017, PARSEC 3.0, and MiBench (DESIGN.md documents the substitution).
//! Each workload is a synthetic program named after its counterpart whose
//! loop/memory/call structure mimics the original's qualitative character:
//!
//! - PARSEC-like programs are loop-centric with hot, often parallelizable
//!   kernels (maps, reductions, stencils, Monte-Carlo draws);
//! - MiBench-like programs mix small kernels with bit-twiddling sequential
//!   recurrences (`crc32` and `sha` stay sequential — the paper calls out
//!   crc as resisting its parallelizers);
//! - SPEC-like programs are dominated by sequential chains with only small
//!   parallel fractions, which is why the paper reports just 1–5% speedups
//!   there.
//!
//! Every workload also carries a couple of uncalled helper functions so the
//! §4.5 dead-function-elimination experiment has something to find.

pub mod kernels;

use noelle_ir::Module;

/// Benchmark suite a workload imitates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// PARSEC 3.0-like.
    Parsec,
    /// MiBench-like.
    MiBench,
    /// SPEC CPU2017-like.
    Spec,
}

impl Suite {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Parsec => "PARSEC",
            Suite::MiBench => "MiBench",
            Suite::Spec => "SPEC CPU2017",
        }
    }
}

/// The kernel shapes a workload is assembled from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kernel {
    MapLight,
    MapHeavy,
    SumLight,
    SumHeavy,
    Min,
    FSum,
    Stencil,
    SeqChain,
    Hist,
    Scratch,
    Monte,
    Branchy,
    CallWork,
    Indirect,
    Pipe,
    SeqChainHeavy,
    BankScratch,
}

/// One synthetic benchmark.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Name (after the benchmark it imitates).
    pub name: &'static str,
    /// Suite it belongs to.
    pub suite: Suite,
    /// Array length driving the problem size.
    pub n: i64,
    /// Kernels composing the program, called in order from `main`.
    pub kernels: &'static [Kernel],
    /// How many times `main` repeats the kernel sequence (sequential-heavy
    /// programs use more passes so input preparation stays cold).
    pub passes: usize,
}

impl Workload {
    /// Materialize the workload as an IR module (deterministic).
    pub fn build(&self) -> Module {
        let mut m = Module::new(self.name);
        let mut fids = Vec::new();
        for (k, kind) in self.kernels.iter().enumerate() {
            let name = format!("kernel{k}");
            let fid = match kind {
                Kernel::MapLight => kernels::add_map(&mut m, &name, false),
                Kernel::MapHeavy => kernels::add_map(&mut m, &name, true),
                Kernel::SumLight => kernels::add_sum(&mut m, &name, false),
                Kernel::SumHeavy => kernels::add_sum(&mut m, &name, true),
                Kernel::Min => kernels::add_min(&mut m, &name),
                Kernel::FSum => kernels::add_fsum(&mut m, &name),
                Kernel::Stencil => kernels::add_stencil(&mut m, &name),
                Kernel::SeqChain => kernels::add_seq_chain(&mut m, &name),
                Kernel::Hist => kernels::add_hist(&mut m, &name),
                Kernel::Scratch => kernels::add_scratch(&mut m, &name),
                Kernel::Monte => kernels::add_monte(&mut m, &name),
                Kernel::Branchy => kernels::add_branchy(&mut m, &name),
                Kernel::CallWork => kernels::add_call_work(&mut m, &name),
                Kernel::Indirect => kernels::add_indirect(&mut m, &name),
                Kernel::Pipe => kernels::add_pipe(&mut m, &name),
                Kernel::SeqChainHeavy => kernels::add_seq_chain_heavy(&mut m, &name),
                Kernel::BankScratch => kernels::add_bank_scratch(&mut m, &name, 16, 10),
            };
            fids.push(fid);
        }
        kernels::add_dead_functions(&mut m, 2, 1);
        kernels::add_main(&mut m, &fids, self.n, self.passes, self.n == 512);
        m
    }
}

use Kernel::*;

/// The full 41-benchmark corpus.
pub fn all() -> Vec<Workload> {
    let w = |name, suite, n, kernels| Workload {
        name,
        suite,
        n,
        kernels,
        passes: if suite == Suite::Spec { 3 } else { 1 },
    };
    let wp = |name, suite, n, kernels, passes| Workload {
        name,
        suite,
        n,
        kernels,
        passes,
    };
    vec![
        // ------------------------- PARSEC-like (13) ------------------------
        w("blackscholes", Suite::Parsec, 512, &[FSum, MapHeavy][..]),
        w("bodytrack", Suite::Parsec, 384, &[Monte, MapLight]),
        wp("canneal", Suite::Parsec, 384, &[Hist, SeqChain][..], 2),
        w("dedup", Suite::Parsec, 384, &[Hist, SumLight]),
        w("facesim", Suite::Parsec, 448, &[Stencil, FSum]),
        w("ferret", Suite::Parsec, 320, &[Indirect, SumHeavy]),
        w("fluidanimate", Suite::Parsec, 512, &[Stencil, MapLight]),
        w("freqmine", Suite::Parsec, 384, &[Hist, SumHeavy]),
        w("raytrace", Suite::Parsec, 448, &[FSum, Pipe]),
        w("streamcluster", Suite::Parsec, 512, &[Min, MapHeavy]),
        w("swaptions", Suite::Parsec, 448, &[SumHeavy, Monte]),
        w("vips", Suite::Parsec, 512, &[MapHeavy, MapLight]),
        w("x264", Suite::Parsec, 384, &[Branchy, MapLight]),
        // ------------------------- MiBench-like (14) -----------------------
        w("basicmath", Suite::MiBench, 384, &[FSum]),
        w("bitcount", Suite::MiBench, 512, &[SumLight, MapLight]),
        w("qsort", Suite::MiBench, 320, &[CallWork, SumLight]),
        w("susan", Suite::MiBench, 448, &[MapHeavy, Branchy]),
        w("jpeg", Suite::MiBench, 384, &[MapHeavy, Hist]),
        w("dijkstra", Suite::MiBench, 384, &[Min, SumLight]),
        w("patricia", Suite::MiBench, 320, &[Hist, SumLight]),
        w("stringsearch", Suite::MiBench, 384, &[Branchy, SumLight]),
        w("blowfish", Suite::MiBench, 384, &[MapLight, SeqChain]),
        wp("sha", Suite::MiBench, 448, &[SeqChain, SumLight][..], 2),
        wp("crc32", Suite::MiBench, 512, &[SeqChain][..], 3),
        w("fft", Suite::MiBench, 448, &[FSum, Stencil]),
        wp("adpcm", Suite::MiBench, 448, &[SeqChain, MapLight][..], 2),
        w("gsm", Suite::MiBench, 384, &[SeqChain, SumHeavy]),
        // ------------------------ SPEC-like (14) ---------------------------
        w("perlbench", Suite::Spec, 448, &[SeqChainHeavy, MapLight]),
        w("mcf", Suite::Spec, 448, &[SeqChainHeavy, Min]),
        w("omnetpp", Suite::Spec, 384, &[SeqChainHeavy, CallWork]),
        w("xalancbmk", Suite::Spec, 384, &[SeqChainHeavy, Hist]),
        w("deepsjeng", Suite::Spec, 448, &[SeqChainHeavy, Branchy]),
        w("leela", Suite::Spec, 384, &[SeqChainHeavy, Monte]),
        w("exchange2", Suite::Spec, 448, &[SeqChainHeavy, SumLight]),
        w("xz", Suite::Spec, 512, &[SeqChainHeavy, SeqChain, SumLight]),
        w("bwaves", Suite::Spec, 448, &[SeqChainHeavy, SumLight]),
        w("cactuBSSN", Suite::Spec, 448, &[SeqChainHeavy, MapLight]),
        w(
            "lbm",
            Suite::Spec,
            512,
            &[SeqChainHeavy, SeqChain, MapLight],
        ),
        w("imagick", Suite::Spec, 448, &[SeqChainHeavy, MapLight]),
        w("nab", Suite::Spec, 384, &[SeqChainHeavy, SumLight]),
        w("wrf", Suite::Spec, 448, &[SeqChainHeavy, Scratch]),
    ]
}

/// The compilation-scale stress workload: an order of magnitude more memory
/// instructions than anything in the 41-benchmark corpus (which mirrors the
/// paper and stays fixed). Bundled for the PDG scaling bench and the
/// parallel-determinism tests, which need a workload where dependence
/// analysis is the dominant cost.
pub fn pdg_stress() -> Workload {
    Workload {
        name: "pdg_stress",
        suite: Suite::Parsec,
        n: 256,
        kernels: &[
            BankScratch,
            BankScratch,
            BankScratch,
            BankScratch,
            MapHeavy,
            Stencil,
            Hist,
            SumHeavy,
        ],
        passes: 1,
    }
}

/// Synthetic compilation-scale module: `n_funcs` defined functions built by
/// cycling the corpus kernel shapes, grouped under per-group caller functions
/// (32 kernels per group) so `main` stays small and the call graph is
/// realistically hierarchical. Deterministic for a given `(n_funcs, seed)` —
/// the seed drives an xorshift64 stream that picks each kernel's shape.
///
/// This is the input for the `pdg_scale` bench: the 41-benchmark corpus
/// mirrors the paper and stays fixed at tens of functions, while the CSR /
/// sharded-solver work targets modules 3–4 orders of magnitude larger.
pub fn scale_module(n_funcs: usize, seed: u64) -> Module {
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::inst::BinOp;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    const GROUP: usize = 32;
    let n_funcs = n_funcs.max(3);
    // Defined functions = kernels + group callers + main, exactly n_funcs:
    // fix the group count first, then the kernel count falls out.
    let g = (n_funcs - 1).div_ceil(GROUP + 1);
    let k = n_funcs - 1 - g;
    let per_group = k.div_ceil(g);

    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };

    let mut m = Module::new("scale");
    let mut fids = Vec::with_capacity(k);
    for i in 0..k {
        let name = format!("k{i}");
        // Weighted toward the banked-scratch shape: it is the regime the
        // PDG's base-object bucketing targets (all-pairs pays quadratic
        // alias queries, bucketing proves the banks disjoint up front), so
        // the scale bench spends its instructions where dependence analysis
        // is the dominant cost — like `pdg_stress`, but per function.
        let fid = match next() % 8 {
            0 => kernels::add_map(&mut m, &name, false),
            1 => kernels::add_sum(&mut m, &name, false),
            2 => kernels::add_bank_scratch(&mut m, &name, 16, 3),
            3 => kernels::add_stencil(&mut m, &name),
            4 => kernels::add_bank_scratch(&mut m, &name, 8, 4),
            5 => kernels::add_hist(&mut m, &name),
            6 => kernels::add_scratch(&mut m, &name),
            _ => kernels::add_bank_scratch(&mut m, &name, 12, 3),
        };
        fids.push(fid);
    }

    let mut groups = Vec::with_capacity(g);
    for (gi, chunk) in fids.chunks(per_group).enumerate() {
        let mut b =
            FunctionBuilder::new(&format!("group{gi}"), kernels::kernel_params(), Type::I64);
        let e = b.entry_block();
        b.switch_to(e);
        let (a, bb, n) = (b.arg(0), b.arg(1), b.arg(2));
        let mut sum = Value::const_i64(0);
        for &fid in chunk {
            let r = b.call(fid, vec![a, bb, n], Type::I64);
            sum = b.binop(BinOp::Add, Type::I64, sum, r);
        }
        b.ret(Some(sum));
        groups.push(m.add_function(b.finish()));
    }

    kernels::add_main(&mut m, &groups, 64, 1, false);
    m
}

/// The workloads of one suite.
pub fn suite(s: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == s).collect()
}

/// Look up one workload by name. Resolves the 41-benchmark corpus plus the
/// bundled `pdg_stress` scaling workload (kept out of [`all`] so the corpus
/// mirrors the paper's benchmark count).
pub fn by_name(name: &str) -> Option<Workload> {
    if name == "pdg_stress" {
        return Some(pdg_stress());
    }
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_runtime::{run_module, RunConfig};

    #[test]
    fn corpus_has_41_benchmarks_across_three_suites() {
        let ws = all();
        assert_eq!(ws.len(), 41);
        assert_eq!(suite(Suite::Parsec).len(), 13);
        assert_eq!(suite(Suite::MiBench).len(), 14);
        assert_eq!(suite(Suite::Spec).len(), 14);
        // Unique names.
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 41);
        assert!(by_name("crc32").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_workload_builds_verifies_and_runs() {
        for w in all() {
            let m = w.build();
            noelle_ir::verifier::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} does not verify: {e}", w.name));
            let r = run_module(&m, "main", &[], &RunConfig::default())
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
            assert!(r.ret_i64().is_some(), "{} returned no value", w.name);
            assert!(r.cycles > 1000, "{} did too little work", w.name);
        }
    }

    #[test]
    fn pdg_stress_builds_verifies_and_dwarfs_the_corpus() {
        let m = pdg_stress().build();
        noelle_ir::verifier::verify_module(&m).expect("pdg_stress verifies");
        let r = run_module(&m, "main", &[], &RunConfig::default()).expect("pdg_stress runs");
        assert!(r.ret_i64().is_some());
        let mem_insts = |m: &Module| -> usize {
            m.func_ids()
                .map(|fid| {
                    let f = m.func(fid);
                    f.inst_ids()
                        .into_iter()
                        .filter(|&i| {
                            matches!(
                                f.inst(i),
                                noelle_ir::inst::Inst::Load { .. }
                                    | noelle_ir::inst::Inst::Store { .. }
                            )
                        })
                        .count()
                })
                .sum()
        };
        let stress = mem_insts(&m);
        let largest_corpus = all().iter().map(|w| mem_insts(&w.build())).max().unwrap();
        assert!(
            stress >= 10 * largest_corpus,
            "stress {stress} vs corpus max {largest_corpus}"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let w = by_name("blackscholes").unwrap();
        let a = noelle_ir::printer::print_module(&w.build());
        let b = noelle_ir::printer::print_module(&w.build());
        assert_eq!(a, b);
        let r1 = run_module(&w.build(), "main", &[], &RunConfig::default()).unwrap();
        let r2 = run_module(&w.build(), "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(r1.ret_i64(), r2.ret_i64());
        assert_eq!(r1.cycles, r2.cycles);
    }

    #[test]
    fn scale_module_hits_requested_size_and_verifies() {
        for req in [3, 50, 200] {
            let m = scale_module(req, 7);
            noelle_ir::verifier::verify_module(&m)
                .unwrap_or_else(|e| panic!("scale_module({req}) does not verify: {e}"));
            let defined = m
                .func_ids()
                .filter(|&fid| !m.func(fid).is_declaration())
                .count();
            assert_eq!(defined, req, "scale_module({req}) made {defined} functions");
        }
        // Deterministic for a fixed (n_funcs, seed); seed changes the mix.
        let a = noelle_ir::printer::print_module(&scale_module(50, 7));
        let b = noelle_ir::printer::print_module(&scale_module(50, 7));
        assert_eq!(a, b);
        let c = noelle_ir::printer::print_module(&scale_module(50, 8));
        assert_ne!(a, c);
        // The generated program actually runs.
        let r = run_module(&scale_module(50, 7), "main", &[], &RunConfig::default())
            .expect("scale module runs");
        assert!(r.ret_i64().is_some());
    }

    #[test]
    fn workloads_round_trip_through_text() {
        for w in [by_name("crc32").unwrap(), by_name("ferret").unwrap()] {
            let m = w.build();
            let text = noelle_ir::printer::print_module(&m);
            let m2 = noelle_ir::parser::parse_module(&text)
                .unwrap_or_else(|e| panic!("{} does not reparse: {e}", w.name));
            let r1 = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
            let r2 = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
            assert_eq!(r1.ret_i64(), r2.ret_i64());
        }
    }
}
