//! # noelle-store
//!
//! A durable, content-addressed store of per-function analysis artifacts —
//! the on-disk half of the NOELLE proposition (Matni et al., CGO 2022) that
//! expensive whole-program abstractions are computed *once* and shared by
//! many tools. The in-process `Noelle` manager already shares PDG
//! partitions, points-to rows, and loop forests across requests; this crate
//! makes that cache survive the process, so a restarted daemon (or a second
//! replica pointed at the same directory) warm-starts instead of
//! recomputing.
//!
//! ## Addressing
//!
//! Artifacts are addressed by *content*, never by name: a [`StoreKey`] is a
//! 128-bit hash over the store format revision, the artifact kind, the
//! alias-analysis tier, the module's globals fingerprint, a module-wide
//! code fingerprint, and the owning function's
//! `Function::content_fingerprint`. PDG partitions and points-to rows are
//! interprocedural — a partition embeds callee mod/ref summaries and global
//! points-to facts — so their keys include the module-wide code
//! fingerprint: any edit anywhere misses (falling back to the in-memory
//! incremental engine), while an identical module always hits. Loop forests
//! are function-local and are keyed by the function fingerprint alone, so
//! they survive edits to *other* functions even across a restart.
//!
//! ## Durability
//!
//! The store is a directory of append-only segment files (`seg-N.nsg`).
//! Writes are batched by a background thread and each batch is published
//! atomically: written to a temp file, fsynced, then renamed into place —
//! a reader (or a crashed writer) never observes a half-written segment.
//! Every entry carries a CRC-32 over its header and payload; a truncated or
//! bit-flipped entry is detected on open (or read) and treated exactly like
//! a miss. Corruption can cost a recompute, never a wrong answer: the
//! payload codecs ([`noelle_ir::bytes`]) are total, and anything that fails
//! to decode is recomputed and overwritten.
//!
//! [`Store::fsck`] reports per-segment health (live, superseded, corrupt)
//! and [`Store::compact`] rewrites the live entries into a single fresh
//! segment, dropping garbage.

pub mod artifact;
pub mod crc;
pub mod key;
pub mod segment;
pub mod store;

pub use key::{ArtifactKind, KeyCtx, StoreKey, STORE_REVISION};
pub use store::{FsckReport, SegmentReport, Store, StoreStats};
