//! CRC-32 (IEEE 802.3 polynomial), table-driven, built at compile time.
//!
//! Guards every store entry against truncation and bit flips. A 32-bit
//! checksum is not cryptographic — the store's *addressing* integrity comes
//! from the 128-bit content keys — but it reliably catches the failure
//! modes a local disk actually exhibits: torn tail writes, zeroed pages,
//! and single-bit flips.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xffff_ffff`).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xffff_ffff, bytes) ^ 0xffff_ffff
}

/// Fold more bytes into a running (pre-xorout) CRC state. Start from
/// `0xffff_ffff` and finish by xoring with `0xffff_ffff`.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = TABLE[((state ^ u32::from(b)) & 0xff) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut state = 0xffff_ffff;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xffff_ffff, oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}.{bit} undetected");
            }
        }
    }
}
