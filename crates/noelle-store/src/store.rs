//! The store proper: an indexed directory of segments plus a background
//! writer.
//!
//! Reads are synchronous and lock-light (an `RwLock`ed index probe plus one
//! `pread`); writes are fire-and-forget — [`Store::put`] hands the payload
//! to a writer thread that batches entries and publishes each batch as an
//! atomically renamed segment. The writer publishes eagerly (a short idle
//! tick flushes any pending batch), so even a daemon killed by SIGTERM —
//! which std Rust cannot catch — loses at most the last few milliseconds
//! of writes, and never corrupts what was already published.

use crate::artifact;
use crate::key::{ArtifactKind, StoreKey};
use crate::segment::{
    parse_segment_file_name, read_payload, scan_segment, segment_file_name, write_segment,
    SegmentEntry,
};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Publish a pending batch after this many payload bytes.
const BATCH_BYTES: usize = 4 << 20;
/// ... or this many entries.
const BATCH_ENTRIES: usize = 512;
/// ... or this much idle time with a non-empty batch.
const IDLE_FLUSH: Duration = Duration::from_millis(20);

#[derive(Clone, Copy, Debug)]
struct EntryRef {
    seg: u64,
    entry: SegmentEntry,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

struct Shared {
    dir: PathBuf,
    index: RwLock<HashMap<StoreKey, EntryRef>>,
    next_seg: AtomicU64,
    bytes_on_disk: AtomicU64,
    counters: Counters,
    /// Held while publishing or compacting, so segment files never appear
    /// or vanish under a concurrent publish.
    publish: Mutex<()>,
}

enum Msg {
    Put(StoreKey, ArtifactKind, Vec<u8>),
    Flush(Sender<()>),
}

/// Point-in-time store statistics (all counters are since-open).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreStats {
    /// Distinct keys currently readable.
    pub entries: u64,
    /// Total size of all segment files.
    pub bytes_on_disk: u64,
    /// `get` calls served from disk.
    pub hits: u64,
    /// `get` calls that found nothing (or found corruption).
    pub misses: u64,
    /// Entries durably published.
    pub writes: u64,
    /// Entries rejected by CRC/framing checks (open-time and read-time).
    pub corrupt: u64,
}

/// A durable content-addressed artifact store rooted at one directory.
///
/// Cheap to share: wrap in an `Arc` and hand clones of that to every
/// session. Dropping the last handle flushes and joins the writer.
pub struct Store {
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Msg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl Store {
    /// Open (creating if absent) the store at `dir`: scan every segment,
    /// build the in-memory index, and start the background writer.
    ///
    /// # Errors
    /// Propagates I/O failures creating or listing the directory. Corrupt
    /// segment *contents* are counted, not raised.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut corrupt = 0u64;
        let mut bytes = 0u64;
        let mut max_seg = 0u64;
        let mut seg_ids: Vec<u64> = Vec::new();
        for e in fs::read_dir(&dir)? {
            let e = e?;
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = parse_segment_file_name(name) {
                seg_ids.push(id);
            } else if name.starts_with(".tmp-") {
                // Leftover from a crashed publish: never renamed, so never
                // observed — safe to delete.
                let _ = fs::remove_file(e.path());
            }
        }
        // Later segments supersede earlier ones for duplicate keys.
        seg_ids.sort_unstable();
        for id in seg_ids {
            let scan = scan_segment(&dir.join(segment_file_name(id)))?;
            corrupt += scan.corrupt as u64;
            bytes += scan.bytes;
            max_seg = max_seg.max(id + 1);
            for entry in scan.entries {
                index.insert(entry.key, EntryRef { seg: id, entry });
            }
        }
        let shared = Arc::new(Shared {
            dir,
            index: RwLock::new(index),
            next_seg: AtomicU64::new(max_seg),
            bytes_on_disk: AtomicU64::new(bytes),
            counters: Counters {
                corrupt: AtomicU64::new(corrupt),
                ..Counters::default()
            },
            publish: Mutex::new(()),
        });
        let (tx, rx) = mpsc::channel();
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("noelle-store-writer".into())
            .spawn(move || writer_loop(&writer_shared, &rx))
            .expect("spawn store writer");
        Ok(Store {
            shared,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Fetch the payload stored under `key`, re-verifying its CRC. Any
    /// failure — absent key, vanished segment, bit rot since open — is a
    /// miss; a read can degrade performance but never answers wrongly.
    pub fn get(&self, key: StoreKey) -> Option<Vec<u8>> {
        let r = {
            let index = self.shared.index.read().expect("store index poisoned");
            index.get(&key).copied()
        };
        let Some(r) = r else {
            self.shared.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let path = self.shared.dir.join(segment_file_name(r.seg));
        match read_payload(&path, &r.entry) {
            Ok(Some(payload)) => {
                self.shared.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Ok(None) | Err(_) => {
                // Degraded since the open-time scan: drop the index entry
                // so we stop probing it, and report a miss.
                self.shared
                    .index
                    .write()
                    .expect("store index poisoned")
                    .remove(&key);
                self.shared.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.shared.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Queue `payload` for durable publication under `key`. Returns
    /// immediately; the background writer batches and publishes. A key
    /// that is already stored is skipped (content-addressing makes
    /// re-writes byte-identical, so there is nothing to update).
    pub fn put(&self, key: StoreKey, kind: ArtifactKind, payload: Vec<u8>) {
        if self
            .shared
            .index
            .read()
            .expect("store index poisoned")
            .contains_key(&key)
        {
            return;
        }
        if let Some(tx) = &*self.tx.lock().expect("store tx poisoned") {
            let _ = tx.send(Msg::Put(key, kind, payload));
        }
    }

    /// Block until every `put` issued before this call is durably
    /// published.
    pub fn flush(&self) {
        let ack = {
            let tx = self.tx.lock().expect("store tx poisoned");
            let Some(tx) = &*tx else { return };
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(Msg::Flush(ack_tx)).is_err() {
                return;
            }
            ack_rx
        };
        let _ = ack.recv();
    }

    /// Current statistics.
    pub fn stats(&self) -> StoreStats {
        let entries = self
            .shared
            .index
            .read()
            .expect("store index poisoned")
            .len() as u64;
        StoreStats {
            entries,
            bytes_on_disk: self.shared.bytes_on_disk.load(Ordering::Relaxed),
            hits: self.shared.counters.hits.load(Ordering::Relaxed),
            misses: self.shared.counters.misses.load(Ordering::Relaxed),
            writes: self.shared.counters.writes.load(Ordering::Relaxed),
            corrupt: self.shared.counters.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Rewrite all live, decodable entries into one fresh segment and
    /// delete every older segment — dropping superseded duplicates,
    /// CRC-rejected entries, foreign-revision files, and payloads that no
    /// longer decode. Returns `(entries_kept, bytes_reclaimed)`.
    ///
    /// # Errors
    /// Propagates I/O failures; on error the old segments are left intact.
    pub fn compact(&self) -> io::Result<(usize, u64)> {
        self.flush();
        let _publish = self.shared.publish.lock().expect("store publish poisoned");
        let mut index = self.shared.index.write().expect("store index poisoned");
        let mut batch: Vec<(StoreKey, u8, Vec<u8>)> = Vec::new();
        let mut keys: Vec<StoreKey> = index.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let r = index[&key];
            let path = self.shared.dir.join(segment_file_name(r.seg));
            if let Ok(Some(payload)) = read_payload(&path, &r.entry) {
                let decodes = ArtifactKind::from_tag(r.entry.kind)
                    .is_some_and(|kind| artifact::validate(kind, &payload));
                if decodes {
                    batch.push((key, r.entry.kind, payload));
                }
            }
        }
        let before = self.shared.bytes_on_disk.load(Ordering::Relaxed);
        let id = self.shared.next_seg.fetch_add(1, Ordering::Relaxed);
        let (path, bytes) = write_segment(&self.shared.dir, id, &batch)?;
        let scan = scan_segment(&path)?;
        index.clear();
        for entry in scan.entries {
            index.insert(entry.key, EntryRef { seg: id, entry });
        }
        for e in fs::read_dir(&self.shared.dir)? {
            let e = e?;
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if parse_segment_file_name(name).is_some_and(|other| other != id) {
                let _ = fs::remove_file(e.path());
            }
        }
        self.shared.bytes_on_disk.store(bytes, Ordering::Relaxed);
        Ok((batch.len(), before.saturating_sub(bytes)))
    }

    /// Offline integrity check of the store directory at `dir`: walks every
    /// segment without opening a store (no writer, no counters touched).
    ///
    /// # Errors
    /// Propagates I/O failures listing or reading the directory.
    pub fn fsck(dir: &Path) -> io::Result<FsckReport> {
        let mut seg_ids: Vec<u64> = Vec::new();
        let mut temp_files = 0usize;
        for e in fs::read_dir(dir)? {
            let e = e?;
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = parse_segment_file_name(name) {
                seg_ids.push(id);
            } else if name.starts_with(".tmp-") {
                temp_files += 1;
            }
        }
        seg_ids.sort_unstable();
        let mut live: HashMap<StoreKey, (u64, ArtifactKind, bool)> = HashMap::new();
        let mut segments = Vec::new();
        let mut superseded_total = 0usize;
        let mut unknown_kind = 0usize;
        for id in seg_ids {
            let path = dir.join(segment_file_name(id));
            let scan = scan_segment(&path)?;
            let mut entries = 0usize;
            for entry in &scan.entries {
                entries += 1;
                match ArtifactKind::from_tag(entry.kind) {
                    Some(kind) => {
                        let payload = read_payload(&path, entry)?.unwrap_or_default();
                        let ok = artifact::validate(kind, &payload);
                        if live.insert(entry.key, (id, kind, ok)).is_some() {
                            superseded_total += 1;
                        }
                    }
                    None => unknown_kind += 1,
                }
            }
            segments.push(SegmentReport {
                file: segment_file_name(id),
                entries,
                corrupt: scan.corrupt,
                bytes: scan.bytes,
            });
        }
        let mut live_by_kind = [
            (ArtifactKind::PdgPartition, 0usize),
            (ArtifactKind::PointsToRows, 0),
            (ArtifactKind::LoopForest, 0),
        ];
        let mut undecodable = 0usize;
        for &(_, kind, ok) in live.values() {
            if !ok {
                undecodable += 1;
                continue;
            }
            for slot in &mut live_by_kind {
                if slot.0 == kind {
                    slot.1 += 1;
                }
            }
        }
        Ok(FsckReport {
            segments,
            live: live.len() - undecodable,
            superseded: superseded_total,
            unknown_kind,
            undecodable,
            temp_files,
            live_by_kind,
        })
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Closing the channel makes the writer publish its final batch and
        // exit; join so the publish completes before `open` could rescan.
        self.tx.lock().expect("store tx poisoned").take();
        if let Some(writer) = self.writer.lock().expect("store writer poisoned").take() {
            let _ = writer.join();
        }
    }
}

/// Health summary of one segment file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SegmentReport {
    /// File name within the store directory.
    pub file: String,
    /// Well-framed, CRC-valid entries.
    pub entries: usize,
    /// CRC/framing rejections.
    pub corrupt: usize,
    /// File size.
    pub bytes: u64,
}

/// Result of [`Store::fsck`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FsckReport {
    /// Per-segment health, in segment order.
    pub segments: Vec<SegmentReport>,
    /// Distinct keys whose newest entry is valid and decodable.
    pub live: usize,
    /// Older duplicates shadowed by a newer segment (compact drops them).
    pub superseded: usize,
    /// CRC-valid entries with an unrecognized kind tag (orphans).
    pub unknown_kind: usize,
    /// CRC-valid entries whose payload fails its artifact codec.
    pub undecodable: usize,
    /// Leftover `.tmp-*` files from interrupted publishes.
    pub temp_files: usize,
    /// Live-entry counts per artifact kind.
    pub live_by_kind: [(ArtifactKind, usize); 3],
}

impl FsckReport {
    /// Total CRC/framing rejections across segments.
    pub fn corrupt(&self) -> usize {
        self.segments.iter().map(|s| s.corrupt).sum()
    }

    /// Total bytes on disk across segments.
    pub fn bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// True when nothing needs attention: no corruption, no orphans, no
    /// garbage worth compacting.
    pub fn clean(&self) -> bool {
        self.corrupt() == 0
            && self.superseded == 0
            && self.unknown_kind == 0
            && self.undecodable == 0
            && self.temp_files == 0
    }
}

fn writer_loop(shared: &Shared, rx: &Receiver<Msg>) {
    let mut batch: Vec<(StoreKey, u8, Vec<u8>)> = Vec::new();
    let mut batch_bytes = 0usize;
    loop {
        let msg = if batch.is_empty() {
            rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
        } else {
            rx.recv_timeout(IDLE_FLUSH)
        };
        match msg {
            Ok(Msg::Put(key, kind, payload)) => {
                batch_bytes += payload.len();
                batch.push((key, kind as u8, payload));
                if batch.len() >= BATCH_ENTRIES || batch_bytes >= BATCH_BYTES {
                    publish(shared, &mut batch);
                    batch_bytes = 0;
                }
            }
            Ok(Msg::Flush(ack)) => {
                publish(shared, &mut batch);
                batch_bytes = 0;
                let _ = ack.send(());
            }
            Err(RecvTimeoutError::Timeout) => {
                publish(shared, &mut batch);
                batch_bytes = 0;
            }
            Err(RecvTimeoutError::Disconnected) => {
                publish(shared, &mut batch);
                return;
            }
        }
    }
}

fn publish(shared: &Shared, batch: &mut Vec<(StoreKey, u8, Vec<u8>)>) {
    if batch.is_empty() {
        return;
    }
    // Drop keys that became stored since they were queued (or are queued
    // twice in this batch): content-addressing makes rewrites pointless.
    let mut deduped: Vec<(StoreKey, u8, Vec<u8>)> = Vec::with_capacity(batch.len());
    {
        let index = shared.index.read().expect("store index poisoned");
        for (key, kind, payload) in batch.drain(..) {
            if !index.contains_key(&key) && !deduped.iter().any(|(k, _, _)| *k == key) {
                deduped.push((key, kind, payload));
            }
        }
    }
    if deduped.is_empty() {
        return;
    }
    let _publish = shared.publish.lock().expect("store publish poisoned");
    let id = shared.next_seg.fetch_add(1, Ordering::Relaxed);
    let Ok((path, bytes)) = write_segment(&shared.dir, id, &deduped) else {
        return; // disk trouble: writes are a cache, losing them is safe
    };
    let Ok(scan) = scan_segment(&path) else {
        return;
    };
    let mut index = shared.index.write().expect("store index poisoned");
    for entry in scan.entries {
        index.insert(entry.key, EntryRef { seg: id, entry });
    }
    shared.bytes_on_disk.fetch_add(bytes, Ordering::Relaxed);
    shared
        .counters
        .writes
        .fetch_add(deduped.len() as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyCtx;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("noelle-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    /// A tiny valid loop-forest payload (empty forest).
    fn forest_payload() -> Vec<u8> {
        use noelle_ir::loops::LoopForest;
        use noelle_ir::parser::parse_module;
        let m = parse_module(
            r#"
module "t" {
define void @f() {
entry:
  ret void
}
}
"#,
        )
        .unwrap();
        let f = &m.functions()[0];
        let cfg = noelle_ir::cfg::Cfg::new(f);
        let dom = noelle_ir::dom::DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dom).encode()
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp_dir("reopen");
        let key = KeyCtx::forest_key(7);
        let payload = forest_payload();
        {
            let store = Store::open(&dir).unwrap();
            store.put(key, ArtifactKind::LoopForest, payload.clone());
            store.flush();
            assert_eq!(store.get(key).unwrap(), payload);
            let s = store.stats();
            assert_eq!((s.entries, s.hits, s.writes), (1, 1, 1));
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get(key).unwrap(), payload);
        assert_eq!(store.stats().corrupt, 0);
        assert!(store.stats().bytes_on_disk > 0);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_puts_write_once() {
        let dir = tmp_dir("dedup");
        let store = Store::open(&dir).unwrap();
        let key = KeyCtx::forest_key(1);
        for _ in 0..5 {
            store.put(key, ArtifactKind::LoopForest, forest_payload());
        }
        store.flush();
        for _ in 0..5 {
            store.put(key, ArtifactKind::LoopForest, forest_payload());
        }
        store.flush();
        let s = store.stats();
        assert_eq!((s.entries, s.writes), (1, 1));
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_detected_on_reopen_and_on_read() {
        let dir = tmp_dir("flip");
        let k1 = KeyCtx::forest_key(1);
        let k2 = KeyCtx::forest_key(2);
        {
            let store = Store::open(&dir).unwrap();
            store.put(k1, ArtifactKind::LoopForest, forest_payload());
            store.flush();
            store.put(k2, ArtifactKind::LoopForest, forest_payload());
            store.flush();
        }
        // Flip one payload byte in the first segment.
        let seg0 = dir.join(segment_file_name(0));
        let mut data = fs::read(&seg0).unwrap();
        let n = data.len();
        data[n - 1] ^= 0x01;
        fs::write(&seg0, &data).unwrap();
        let store = Store::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.corrupt, 1);
        assert_eq!(s.entries, 1);
        assert!(store.get(k1).is_none());
        assert!(store.get(k2).is_some());
        // Degrade the second segment *after* open: read-time CRC catches it.
        drop(store);
        let seg1 = dir.join(segment_file_name(1));
        let mut data = fs::read(&seg1).unwrap();
        let n = data.len();
        let store_reopened = {
            let s = Store::open(&dir).unwrap();
            data[n - 1] ^= 0x01;
            fs::write(&seg1, &data).unwrap();
            s
        };
        assert!(store_reopened.get(k2).is_none());
        assert!(store_reopened.stats().corrupt >= 1);
        drop(store_reopened);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_merges_segments_and_drops_garbage() {
        let dir = tmp_dir("compact");
        let store = Store::open(&dir).unwrap();
        for i in 0..10u64 {
            store.put(
                KeyCtx::forest_key(i),
                ArtifactKind::LoopForest,
                forest_payload(),
            );
            store.flush(); // one segment per entry
        }
        assert!(fs::read_dir(&dir).unwrap().count() >= 10);
        let (kept, _reclaimed) = store.compact().unwrap();
        assert_eq!(kept, 10);
        assert_eq!(
            fs::read_dir(&dir)
                .unwrap()
                .filter(|e| {
                    parse_segment_file_name(e.as_ref().unwrap().file_name().to_str().unwrap())
                        .is_some()
                })
                .count(),
            1
        );
        for i in 0..10u64 {
            assert!(store.get(KeyCtx::forest_key(i)).is_some(), "key {i} lost");
        }
        let report = Store::fsck(store.dir()).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.live, 10);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsck_reports_corruption_and_compact_heals() {
        let dir = tmp_dir("fsck");
        {
            let store = Store::open(&dir).unwrap();
            store.put(
                KeyCtx::forest_key(1),
                ArtifactKind::LoopForest,
                forest_payload(),
            );
            store.flush();
            store.put(
                KeyCtx::forest_key(2),
                ArtifactKind::LoopForest,
                forest_payload(),
            );
            store.flush();
        }
        let seg0 = dir.join(segment_file_name(0));
        let mut data = fs::read(&seg0).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xff;
        fs::write(&seg0, &data).unwrap();
        let report = Store::fsck(&dir).unwrap();
        assert_eq!(report.corrupt(), 1);
        assert_eq!(report.live, 1);
        assert!(!report.clean());
        let store = Store::open(&dir).unwrap();
        store.compact().unwrap();
        drop(store);
        let healed = Store::fsck(&dir).unwrap();
        assert!(healed.clean(), "{healed:?}");
        assert_eq!(healed.live, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_miss_counts() {
        let dir = tmp_dir("miss");
        let store = Store::open(&dir).unwrap();
        assert!(store.get(KeyCtx::forest_key(99)).is_none());
        assert_eq!(store.stats().misses, 1);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }
}
