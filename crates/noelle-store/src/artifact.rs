//! Typed encode/decode for each artifact kind.
//!
//! Thin shims over the codecs that live next to each data structure
//! (`DepGraph` in noelle-pdg, points-to rows in noelle-analysis, loop
//! forests in noelle-ir): this module only fixes the node numbering and
//! gives the store one `validate` entry point per kind for fsck/compact.

use crate::key::ArtifactKind;
use noelle_analysis::alias::{decode_rows, encode_rows, PointsToRows};
use noelle_ir::bytes::DecodeError;
use noelle_ir::inst::InstId;
use noelle_ir::loops::LoopForest;
use noelle_pdg::depgraph::DepGraph;

/// Encode one function's PDG partition.
pub fn encode_partition(g: &DepGraph<InstId>) -> Vec<u8> {
    g.encode_with(|i| u64::from(i.0))
}

/// Decode a PDG partition; returns it frozen (CSR form).
///
/// # Errors
/// Any malformed input is a [`DecodeError`] — the store treats it as a miss.
pub fn decode_partition(bytes: &[u8]) -> Result<DepGraph<InstId>, DecodeError> {
    DepGraph::decode_with(bytes, |v| {
        u32::try_from(v)
            .map(InstId)
            .map_err(|_| DecodeError::new("pdg partition: inst id"))
    })
}

/// Encode one function's points-to rows.
pub fn encode_points_to(rows: &PointsToRows) -> Vec<u8> {
    encode_rows(rows)
}

/// Decode points-to rows.
///
/// # Errors
/// Any malformed input is a [`DecodeError`] — the store treats it as a miss.
pub fn decode_points_to(bytes: &[u8]) -> Result<PointsToRows, DecodeError> {
    decode_rows(bytes)
}

/// Encode one function's loop forest.
pub fn encode_forest(forest: &LoopForest) -> Vec<u8> {
    forest.encode()
}

/// Decode a loop forest.
///
/// # Errors
/// Any malformed input is a [`DecodeError`] — the store treats it as a miss.
pub fn decode_forest(bytes: &[u8]) -> Result<LoopForest, DecodeError> {
    LoopForest::decode(bytes)
}

/// True when `payload` decodes cleanly as `kind` — the deep check fsck and
/// compact apply on top of the CRC.
pub fn validate(kind: ArtifactKind, payload: &[u8]) -> bool {
    match kind {
        ArtifactKind::PdgPartition => decode_partition(payload).is_ok(),
        ArtifactKind::PointsToRows => decode_points_to(payload).is_ok(),
        ArtifactKind::LoopForest => decode_forest(payload).is_ok(),
    }
}
