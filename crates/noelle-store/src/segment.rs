//! Append-only segment files.
//!
//! A segment (`seg-N.nsg`) is a batch of store entries published
//! atomically: the writer composes the whole file under a dot-prefixed temp
//! name, fsyncs it, then renames it into place and fsyncs the directory.
//! A reader therefore only ever sees complete, named segments — a crash
//! mid-publish leaves at worst an ignored temp file.
//!
//! Layout:
//!
//! ```text
//! file   := header entry*
//! header := "NSG1" revision:u32le
//! entry  := magic:u32le kind:u8 key:[u8;16] len:u32le crc:u32le payload
//! ```
//!
//! `crc` is CRC-32 over `kind ‖ key ‖ payload`. Scanning walks entries in
//! order; a CRC mismatch with an intact header skips just that entry, while
//! anything that breaks the framing (bad magic, impossible length, torn
//! tail) abandons the rest of the segment — after the framing is lost there
//! is no trustworthy way to resynchronize, and treating the tail as corrupt
//! only costs recomputation.

use crate::crc::crc32_update;
use crate::key::{StoreKey, STORE_REVISION};
use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"NSG1";
/// Per-entry magic (also a resync sentinel for fsck reporting).
pub const ENTRY_MAGIC: u32 = 0xa11c_e147;
const FILE_HEADER: usize = 8;
const ENTRY_HEADER: usize = 4 + 1 + 16 + 4 + 4;
/// Upper bound on a single payload; anything larger is framing corruption.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// The file name of segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id}.nsg")
}

/// Parse a segment id back out of a file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".nsg")?
        .parse()
        .ok()
}

fn entry_crc(kind: u8, key: &StoreKey, payload: &[u8]) -> u32 {
    let mut state = 0xffff_ffff;
    state = crc32_update(state, &[kind]);
    state = crc32_update(state, &key.0);
    state = crc32_update(state, payload);
    state ^ 0xffff_ffff
}

/// One well-framed entry found by [`scan_segment`] (its CRC verified).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentEntry {
    /// Raw artifact-kind tag byte.
    pub kind: u8,
    /// Content address.
    pub key: StoreKey,
    /// Byte offset of the payload within the segment file.
    pub payload_offset: u64,
    /// Payload length.
    pub len: u32,
    /// CRC recorded in the entry header (already verified by the scan).
    pub crc: u32,
}

/// Result of scanning one segment file.
#[derive(Clone, Debug, Default)]
pub struct SegmentScan {
    /// Entries whose framing and CRC both checked out, in file order.
    pub entries: Vec<SegmentEntry>,
    /// Entries (or unwalkable tails) rejected by CRC or framing checks.
    pub corrupt: usize,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// Atomically publish `batch` as segment `id` inside `dir`. Returns the
/// final path and the file size.
///
/// # Errors
/// Propagates I/O failures; on error the target name is never created.
pub fn write_segment(
    dir: &Path,
    id: u64,
    batch: &[(StoreKey, u8, Vec<u8>)],
) -> io::Result<(PathBuf, u64)> {
    let tmp = dir.join(format!(".tmp-{}", segment_file_name(id)));
    let dst = dir.join(segment_file_name(id));
    let mut buf = Vec::with_capacity(
        FILE_HEADER
            + batch
                .iter()
                .map(|(_, _, p)| ENTRY_HEADER + p.len())
                .sum::<usize>(),
    );
    buf.extend_from_slice(&SEGMENT_MAGIC);
    buf.extend_from_slice(&STORE_REVISION.to_le_bytes());
    for (key, kind, payload) in batch {
        buf.extend_from_slice(&ENTRY_MAGIC.to_le_bytes());
        buf.push(*kind);
        buf.extend_from_slice(&key.0);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&entry_crc(*kind, key, payload).to_le_bytes());
        buf.extend_from_slice(payload);
    }
    let bytes = buf.len() as u64;
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &dst)?;
    // Make the rename itself durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok((dst, bytes))
}

/// Scan a segment file: verify framing and every entry's CRC.
///
/// # Errors
/// Only I/O failures are errors; corruption is *reported*, not raised.
pub fn scan_segment(path: &Path) -> io::Result<SegmentScan> {
    let data = fs::read(path)?;
    let mut scan = SegmentScan {
        bytes: data.len() as u64,
        ..SegmentScan::default()
    };
    if data.len() < FILE_HEADER || data[..4] != SEGMENT_MAGIC {
        scan.corrupt += 1;
        return Ok(scan);
    }
    // A foreign revision is not corruption — just entries this build will
    // never address (their keys bake in the revision). Skip the whole file.
    let revision = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if revision != STORE_REVISION {
        return Ok(scan);
    }
    let mut pos = FILE_HEADER;
    while pos < data.len() {
        if data.len() - pos < ENTRY_HEADER {
            scan.corrupt += 1; // torn tail
            break;
        }
        let magic = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
        let kind = data[pos + 4];
        let key = StoreKey(data[pos + 5..pos + 21].try_into().expect("16 bytes"));
        let len = u32::from_le_bytes(data[pos + 21..pos + 25].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(data[pos + 25..pos + 29].try_into().expect("4 bytes"));
        let payload_offset = pos + ENTRY_HEADER;
        if magic != ENTRY_MAGIC || len > MAX_PAYLOAD || data.len() - payload_offset < len as usize {
            scan.corrupt += 1; // framing lost: no way to resync
            break;
        }
        let payload = &data[payload_offset..payload_offset + len as usize];
        if entry_crc(kind, &key, payload) == crc {
            scan.entries.push(SegmentEntry {
                kind,
                key,
                payload_offset: payload_offset as u64,
                len,
                crc,
            });
        } else {
            scan.corrupt += 1; // bit flip inside one entry: skip just it
        }
        pos = payload_offset + len as usize;
    }
    Ok(scan)
}

/// Read one entry's payload back and re-verify its CRC (the file may have
/// degraded since the open-time scan). Returns `Ok(None)` on a CRC
/// mismatch — the caller treats it as a miss.
///
/// # Errors
/// Propagates I/O failures (missing segment, short read).
pub fn read_payload(path: &Path, entry: &SegmentEntry) -> io::Result<Option<Vec<u8>>> {
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(entry.payload_offset))?;
    let mut payload = vec![0u8; entry.len as usize];
    f.read_exact(&mut payload)?;
    if entry_crc(entry.kind, &entry.key, &payload) == entry.crc {
        Ok(Some(payload))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("noelle-store-seg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn key(b: u8) -> StoreKey {
        StoreKey([b; 16])
    }

    #[test]
    fn write_then_scan_round_trips() {
        let dir = tmp_dir("roundtrip");
        let batch = vec![
            (key(1), 1u8, vec![10, 20, 30]),
            (key(2), 2u8, Vec::new()),
            (key(3), 3u8, vec![0; 1000]),
        ];
        let (path, bytes) = write_segment(&dir, 0, &batch).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.corrupt, 0);
        assert_eq!(scan.entries.len(), 3);
        for (entry, (k, kind, payload)) in scan.entries.iter().zip(&batch) {
            assert_eq!(entry.key, *k);
            assert_eq!(entry.kind, *kind);
            let got = read_payload(&path, entry).unwrap().unwrap();
            assert_eq!(&got, payload);
        }
        // No temp file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_payload_skips_only_that_entry() {
        let dir = tmp_dir("bitflip");
        let batch = vec![
            (key(1), 1u8, vec![1, 2, 3, 4]),
            (key(2), 1u8, vec![5, 6, 7, 8]),
        ];
        let (path, _) = write_segment(&dir, 0, &batch).unwrap();
        let mut data = fs::read(&path).unwrap();
        // Flip a bit in the first payload (last 4 bytes of entry 0 region).
        let first_payload_at = 8 + 29;
        data[first_payload_at] ^= 0x40;
        fs::write(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.corrupt, 1);
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].key, key(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_abandons_tail_without_panicking() {
        let dir = tmp_dir("trunc");
        let batch = vec![
            (key(1), 1u8, vec![1, 2, 3, 4]),
            (key(2), 1u8, vec![5, 6, 7, 8]),
        ];
        let (path, bytes) = write_segment(&dir, 0, &batch).unwrap();
        let data = fs::read(&path).unwrap();
        for cut in 0..bytes as usize {
            fs::write(&path, &data[..cut]).unwrap();
            let scan = scan_segment(&path).unwrap();
            assert!(scan.entries.len() <= 2);
            if cut < bytes as usize {
                // Something must have been flagged unless the cut landed
                // exactly on an entry boundary.
                let whole_first = 8 + 29 + 4;
                if cut != 8 && cut != whole_first {
                    assert!(scan.corrupt > 0, "cut {cut} silently accepted");
                }
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_revision_is_ignored_not_corrupt() {
        let dir = tmp_dir("revision");
        let (path, _) = write_segment(&dir, 0, &[(key(1), 1, vec![9])]).unwrap();
        let mut data = fs::read(&path).unwrap();
        data[4..8].copy_from_slice(&(STORE_REVISION + 1).to_le_bytes());
        fs::write(&path, &data).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.corrupt, 0);
        assert!(scan.entries.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_file_name(&segment_file_name(42)), Some(42));
        assert_eq!(parse_segment_file_name("seg-x.nsg"), None);
        assert_eq!(parse_segment_file_name(".tmp-seg-1.nsg"), None);
    }
}
