//! Content-addressed store keys.
//!
//! A [`StoreKey`] names an artifact by *what produced it*, never by
//! position: the store format revision, the artifact kind, the
//! alias-analysis tier, and the content fingerprints of everything the
//! artifact's computation read. Identical inputs always map to the same
//! key (a warm restart hits); any differing input maps elsewhere (a stale
//! entry is simply never addressed, no invalidation protocol needed).

use std::fmt;
use std::hash::{Hash, Hasher};

/// Store format revision. Baked into every key, so bumping it orphans all
/// previously written entries (they become unreferenced garbage for
/// `compact` to drop) instead of requiring a migration. Bump whenever an
/// artifact encoding or the key derivation itself changes.
pub const STORE_REVISION: u32 = 1;

/// What kind of artifact a payload decodes as.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ArtifactKind {
    /// One function's PDG partition (`DepGraph<InstId>`), interprocedural.
    PdgPartition = 1,
    /// One function's canonicalized Andersen points-to rows.
    PointsToRows = 2,
    /// One function's natural-loop forest, function-local.
    LoopForest = 3,
}

impl ArtifactKind {
    /// Decode the on-disk tag byte.
    pub fn from_tag(tag: u8) -> Option<ArtifactKind> {
        match tag {
            1 => Some(ArtifactKind::PdgPartition),
            2 => Some(ArtifactKind::PointsToRows),
            3 => Some(ArtifactKind::LoopForest),
            _ => None,
        }
    }

    /// Short human-readable name (fsck output, stats).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::PdgPartition => "pdg-partition",
            ArtifactKind::PointsToRows => "points-to-rows",
            ArtifactKind::LoopForest => "loop-forest",
        }
    }
}

/// A 128-bit content address.
///
/// Derived as two independent 64-bit SipHash runs (distinct domain tags)
/// over the same key material. 128 bits makes accidental collision
/// negligible at any realistic store size; the hash need not be
/// cryptographic because the store directory is trusted local state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StoreKey(pub [u8; 16]);

impl StoreKey {
    fn half(tag: u64, kind: ArtifactKind, tier: u8, fps: [u64; 3]) -> u64 {
        // DefaultHasher is SipHash-1-3 with fixed keys: stable across
        // processes and runs, which is exactly what a durable key needs.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        tag.hash(&mut h);
        STORE_REVISION.hash(&mut h);
        (kind as u8).hash(&mut h);
        tier.hash(&mut h);
        fps.hash(&mut h);
        h.finish()
    }

    fn derive(kind: ArtifactKind, tier: u8, fps: [u64; 3]) -> StoreKey {
        let lo = StoreKey::half(0x6e6f_656c_6c65_3031, kind, tier, fps);
        let hi = StoreKey::half(0x6e6f_656c_6c65_3032, kind, tier, fps);
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&lo.to_le_bytes());
        bytes[8..].copy_from_slice(&hi.to_le_bytes());
        StoreKey(bytes)
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// The module-wide inputs of key derivation, computed once per module
/// state and reused for every per-function key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KeyCtx {
    /// `Module::globals_fingerprint()`.
    pub globals_fp: u64,
    /// Order-independent fingerprint of every defined function's
    /// `content_fingerprint` (see [`KeyCtx::module_code_fp`]).
    pub module_code_fp: u64,
    /// Alias-analysis tier the artifacts were computed under, as a stable
    /// small integer.
    pub tier: u8,
}

impl KeyCtx {
    /// Combine per-function fingerprints into the module-wide code
    /// fingerprint. XOR of per-function SipHash mixes is order-independent,
    /// so function reordering (which changes no analysis result) does not
    /// shift keys.
    pub fn module_code_fp(func_fps: impl IntoIterator<Item = u64>) -> u64 {
        let mut acc = 0u64;
        for fp in func_fps {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            fp.hash(&mut h);
            acc ^= h.finish();
        }
        acc
    }

    /// Key of one function's PDG partition. Interprocedural: includes the
    /// module-wide code fingerprint, so any edit anywhere misses.
    pub fn partition_key(&self, func_fp: u64) -> StoreKey {
        StoreKey::derive(
            ArtifactKind::PdgPartition,
            self.tier,
            [self.globals_fp, self.module_code_fp, func_fp],
        )
    }

    /// Key of one function's points-to rows. Interprocedural, like
    /// partitions.
    pub fn rows_key(&self, func_fp: u64) -> StoreKey {
        StoreKey::derive(
            ArtifactKind::PointsToRows,
            self.tier,
            [self.globals_fp, self.module_code_fp, func_fp],
        )
    }

    /// Key of one function's loop forest. Function-local: independent of
    /// the globals, the rest of the module, and the alias tier (hence no
    /// `self`), so it survives edits to other functions.
    pub fn forest_key(func_fp: u64) -> StoreKey {
        StoreKey::derive(ArtifactKind::LoopForest, 0, [0, 0, func_fp])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> KeyCtx {
        KeyCtx {
            globals_fp: 11,
            module_code_fp: 22,
            tier: 2,
        }
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        let c = ctx();
        assert_eq!(c.partition_key(7), c.partition_key(7));
        assert_ne!(c.partition_key(7), c.partition_key(8));
        assert_ne!(c.partition_key(7), c.rows_key(7));
        assert_ne!(c.partition_key(7), KeyCtx::forest_key(7));
        let other_tier = KeyCtx { tier: 1, ..c };
        assert_ne!(c.partition_key(7), other_tier.partition_key(7));
        // Forest keys ignore module-wide state.
        let edited = KeyCtx {
            module_code_fp: 99,
            ..c
        };
        assert_ne!(c.partition_key(7), edited.partition_key(7));
        assert_eq!(KeyCtx::forest_key(7), KeyCtx::forest_key(7));
    }

    #[test]
    fn module_code_fp_is_order_independent() {
        let a = KeyCtx::module_code_fp([1, 2, 3]);
        let b = KeyCtx::module_code_fp([3, 1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, KeyCtx::module_code_fp([1, 2]));
        // XOR is over *mixed* fingerprints, so duplicate-cancellation
        // requires identical functions, which hash identically anyway.
        assert_eq!(KeyCtx::module_code_fp([5, 5]), 0);
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in [
            ArtifactKind::PdgPartition,
            ArtifactKind::PointsToRows,
            ArtifactKind::LoopForest,
        ] {
            assert_eq!(ArtifactKind::from_tag(kind as u8), Some(kind));
        }
        assert_eq!(ArtifactKind::from_tag(0), None);
        assert_eq!(ArtifactKind::from_tag(9), None);
    }
}
