//! `noelle-store`: inspect and maintain a durable analysis-artifact store
//! directory (the `--store-dir` of `noelle-served`).
//!
//! ```text
//! noelle-store fsck    --dir DIR [--json]   # offline integrity walk
//! noelle-store stats   --dir DIR [--json]   # occupancy summary
//! noelle-store compact --dir DIR [--json]   # rewrite live entries, drop garbage
//! ```
//!
//! `fsck` never opens the store for writing, so it is safe against a
//! directory a daemon is actively publishing into. It exits non-zero when
//! any entry is damaged (CRC/framing corruption, undecodable payloads,
//! unknown kind tags); superseded duplicates and leftover temp files are
//! reported but are garbage for `compact`, not damage.

use noelle_core::json::Json;
use noelle_store::{FsckReport, Store};
use noelle_tools::{die, Args};
use std::path::Path;

fn report_json(r: &FsckReport) -> Json {
    let segments = r
        .segments
        .iter()
        .map(|s| {
            Json::object([
                ("file".to_string(), Json::Str(s.file.clone())),
                ("entries".to_string(), Json::Int(s.entries as i64)),
                ("corrupt".to_string(), Json::Int(s.corrupt as i64)),
                ("bytes".to_string(), Json::Int(s.bytes as i64)),
            ])
        })
        .collect();
    let by_kind = r
        .live_by_kind
        .iter()
        .map(|(k, n)| (k.name().to_string(), Json::Int(*n as i64)))
        .collect::<Vec<_>>();
    Json::object([
        ("segments".to_string(), Json::Array(segments)),
        ("live".to_string(), Json::Int(r.live as i64)),
        ("live_by_kind".to_string(), Json::object(by_kind)),
        ("superseded".to_string(), Json::Int(r.superseded as i64)),
        ("unknown_kind".to_string(), Json::Int(r.unknown_kind as i64)),
        ("undecodable".to_string(), Json::Int(r.undecodable as i64)),
        ("temp_files".to_string(), Json::Int(r.temp_files as i64)),
        ("corrupt".to_string(), Json::Int(r.corrupt() as i64)),
        ("bytes_on_disk".to_string(), Json::Int(r.bytes() as i64)),
        ("clean".to_string(), Json::Bool(r.clean())),
    ])
}

/// Damage (as opposed to compactable garbage) found by the walk.
fn damaged(r: &FsckReport) -> usize {
    r.corrupt() + r.undecodable + r.unknown_kind
}

fn main() {
    let args = Args::parse();
    let cmd = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or_else(|| die("usage: noelle-store <fsck|stats|compact> --dir DIR [--json]"));
    let dir = args
        .flag("dir")
        .filter(|d| !d.is_empty())
        .unwrap_or_else(|| die("missing --dir DIR"));
    if !Path::new(dir).is_dir() {
        die(&format!("{dir}: not a directory"));
    }
    let json = args.flag("json").is_some();
    let report = Store::fsck(Path::new(dir)).unwrap_or_else(|e| die(&format!("{dir}: {e}")));

    match cmd {
        "fsck" => {
            if json {
                println!("{}", report_json(&report).to_string_pretty());
            } else {
                for s in &report.segments {
                    println!(
                        "{}: {} entries, {} corrupt, {} bytes",
                        s.file, s.entries, s.corrupt, s.bytes
                    );
                }
                println!(
                    "live {} (superseded {}, unknown-kind {}, undecodable {}, temp files {})",
                    report.live,
                    report.superseded,
                    report.unknown_kind,
                    report.undecodable,
                    report.temp_files
                );
                println!(
                    "{}",
                    if damaged(&report) == 0 {
                        "fsck: ok"
                    } else {
                        "fsck: DAMAGED"
                    }
                );
            }
            if damaged(&report) > 0 {
                std::process::exit(1);
            }
        }
        "stats" => {
            if json {
                println!("{}", report_json(&report).to_string_pretty());
            } else {
                println!(
                    "{} live entries in {} segments, {} bytes on disk",
                    report.live,
                    report.segments.len(),
                    report.bytes()
                );
                for (kind, n) in &report.live_by_kind {
                    println!("  {}: {}", kind.name(), n);
                }
            }
        }
        "compact" => {
            let store = Store::open(dir).unwrap_or_else(|e| die(&format!("{dir}: {e}")));
            let (live, reclaimed) = store
                .compact()
                .unwrap_or_else(|e| die(&format!("compact: {e}")));
            if json {
                println!(
                    "{}",
                    Json::object([
                        ("live".to_string(), Json::Int(live as i64)),
                        ("reclaimed_bytes".to_string(), Json::Int(reclaimed as i64)),
                    ])
                    .to_string_pretty()
                );
            } else {
                println!("compacted to {live} live entries, reclaimed {reclaimed} bytes");
            }
        }
        other => die(&format!("unknown subcommand '{other}'")),
    }
}
