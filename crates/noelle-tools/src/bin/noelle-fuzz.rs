//! `noelle-fuzz`: differential fuzzing of the transform pipeline.
//!
//! Replays the persisted repro corpus, then generates fresh seed-driven
//! modules and checks each transform preserves observable behavior
//! (return value, output trace, globals memory). With `--trace-deps` it
//! additionally asserts every runtime-observed memory dependence is
//! covered by the static PDG. Failing seeds are persisted and minimized
//! into the corpus directory.
//!
//! The engine lives in the `noelle-fuzz` crate; this binary only wires the
//! shared tool registry into it and parses flags.

use std::path::PathBuf;

use noelle_core::noelle::Noelle;
use noelle_fuzz::driver::{run_campaign, FuzzConfig};
use noelle_fuzz::oracle::FuzzTool;
use noelle_tools::registry::{self, ToolOptions};
use noelle_tools::{die, Args};

/// Tools fuzzed by `--tool all`: the semantics-preserving pipeline. The
/// registry's remaining entries (e.g. `time`, `carat`) instrument or
/// annotate rather than optimize, so differential comparison against the
/// uninstrumented baseline would be meaningless.
const DEFAULT_TOOLS: &[&str] = &["licm", "dead", "doall", "dswp", "helix", "perspective"];

fn usage() -> ! {
    die(&format!(
        "usage: noelle-fuzz [--seeds N] [--seed-start N] [--time-budget-ms MS] \
         [--tool all|{}] [--trace-deps] [--lint-races] [--no-incremental-check] \
         [--no-store-check] [--check-audit] [--check-plan] [--corpus-dir DIR] [--no-persist] \
         [--cores N]",
        registry::usage()
    ));
}

fn selected_tools(selector: &str, cores: usize) -> Vec<FuzzTool> {
    let names: Vec<&str> = if selector == "all" {
        DEFAULT_TOOLS.to_vec()
    } else {
        selector.split(',').collect()
    };
    names
        .into_iter()
        .map(|name| {
            let entry = registry::tools()
                .iter()
                .find(|t| t.name == name)
                .unwrap_or_else(|| {
                    die(&format!(
                        "unknown tool '{name}' (expected 'all' or one of {})",
                        registry::usage()
                    ))
                });
            let run = entry.run;
            FuzzTool::new(entry.name, move |n: &mut Noelle| {
                run(n, &ToolOptions { cores })
            })
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    if args.flag("help").is_some() || !args.positional.is_empty() {
        usage();
    }
    let cores = args.flag_usize("cores", 4);
    let tools = selected_tools(args.flag_or("tool", "all"), cores);
    let corpus_dir = args.flag("corpus-dir").map(PathBuf::from);
    let cfg = FuzzConfig {
        seeds: args.flag_usize("seeds", 100) as u64,
        seed_start: args.flag_usize("seed-start", 0) as u64,
        time_budget_ms: args
            .flag("time-budget-ms")
            .map(|s| s.parse().unwrap_or_else(|_| usage())),
        trace_deps: args.flag("trace-deps").is_some(),
        lint_races: args.flag("lint-races").is_some(),
        check_incremental: args.flag("no-incremental-check").is_none(),
        check_store: args.flag("no-store-check").is_none(),
        check_audit: args.flag("check-audit").is_some(),
        check_plan: args.flag("check-plan").is_some(),
        persist: corpus_dir.is_some() && args.flag("no-persist").is_none(),
        corpus_dir,
        ..FuzzConfig::default()
    };

    let summary = run_campaign(&cfg, &tools);
    print!("{}", summary.render());
    if !summary.ok() {
        std::process::exit(1);
    }
}
