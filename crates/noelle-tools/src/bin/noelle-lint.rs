//! `noelle-lint`: run the static diagnostics suite over an IR file.
//!
//! The headline check is the NL0001 race detector: it audits the tasks
//! produced by the parallelization enablers and reports every cross-task
//! memory dependence that is not mediated by the environment, queue, or
//! sequential-segment protocol. Exit status is nonzero iff an error-severity
//! finding (a race) is reported, so the tool doubles as a CI gate over the
//! parallelizers' output.

use noelle_core::noelle::{AliasTier, Noelle};
use noelle_lint::{has_errors, render_json, render_text, run_checks};
use noelle_tools::{die, read_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die(&format!(
            "usage: noelle-lint <in.nir> [--check <{}>] [--format text|json]",
            noelle_lint::check_usage()
        ));
    };
    let check = args.flag_or("check", "all").to_string();
    let format = args.flag_or("format", "text").to_string();
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let findings = run_checks(&mut noelle, &check).unwrap_or_else(|e| die(&e));
    match format.as_str() {
        "text" => print!("{}", render_text(&findings)),
        "json" => println!("{}", render_json(&findings).to_string_pretty()),
        other => die(&format!("unknown format '{other}' (expected text|json)")),
    }
    if has_errors(&findings) {
        std::process::exit(1);
    }
}
