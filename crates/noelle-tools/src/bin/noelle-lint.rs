//! `noelle-lint`: run the static diagnostics suite over an IR file.
//!
//! The headline check is the NL0001 race detector: it audits the tasks
//! produced by the parallelization enablers and reports every cross-task
//! memory dependence that is not mediated by the environment, queue, or
//! sequential-segment protocol. Exit status is nonzero iff an error-severity
//! finding (a race) is reported, so the tool doubles as a CI gate over the
//! parallelizers' output.
//!
//! With `--audit`, the tool instead runs the parallelism auditor: for every
//! loop it reports a DOALL/HELIX/DSWP verdict, and each blocked verdict
//! names the instruction-level blockers (with interprocedural alias and
//! call-site attribution) plus a resolution hint. `workload:all` audits the
//! whole built-in workload suite into one JSON document — the form CI diffs
//! against the checked-in golden.

use noelle_core::json::{envelope, Json};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_lint::{audit_findings, has_errors, render_json, render_text, run_audit, run_checks};
use noelle_tools::{die, read_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die(&format!(
            "usage: noelle-lint <in.nir> [--check <{}>] [--audit] [--format text|json]",
            noelle_lint::check_usage()
        ));
    };
    let format = args.flag_or("format", "text").to_string();
    if args.flag("audit").is_some() {
        run_audit_mode(input, &format);
        return;
    }
    let check = args.flag_or("check", "all").to_string();
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let findings = run_checks(&mut noelle, &check).unwrap_or_else(|e| die(&e));
    match format.as_str() {
        "text" => print!("{}", render_text(&findings)),
        "json" => println!(
            "{}",
            envelope("lint", render_json(&findings)).to_string_pretty()
        ),
        other => die(&format!("unknown format '{other}' (expected text|json)")),
    }
    if has_errors(&findings) {
        std::process::exit(1);
    }
}

fn run_audit_mode(input: &str, format: &str) {
    if input == "workload:all" {
        // One deterministic document over the whole suite, keyed by
        // workload name: the golden-diff form.
        let audits: Vec<(String, Json)> = noelle_workloads_all()
            .into_iter()
            .map(|(name, m)| {
                let mut n = Noelle::new(m, AliasTier::Full);
                (name, noelle_lint::run_audit(&mut n).to_json())
            })
            .collect();
        match format {
            "json" => {
                let doc = envelope(
                    "audit",
                    Json::object([("audits".to_string(), Json::object(audits))]),
                );
                println!("{}", doc.to_string_pretty());
            }
            "text" => {
                for (name, _) in &audits {
                    println!("# workload {name}");
                }
                die("text format is not supported for workload:all; use --format json");
            }
            other => die(&format!("unknown format '{other}' (expected text|json)")),
        }
        return;
    }
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let audit = run_audit(&mut noelle);
    match format {
        "text" => print!("{}", audit.render_text()),
        "json" => {
            // The audit JSON plus the NL01xx findings it lowers to, so one
            // invocation serves both report consumers and diagnostics UIs.
            let findings = audit_findings(noelle.module(), &audit);
            let doc = envelope(
                "audit",
                Json::object(vec![
                    ("audit".to_string(), audit.to_json()),
                    ("diagnostics".to_string(), render_json(&findings)),
                ]),
            );
            println!("{}", doc.to_string_pretty());
        }
        other => die(&format!("unknown format '{other}' (expected text|json)")),
    }
}

fn noelle_workloads_all() -> Vec<(String, noelle_ir::module::Module)> {
    noelle_workloads::all()
        .into_iter()
        .chain(std::iter::once(noelle_workloads::pdg_stress()))
        .map(|w| (w.name.to_string(), w.build()))
        .collect()
}
