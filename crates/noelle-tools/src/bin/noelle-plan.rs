//! `noelle-plan`: the cost-model-driven parallelization planner.
//!
//! For every loop the auditor marks clean for at least one technique, the
//! planner predicts each technique's speedup from the architecture model,
//! the embedded profiles, and the SCCDAG structure, then picks the best
//! candidate per loop under nesting conflicts. The report is deterministic
//! and explainable: a per-loop candidate table with predicted speedups and
//! why the winner won. `--apply` executes the chosen plan through the
//! unified `LoopTargetOpts` transform surface and writes the parallelized
//! module. `workload:all` plans the whole built-in suite into one JSON
//! document — the form CI diffs against the checked-in golden.

use noelle_core::json::{envelope, Json};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_plan::{apply_plan, plan_module, PlanOptions};
use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-plan <in.nir|workload:NAME|workload:all> [--workers N] [--format text|json] [--apply] [--o out.nir]");
    };
    let format = args.flag_or("format", "text").to_string();
    let opts = PlanOptions {
        workers: args.flag_usize("workers", PlanOptions::default().workers),
        ..PlanOptions::default()
    };
    if input == "workload:all" {
        // One deterministic document over the whole suite, keyed by
        // workload name: the golden-diff form.
        let plans: Vec<(String, Json)> = noelle_workloads_all()
            .into_iter()
            .map(|(name, m)| {
                let mut n = Noelle::new(m, AliasTier::Full);
                (name, plan_module(&mut n, &opts).to_json())
            })
            .collect();
        if format != "json" {
            die("only --format json is supported for workload:all");
        }
        let doc = envelope(
            "plan",
            Json::object([("plans".to_string(), Json::object(plans))]),
        );
        println!("{}", doc.to_string_pretty());
        return;
    }
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let plan = plan_module(&mut noelle, &opts);
    match format.as_str() {
        "text" => print!("{}", plan.render_text()),
        "json" => {
            let doc = envelope("plan", Json::object([("plan".to_string(), plan.to_json())]));
            println!("{}", doc.to_string_pretty());
        }
        other => die(&format!("unknown format '{other}' (expected text|json)")),
    }
    if args.flag("apply").is_some() {
        let report = apply_plan(&mut noelle, &plan);
        eprintln!(
            "applied: {} loop(s) parallelized, {} skipped",
            report.parallelized.len(),
            report.skipped.len()
        );
        let out = args.flag_or("o", "-");
        write_module(&noelle.into_module(), out).unwrap_or_else(|e| die(&e));
    }
}

fn noelle_workloads_all() -> Vec<(String, noelle_ir::module::Module)> {
    noelle_workloads::all()
        .into_iter()
        .chain(std::iter::once(noelle_workloads::pdg_stress()))
        .map(|w| (w.name.to_string(), w.build()))
        .collect()
}
