//! `noelle-prof-coverage`: execute the program on its training input
//! (simulated) and emit the collected profiles as JSON.

use noelle_runtime::{run_module, RunConfig};
use noelle_tools::{die, read_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-prof-coverage <in.nir> [--entry main] [--o prof.json]");
    };
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let cfg = RunConfig {
        collect_profiles: true,
        ..RunConfig::default()
    };
    let r = run_module(&m, args.flag_or("entry", "main"), &[], &cfg)
        .unwrap_or_else(|e| die(&e.to_string()));
    let json = r.profiles.to_json().to_string_pretty();
    match args.flag_or("o", "-") {
        "-" => println!("{json}"),
        path => std::fs::write(path, json).unwrap_or_else(|e| die(&e.to_string())),
    }
    eprintln!(
        "profiled {} dynamic instructions over {} cycles",
        r.dyn_insts, r.cycles
    );
}
