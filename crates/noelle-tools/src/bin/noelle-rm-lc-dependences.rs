//! `noelle-rm-lc-dependences`: transform loops to remove as many
//! loop-carried data dependences as possible — here by hoisting invariant
//! computations (whose recomputation every iteration shows up as carried
//! chains downstream) out of hot loops.

use noelle_core::noelle::{AliasTier, Noelle};
use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-rm-lc-dependences <in.nir> [--o out.nir]");
    };
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let report = noelle_transforms::licm::run(&mut noelle);
    eprintln!("hoisted {} invariant instructions", report.hoisted);
    write_module(&noelle.into_module(), args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
