//! `noelle-ide`: drive IDE document sessions from an edit script.
//!
//! ```text
//! noelle-ide [--script FILE] [--addr HOST:PORT] [--compact]
//! ```
//!
//! Reads a stream of JSON command objects — from `--script` or stdin — and
//! replays them as `ide/*` requests, printing one reply per line:
//!
//! ```text
//! {"cmd":"open","doc":"d","path":"workload:blackscholes"}
//! {"cmd":"change","doc":"d","version":2,"start_line":5,"end_line":6,"lines":["  ret %x"]}
//! {"cmd":"diagnostics","doc":"d"}
//! {"cmd":"close","doc":"d"}
//! ```
//!
//! Without `--addr` the daemon runs **in-process** (no socket, no daemon to
//! start): the replay is then a self-contained smoke test of the whole IDE
//! subsystem, which is how CI uses it. With `--addr` the commands go to a
//! running `noelle-served` over the framed protocol, pipelined: every
//! request is written before any reply is read, and replies pair up by
//! order.
//!
//! The command stream is *not* line-delimited: commands are peeled off the
//! input with [`Json::parse_prefix`], so several objects on one line, one
//! object across several lines, and partial trailing input (stdin still
//! being typed) all parse incrementally.

use noelle_core::json::Json;
use noelle_server::protocol::Request;
use noelle_server::server::{run_request_text, Server, ServerConfig};
use noelle_server::Client;
use noelle_tools::{die, Args};
use std::io::Read;

/// Peel every complete JSON value off `buf`, returning the commands and
/// leaving the unconsumed tail (a partial value mid-arrival) in place.
fn drain_commands(buf: &mut String) -> Vec<Json> {
    let mut out = Vec::new();
    loop {
        let rest = buf.trim_start();
        let skipped = buf.len() - rest.len();
        match Json::parse_prefix(rest) {
            None => {
                buf.drain(..skipped);
                return out;
            }
            Some((v, used)) => {
                out.push(v);
                buf.drain(..skipped + used);
            }
        }
    }
}

/// Turn one script command into a request (`cmd` becomes the `ide/` method
/// suffix; every other key passes through as a param).
fn request_of(id: i64, cmd: &Json) -> Result<Request, String> {
    let obj = cmd.as_object().ok_or("command must be an object")?;
    let name = obj
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("command needs a string 'cmd'")?;
    if !matches!(name, "open" | "change" | "diagnostics" | "close") {
        return Err(format!("unknown cmd '{name}'"));
    }
    let mut params = obj.clone();
    params.remove("cmd");
    Ok(Request {
        id,
        method: format!("ide/{name}"),
        params: Json::Object(params),
        deadline_ms: None,
        v: None,
    })
}

fn emit(reply: &str, compact: bool) {
    use std::io::Write;
    let text = if compact {
        reply.to_string()
    } else {
        Json::parse(reply).map_or_else(|| reply.to_string(), |v| v.to_string_pretty())
    };
    // A broken pipe (`noelle-ide | head`) is the reader saying "enough".
    let _ = writeln!(std::io::stdout(), "{text}");
}

fn main() {
    let args = Args::parse();
    let compact = args.flag("compact").is_some();
    let remote = args.flag("addr").map(str::to_string);

    let mut client = remote.as_deref().map(|addr| {
        Client::connect(addr).unwrap_or_else(|e| die(&format!("connect to {addr}: {e}")))
    });
    let embedded = if client.is_none() {
        Some(
            Server::new(ServerConfig::default())
                .embedded()
                .unwrap_or_else(|e| die(&format!("start embedded daemon: {e}"))),
        )
    } else {
        None
    };

    let mut run = |cmds: Vec<Json>, next_id: &mut i64| {
        // Remote mode pipelines: write every frame of this batch, then
        // read the replies back in order.
        let mut sent = 0usize;
        for cmd in &cmds {
            *next_id += 1;
            let req = match request_of(*next_id, cmd) {
                Ok(r) => r,
                Err(e) => {
                    emit(
                        &format!("{{\"error\":{}}}", Json::Str(e).to_string_compact()),
                        true,
                    );
                    continue;
                }
            };
            match (&mut client, &embedded) {
                (Some(c), _) => {
                    c.send(&req.method, req.params.clone())
                        .unwrap_or_else(|e| die(&format!("send failed: {e}")));
                    sent += 1;
                }
                (None, Some(state)) => emit(&run_request_text(state, &req), compact),
                (None, None) => unreachable!("one transport is always configured"),
            }
        }
        if let Some(c) = &mut client {
            for _ in 0..sent {
                let reply = c
                    .recv_text()
                    .unwrap_or_else(|e| die(&format!("recv failed: {e}")));
                emit(&reply, compact);
            }
        }
    };

    let mut next_id = 0i64;
    match args.flag("script") {
        Some(path) => {
            let mut buf =
                std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            let cmds = drain_commands(&mut buf);
            if !buf.trim().is_empty() {
                die(&format!("script has trailing partial input: {buf:?}"));
            }
            run(cmds, &mut next_id);
        }
        None => {
            // Interactive stdio loop: peel commands as bytes arrive, so a
            // human (or a pipe) can feed edits incrementally.
            let mut stdin = std::io::stdin().lock();
            let mut buf = String::new();
            let mut chunk = [0u8; 4096];
            loop {
                let n = stdin
                    .read(&mut chunk)
                    .unwrap_or_else(|e| die(&format!("stdin: {e}")));
                if n == 0 {
                    if !buf.trim().is_empty() {
                        die(&format!("stdin ended with partial input: {buf:?}"));
                    }
                    break;
                }
                match std::str::from_utf8(&chunk[..n]) {
                    Ok(s) => buf.push_str(s),
                    Err(_) => die("stdin is not UTF-8"),
                }
                run(drain_commands(&mut buf), &mut next_id);
            }
        }
    }
}
