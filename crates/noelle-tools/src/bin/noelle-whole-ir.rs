//! `noelle-whole-ir`: link IR files (or `workload:<name>`) into one
//! whole-program module, mirroring the paper's gllvm-based tool.

use noelle_tools::{die, link_modules, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    if args.positional.is_empty() {
        die("usage: noelle-whole-ir <inputs...> [--o out.nir]");
    }
    let mut mods = Vec::new();
    for p in &args.positional {
        match read_module(p) {
            Ok(m) => mods.push(m),
            Err(e) => die(&e),
        }
    }
    match link_modules(mods) {
        Ok(linked) => {
            if let Err(e) = write_module(&linked, args.flag_or("o", "-")) {
                die(&e);
            }
        }
        Err(e) => die(&e),
    }
}
