//! `noelle-linker`: link IR files while preserving NOELLE metadata (used
//! after parallelization to pull in runtime pieces).

use noelle_tools::{die, link_modules, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    if args.positional.len() < 2 {
        die("usage: noelle-linker <a.nir> <b.nir> ... [--o out.nir]");
    }
    let mods: Vec<_> = args
        .positional
        .iter()
        .map(|p| read_module(p).unwrap_or_else(|e| die(&e)))
        .collect();
    let linked = link_modules(mods).unwrap_or_else(|e| die(&e));
    write_module(&linked, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
