//! `noelle-arch`: describe the (simulated) machine — cores, NUMA nodes,
//! core-to-core latencies — and embed it for AR consumers such as HELIX.

use noelle_core::architecture::Architecture;
use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let arch = Architecture::synthetic(args.flag_usize("cores", 12), args.flag_usize("numa", 1));
    match args.positional.first() {
        Some(input) => {
            let mut m = read_module(input).unwrap_or_else(|e| die(&e));
            arch.embed(&mut m);
            write_module(&m, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
        }
        None => {
            println!("{}", arch.to_json().to_string_pretty());
        }
    }
}
