//! `noelle-meta-clean`: strip all NOELLE-generated metadata from an IR file.

use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-meta-clean <in.nir> [--o out.nir]");
    };
    let mut m = read_module(input).unwrap_or_else(|e| die(&e));
    noelle_ir::ids::clean_noelle_metadata(&mut m);
    write_module(&m, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
