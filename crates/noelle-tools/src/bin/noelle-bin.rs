//! `noelle-bin`: "generate a standalone binary" — in this reproduction, run
//! the program on the simulated machine and report its result, cycle count,
//! and runtime counters.

use noelle_core::architecture::Architecture;
use noelle_runtime::{run_module, RunConfig};
use noelle_tools::{die, read_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-bin <in.nir> [--entry main] [--cores N]");
    };
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let arch = Architecture::from_module(&m)
        .unwrap_or_else(|| Architecture::synthetic(args.flag_usize("cores", 12), 1));
    let cfg = RunConfig {
        arch,
        ..RunConfig::default()
    };
    let r = run_module(&m, args.flag_or("entry", "main"), &[], &cfg)
        .unwrap_or_else(|e| die(&e.to_string()));
    for line in &r.output {
        println!("{line}");
    }
    eprintln!(
        "result = {:?}  cycles = {}  dynamic instructions = {}",
        r.ret, r.cycles, r.dyn_insts
    );
    for (k, v) in &r.counters {
        eprintln!("  {k} = {v}");
    }
}
