//! `noelle-query`: a one-shot client for the `noelle-served` daemon.
//!
//! ```text
//! noelle-query <method> [--addr 127.0.0.1:7711] [--session NAME]
//!              [--path FILE|workload:NAME] [--tier basic|full]
//!              [--func NAME] [--loop N] [--tool NAME] [--cores N]
//!              [--deadline-ms N] [--compact]
//! ```
//!
//! Examples:
//!
//! ```text
//! noelle-query load --path workload:blackscholes --session bs
//! noelle-query pdg --session bs
//! noelle-query sccdag --session bs --func main --loop 0
//! noelle-query run-tool --session bs --tool doall --cores 8
//! noelle-query metrics
//! noelle-query shutdown
//! ```

use noelle_core::json::Json;
use noelle_server::Client;
use noelle_tools::registry::ToolInvocation;
use noelle_tools::{die, Args};

fn main() {
    let args = Args::parse();
    let Some(method) = args.positional.first() else {
        die(
            "usage: noelle-query <load|pdg|sccdag|loops|induction|invariants|callgraph|run-tool|stats|metrics|ping|shutdown> [--addr HOST:PORT] [--session NAME] [--path P] [--func F] [--loop N] [--tool T] [--cores N] [--deadline-ms N] [--compact]",
        );
    };
    let addr = args.flag_or("addr", "127.0.0.1:7711");

    let mut params: Vec<(String, Json)> = Vec::new();
    for key in ["session", "path", "tier", "func"] {
        if let Some(v) = args.flag(key) {
            params.push((key.to_string(), Json::Str(v.to_string())));
        }
    }
    if let Some(v) = args.flag("loop") {
        let n = v
            .parse()
            .unwrap_or_else(|_| die("--loop expects an integer"));
        params.push(("loop".to_string(), Json::Int(n)));
    }
    // Tool flags parse through the registry's own ToolInvocation, so
    // `noelle-query run-tool` and `noelle-load` accept identical options.
    if method == "run-tool" || args.flag("tool").is_some() {
        if let Some(v) = args.flag("cores") {
            if v.parse::<usize>().is_err() {
                die("--cores expects an integer");
            }
        }
        params.extend(ToolInvocation::from_args(&args).to_params());
    }
    let deadline = args.flag("deadline-ms").map(|v| {
        v.parse()
            .unwrap_or_else(|_| die("--deadline-ms expects an integer"))
    });

    let mut client =
        Client::connect(addr).unwrap_or_else(|e| die(&format!("connect to {addr}: {e}")));
    let reply = client
        .request_with_deadline(method, Json::object(params), deadline)
        .unwrap_or_else(|e| die(&format!("request failed: {e}")));

    let text = if args.flag("compact").is_some() {
        reply.to_string_compact()
    } else {
        reply.to_string_pretty()
    };
    // Tolerate a closed stdout (`noelle-query metrics | head`): a broken
    // pipe is how the reader says "enough", not an error.
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{text}");
    if reply.get("error").is_some() {
        std::process::exit(2);
    }
}
