//! `noelle-served`: the resident NOELLE analysis daemon.
//!
//! Keeps loaded modules' abstractions (PDG, call graph, loop structures,
//! alias-query cache) warm across requests, so many small custom tools and
//! editor integrations can query a module without re-analyzing it each
//! time. Listens on localhost TCP speaking length-prefixed JSON frames, or
//! on stdin/stdout with newline-delimited JSON under `--stdio`.
//!
//! ```text
//! noelle-served [--addr 127.0.0.1:7711] [--workers N] [--shards N]
//!               [--queue-cap N] [--store-dir DIR] [--max-sessions N]
//!               [--max-bytes N] [--deadline-ms N] [--stdio]
//! ```
//!
//! With `--store-dir`, analysis artifacts persist in a content-addressed
//! on-disk store and a restarted daemon warm-starts from it.

use noelle_server::{Server, ServerConfig, ToolRunner};
use noelle_tools::registry::ToolInvocation;
use noelle_tools::{die, Args};
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let cfg = ServerConfig {
        addr: args.flag_or("addr", "127.0.0.1:7711").to_string(),
        workers: args.flag_usize("workers", 4),
        shards: args.flag_usize("shards", 2),
        queue_capacity: args.flag_usize("queue-cap", 64),
        max_sessions: args.flag_usize("max-sessions", 8),
        max_bytes: args.flag_usize("max-bytes", 256 << 20),
        default_deadline_ms: args.flag_usize("deadline-ms", 30_000) as u64,
        store_dir: args
            .flag("store-dir")
            .filter(|d| !d.is_empty())
            .map(str::to_string),
    };
    // The registry lives here, not in noelle-server, so the daemon crate
    // stays decoupled from the transforms; inject it. The server hands the
    // raw request params through; parsing them is the registry's job, so
    // every entry point accepts identical options.
    let runner: ToolRunner =
        Arc::new(|n, params| ToolInvocation::from_json(params).and_then(|inv| inv.run(n)));
    let server = Server::new(cfg).with_tool_runner(runner);

    if args.flag("stdio").is_some() {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server
            .serve_stdio(&mut stdin.lock(), &mut stdout.lock())
            .unwrap_or_else(|e| die(&format!("stdio serve failed: {e}")));
        return;
    }

    let running = server
        .start()
        .unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    eprintln!("noelle-served listening on {}", running.addr);
    running.join();
    eprintln!("noelle-served stopped");
}
