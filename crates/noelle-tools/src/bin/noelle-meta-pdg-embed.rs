//! `noelle-meta-pdg-embed`: run the expensive alias analyses, compute the
//! whole-program PDG, and embed a per-function edge summary (in terms of
//! deterministic instruction IDs) as metadata.

use noelle_analysis::alias::{AliasStack, AndersenAlias, BasicAlias};
use noelle_analysis::AliasAnalysis;
use noelle_core::json::Json;
use noelle_pdg::pdg::PdgBuilder;
use noelle_tools::{die, read_module, write_module, Args};
use std::collections::BTreeMap;

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-meta-pdg-embed <in.nir> [--o out.nir]");
    };
    let mut m = read_module(input).unwrap_or_else(|e| die(&e));
    noelle_ir::ids::assign_ids(&mut m);

    let (edge_count, per_function) = {
        let basic = BasicAlias::new(&m);
        let andersen = AndersenAlias::new(&m);
        let stack = AliasStack::new(vec![&basic as &dyn AliasAnalysis, &andersen]);
        let builder = PdgBuilder::new(&m, &stack);
        let pdg = builder.program_pdg();
        let mut per_function = BTreeMap::new();
        for (fid, g) in &pdg.per_function {
            let f = m.func(*fid);
            let edges: Vec<Json> = g
                .edges()
                .iter()
                .filter_map(|e| {
                    let a = noelle_ir::ids::inst_id_of(&m, *fid, e.src)?;
                    let b = noelle_ir::ids::inst_id_of(&m, *fid, e.dst)?;
                    Some(Json::Array(vec![
                        Json::Int(a as i64),
                        Json::Int(b as i64),
                        Json::Bool(e.attrs.memory),
                        Json::Bool(e.attrs.must),
                    ]))
                })
                .collect();
            per_function.insert(f.name.clone(), Json::Array(edges));
        }
        (pdg.num_edges(), per_function)
    };
    m.metadata.insert(
        "noelle.pdg".to_string(),
        Json::Object(per_function).to_string_compact(),
    );
    eprintln!("embedded {edge_count} dependence edges");
    write_module(&m, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
