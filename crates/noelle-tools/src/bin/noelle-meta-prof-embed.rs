//! `noelle-meta-prof-embed`: embed a profile JSON file into the IR as
//! metadata so the PRO abstraction can answer hotness queries offline.

use noelle_core::profiler::Profiles;
use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let (Some(input), Some(prof)) = (args.positional.first(), args.positional.get(1)) else {
        die("usage: noelle-meta-prof-embed <in.nir> <prof.json> [--o out.nir]");
    };
    let mut m = read_module(input).unwrap_or_else(|e| die(&e));
    let text = std::fs::read_to_string(prof).unwrap_or_else(|e| die(&e.to_string()));
    let json = noelle_core::json::Json::parse(&text).unwrap_or_else(|| die("invalid profile JSON"));
    let profiles = Profiles::from_json(&json).unwrap_or_else(|| die("malformed profile JSON"));
    profiles.embed(&mut m);
    write_module(&m, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
