//! `noelle-load`: load the NOELLE layer over an IR file and run a custom
//! tool. Prints the abstractions the tool requested (Table 4's evidence).

use noelle_core::noelle::{AliasTier, Noelle};
use noelle_tools::{die, read_module, write_module, Args};
use noelle_transforms as tools;

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die("usage: noelle-load <in.nir> --tool <doall|helix|dswp|licm|dead|carat|coos|prvj|time|perspective|autopar> [--cores N] [--o out.nir]");
    };
    let tool = args.flag_or("tool", "doall").to_string();
    let cores = args.flag_usize("cores", 4);
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let summary: String = match tool.as_str() {
        "doall" => format!(
            "{:?}",
            tools::doall::run(
                &mut noelle,
                &tools::doall::DoallOptions { n_tasks: cores, min_hotness: 0.0 , only: None,}
            )
        ),
        "helix" => format!(
            "{:?}",
            tools::helix::run(
                &mut noelle,
                &tools::helix::HelixOptions {
                    n_tasks: cores,
                    min_hotness: 0.0,
                    max_sequential_fraction: 0.7
                }
            )
        ),
        "dswp" => format!(
            "{:?}",
            tools::dswp::run(
                &mut noelle,
                &tools::dswp::DswpOptions { n_stages: cores.clamp(2, 4), min_hotness: 0.0 }
            )
        ),
        "licm" => format!("{:?}", tools::licm::run(&mut noelle)),
        "dead" => format!("{:?}", tools::dead::run(&mut noelle, "main")),
        "carat" => format!("{:?}", tools::carat::run(&mut noelle)),
        "coos" => format!("{:?}", tools::coos::run(&mut noelle)),
        "prvj" => format!(
            "{:?}",
            tools::prvj::run(&mut noelle, &tools::prvj::PrvjOptions::default())
        ),
        "time" => format!("{:?}", tools::time::run(&mut noelle)),
        "perspective" => format!(
            "{:?}",
            tools::perspective::run(
                &mut noelle,
                &tools::perspective::PerspectiveOptions { n_tasks: cores }
            )
        ),
        "autopar" => {
            let (m2, report) = tools::baseline::conservative_parallelize(noelle.into_module(), cores);
            eprintln!("{report:?}");
            write_module(&m2, args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
            return;
        }
        other => die(&format!("unknown tool '{other}'")),
    };
    eprintln!("{summary}");
    let requested: Vec<&str> = noelle.requested().iter().map(|a| a.short_name()).collect();
    eprintln!("abstractions requested: {}", requested.join(", "));
    write_module(&noelle.into_module(), args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
