//! `noelle-load`: load the NOELLE layer over an IR file and run a custom
//! tool. Prints the abstractions the tool requested (Table 4's evidence).
//!
//! Tool dispatch goes through [`noelle_tools::registry`], the same table
//! the `noelle-served` daemon uses for its `run-tool` method.

use noelle_core::noelle::{AliasTier, Noelle};
use noelle_tools::registry::{self, ToolInvocation};
use noelle_tools::{die, read_module, write_module, Args};

fn main() {
    let args = Args::parse();
    let Some(input) = args.positional.first() else {
        die(&format!(
            "usage: noelle-load <in.nir> --tool <{}> [--cores N] [--o out.nir]",
            registry::usage()
        ));
    };
    let inv = ToolInvocation::from_args(&args);
    let m = read_module(input).unwrap_or_else(|e| die(&e));
    let mut noelle = Noelle::new(m, AliasTier::Full);
    let summary = inv.run(&mut noelle).unwrap_or_else(|e| die(&e));
    eprintln!("{summary}");
    let requested: Vec<&str> = noelle.requested().iter().map(|a| a.short_name()).collect();
    eprintln!("abstractions requested: {}", requested.join(", "));
    write_module(&noelle.into_module(), args.flag_or("o", "-")).unwrap_or_else(|e| die(&e));
}
