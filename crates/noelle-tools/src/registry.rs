//! The shared custom-tool registry.
//!
//! `noelle-load`, the daemon's `run-tool` method, and any future binary
//! dispatch tool names through this one table, so the set of tools and the
//! usage string cannot drift apart between entry points.

use noelle_core::json::Json;
use noelle_core::noelle::Noelle;
use noelle_transforms as tools;

/// Options every registered tool receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ToolOptions {
    /// Worker/task count for parallelizers.
    pub cores: usize,
}

impl Default for ToolOptions {
    fn default() -> ToolOptions {
        ToolOptions { cores: 4 }
    }
}

/// One fully parsed request to run a registered tool: the single currency
/// all three entry points (`noelle-load` flags, `noelle-query` flags, the
/// daemon's `run-tool` params) convert into, so option handling cannot
/// drift between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToolInvocation {
    /// Registered tool name.
    pub name: String,
    /// Parsed options.
    pub options: ToolOptions,
}

impl ToolInvocation {
    /// Parse from command-line flags: `--tool <name>` (default `doall`) and
    /// `--cores <n>` (default [`ToolOptions::default`]).
    pub fn from_args(args: &crate::Args) -> ToolInvocation {
        ToolInvocation {
            name: args.flag_or("tool", "doall").to_string(),
            options: ToolOptions {
                cores: args.flag_usize("cores", ToolOptions::default().cores),
            },
        }
    }

    /// Parse from wire params: `{"tool": <name>, "cores": <n>?}`.
    ///
    /// # Errors
    /// A missing or non-string `tool` field is an error; `cores` defaults.
    pub fn from_json(params: &Json) -> Result<ToolInvocation, String> {
        let name = params
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("missing 'tool' param")?
            .to_string();
        let cores = params
            .get("cores")
            .and_then(Json::as_i64)
            .map(|c| c as usize)
            .unwrap_or(ToolOptions::default().cores);
        Ok(ToolInvocation {
            name,
            options: ToolOptions { cores },
        })
    }

    /// Encode as wire params (the inverse of [`ToolInvocation::from_json`]).
    pub fn to_params(&self) -> Vec<(String, Json)> {
        vec![
            ("tool".to_string(), Json::Str(self.name.clone())),
            ("cores".to_string(), Json::Int(self.options.cores as i64)),
        ]
    }

    /// Dispatch through the registry.
    ///
    /// # Errors
    /// Unknown names and tool failures return a message.
    pub fn run(&self, n: &mut Noelle) -> Result<String, String> {
        run_tool(n, &self.name, &self.options)
    }
}

type Runner = fn(&mut Noelle, &ToolOptions) -> Result<String, String>;

/// One registered tool.
pub struct ToolEntry {
    /// Name used on the command line and the wire.
    pub name: &'static str,
    /// The runner; returns a human-readable summary.
    pub run: Runner,
}

fn run_doall(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    Ok(format!(
        "{:?}",
        tools::doall::run(
            n,
            &tools::doall::DoallOptions {
                target: tools::common::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: o.cores,
                },
            },
        )
    ))
}

fn run_helix(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    Ok(format!(
        "{:?}",
        tools::helix::run(
            n,
            &tools::helix::HelixOptions {
                target: tools::common::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: o.cores,
                },
                max_sequential_fraction: 0.7,
            },
        )
    ))
}

fn run_dswp(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    Ok(format!(
        "{:?}",
        tools::dswp::run(
            n,
            &tools::dswp::DswpOptions {
                target: tools::common::LoopTargetOpts {
                    min_hotness: 0.0,
                    only: None,
                    workers: o.cores.clamp(2, 4),
                },
            },
        )
    ))
}

fn run_licm(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!("{:?}", tools::licm::run(n)))
}

fn run_dead(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!("{:?}", tools::dead::run(n, "main")))
}

fn run_carat(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!("{:?}", tools::carat::run(n)))
}

fn run_coos(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!("{:?}", tools::coos::run(n)))
}

fn run_prvj(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!(
        "{:?}",
        tools::prvj::run(n, &tools::prvj::PrvjOptions::default())
    ))
}

fn run_time(n: &mut Noelle, _o: &ToolOptions) -> Result<String, String> {
    Ok(format!("{:?}", tools::time::run(n)))
}

fn run_perspective(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    Ok(format!(
        "{:?}",
        tools::perspective::run(
            n,
            &tools::perspective::PerspectiveOptions { n_tasks: o.cores },
        )
    ))
}

fn run_plan(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    let plan = noelle_plan::plan_module(
        n,
        &noelle_plan::PlanOptions {
            workers: o.cores,
            ..noelle_plan::PlanOptions::default()
        },
    );
    let report = noelle_plan::apply_plan(n, &plan);
    Ok(format!(
        "planned {} of {} loop(s), predicted {:.2}x; applied: {report:?}",
        plan.planned(),
        plan.loops.len(),
        plan.predicted_program_speedup()
    ))
}

fn run_autopar(n: &mut Noelle, o: &ToolOptions) -> Result<String, String> {
    // The conservative baseline rebuilds the module rather than editing in
    // place; swap the result back into the manager.
    let m = n.module().clone();
    let (m2, report) = tools::baseline::conservative_parallelize(m, o.cores);
    n.replace_module(m2);
    Ok(format!("{report:?}"))
}

/// Every registered tool, in usage-string order.
pub fn tools() -> &'static [ToolEntry] {
    &[
        ToolEntry {
            name: "doall",
            run: run_doall,
        },
        ToolEntry {
            name: "helix",
            run: run_helix,
        },
        ToolEntry {
            name: "dswp",
            run: run_dswp,
        },
        ToolEntry {
            name: "licm",
            run: run_licm,
        },
        ToolEntry {
            name: "dead",
            run: run_dead,
        },
        ToolEntry {
            name: "carat",
            run: run_carat,
        },
        ToolEntry {
            name: "coos",
            run: run_coos,
        },
        ToolEntry {
            name: "prvj",
            run: run_prvj,
        },
        ToolEntry {
            name: "time",
            run: run_time,
        },
        ToolEntry {
            name: "perspective",
            run: run_perspective,
        },
        ToolEntry {
            name: "plan",
            run: run_plan,
        },
        ToolEntry {
            name: "autopar",
            run: run_autopar,
        },
    ]
}

/// The `a|b|c` tool-name alternation for usage strings.
pub fn usage() -> String {
    tools().iter().map(|t| t.name).collect::<Vec<_>>().join("|")
}

/// Run the named tool against `n`.
///
/// # Errors
/// Unknown names and tool failures return a message.
pub fn run_tool(n: &mut Noelle, name: &str, opts: &ToolOptions) -> Result<String, String> {
    let entry = tools()
        .iter()
        .find(|t| t.name == name)
        .ok_or_else(|| format!("unknown tool '{name}' (expected one of {})", usage()))?;
    (entry.run)(n, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;

    #[test]
    fn every_registered_tool_runs_on_a_workload() {
        let w = noelle_workloads::by_name("blackscholes").expect("workload");
        for t in tools() {
            let mut n = Noelle::new(w.build(), AliasTier::Full);
            let r = run_tool(&mut n, t.name, &ToolOptions::default());
            assert!(r.is_ok(), "tool {} failed: {r:?}", t.name);
        }
    }

    #[test]
    fn unknown_tool_names_error_with_usage() {
        let w = noelle_workloads::by_name("blackscholes").expect("workload");
        let mut n = Noelle::new(w.build(), AliasTier::Full);
        let err = run_tool(&mut n, "nope", &ToolOptions::default()).unwrap_err();
        assert!(err.contains("doall|helix"));
    }

    #[test]
    fn usage_lists_all_entries_once() {
        let u = usage();
        let names: Vec<&str> = u.split('|').collect();
        assert_eq!(names.len(), tools().len());
        for t in tools() {
            assert_eq!(names.iter().filter(|n| **n == t.name).count(), 1);
        }
    }
}
