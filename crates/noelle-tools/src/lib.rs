//! # noelle-tools
//!
//! Library support for the `noelle-*` command-line tools of Table 2:
//!
//! | Binary | Paper tool | Role |
//! |---|---|---|
//! | `noelle-whole-ir` | noelle-whole-IR | link IR files into one whole-program module |
//! | `noelle-prof-coverage` | noelle-prof-coverage | run the program and collect profiles |
//! | `noelle-meta-prof-embed` | noelle-meta-prof-embed | embed profiles as IR metadata |
//! | `noelle-meta-pdg-embed` | noelle-meta-pdg-embed | compute the PDG and embed it as metadata |
//! | `noelle-meta-clean` | noelle-meta-clean | strip NOELLE metadata |
//! | `noelle-rm-lc-dependences` | noelle-rm-lc-dependences | reduce loop-carried dependences |
//! | `noelle-arch` | noelle-arch | describe/measure the machine |
//! | `noelle-load` | noelle-load | load the layer and run a custom tool |
//! | `noelle-linker` | noelle-linker | link transformed IR files, preserving metadata |
//! | `noelle-bin` | noelle-bin | produce/execute the final program (simulated) |
//! | `noelle-served` | — | the resident analysis daemon (`noelle-server` crate) |
//! | `noelle-query` | — | one-shot client for the daemon |
//! | `noelle-fuzz` | — | differential fuzzing of the transform pipeline |
//! | `noelle-lint` | — | static diagnostics (race detector and lint suite) |
//!
//! This module provides file IO helpers, a tiny flag parser, and the module
//! linker shared by `noelle-whole-ir` and `noelle-linker`.

pub mod registry;

use noelle_ir::inst::{Callee, Inst};
use noelle_ir::module::{FuncId, GlobalId, Module};
use noelle_ir::value::Value;
use std::collections::HashMap;

/// Read a module from a `.nir` file, or build a named workload when the
/// path has the form `workload:<name>`.
///
/// # Errors
/// Returns a human-readable message on IO, parse, or lookup failure.
pub fn read_module(path: &str) -> Result<Module, String> {
    if let Some(name) = path.strip_prefix("workload:") {
        return noelle_workloads::by_name(name)
            .map(|w| w.build())
            .ok_or_else(|| format!("unknown workload '{name}'"));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    noelle_ir::parser::parse_module(&text).map_err(|e| format!("{path}: {e}"))
}

/// Write a module to `path` (or stdout for `-`).
///
/// # Errors
/// Returns a message on IO failure.
pub fn write_module(m: &Module, path: &str) -> Result<(), String> {
    let text = noelle_ir::printer::print_module(m);
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
    }
}

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the binary name).
    pub fn parse() -> Args {
        Args::parse_from(std::env::args().skip(1))
    }

    /// Parse an explicit argument list. A `--key` followed by another
    /// `--flag` (or by nothing) is recorded as a boolean flag with an
    /// empty value rather than swallowing the next flag.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let v = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap_or_default(),
                    _ => String::new(),
                };
                out.flags.insert(key.to_string(), v);
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// The value of `--key`, if given.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// The value of `--key` or a default.
    pub fn flag_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flag(key).unwrap_or(default)
    }

    /// Integer flag with default.
    pub fn flag_usize(&self, key: &str, default: usize) -> usize {
        self.flag(key)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

/// Link several modules into one whole-program module (what the paper's
/// gllvm-based `noelle-whole-IR` does for bitcode): definitions override
/// declarations, duplicate definitions are an error, and all cross-module
/// references are re-bound by symbol name. Metadata is merged (later
/// modules win on key conflicts).
///
/// # Errors
/// Returns a message on symbol conflicts.
pub fn link_modules(mods: Vec<Module>) -> Result<Module, String> {
    let mut out = Module::new("linked");

    // Pass 1: allocate output slots by name.
    let mut func_slot: HashMap<String, FuncId> = HashMap::new();
    let mut global_slot: HashMap<String, GlobalId> = HashMap::new();
    for m in &mods {
        for g in m.globals() {
            if let Some(&existing) = global_slot.get(&g.name) {
                if out.global(existing) != g {
                    return Err(format!(
                        "duplicate global '@{}' with different contents",
                        g.name
                    ));
                }
                continue;
            }
            let id = out.add_global(g.clone());
            global_slot.insert(g.name.clone(), id);
        }
        for f in m.functions() {
            if let Some(&existing) = func_slot.get(&f.name) {
                let have_body = !out.func(existing).is_declaration();
                if have_body && !f.is_declaration() {
                    return Err(format!("duplicate definition of '@{}'", f.name));
                }
                continue;
            }
            let id = out.add_function(noelle_ir::module::Function::new(
                f.name.clone(),
                f.params.clone(),
                f.ret_ty.clone(),
            ));
            func_slot.insert(f.name.clone(), id);
        }
        for (k, v) in &m.metadata {
            out.metadata.insert(k.clone(), v.clone());
        }
    }

    // Pass 2: copy bodies, remapping function/global references by name.
    for m in &mods {
        for f in m.functions() {
            if f.is_declaration() {
                continue;
            }
            let dst = func_slot[&f.name];
            if !out.func(dst).is_declaration() {
                return Err(format!("duplicate definition of '@{}'", f.name));
            }
            let mut nf = f.clone();
            let remap_value = |v: Value| -> Value {
                match v {
                    Value::Func(old) => Value::Func(func_slot[&m.func(old).name]),
                    Value::Global(old) => Value::Global(global_slot[&m.global(old).name]),
                    other => other,
                }
            };
            for id in nf.inst_ids() {
                nf.inst_mut(id).map_operands(remap_value);
                if let Inst::Call {
                    callee: Callee::Direct(old),
                    ..
                } = nf.inst_mut(id)
                {
                    *old = func_slot[&m.func(*old).name];
                }
            }
            *out.func_mut(dst) = nf;
        }
    }
    Ok(out)
}

/// Exit with an error message (shared by the binaries).
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    #[test]
    fn links_declaration_against_definition() {
        let a = parse_module(
            r#"
module "a" {
declare i64 @helper(i64 %x)
define i64 @main() {
entry:
  %r = call i64 @helper(i64 20)
  ret %r
}
}
"#,
        )
        .unwrap();
        let b = parse_module(
            r#"
module "b" {
define i64 @helper(i64 %x) {
entry:
  %r = mul i64 %x, i64 2
  ret %r
}
}
"#,
        )
        .unwrap();
        let linked = link_modules(vec![a, b]).expect("links");
        noelle_ir::verifier::verify_module(&linked).expect("verifies");
        let r = run_module(&linked, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(r.ret_i64(), Some(40));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        let src = r#"
module "x" {
define i64 @f() {
entry:
  ret i64 1
}
}
"#;
        let a = parse_module(src).unwrap();
        let b = parse_module(src).unwrap();
        let err = link_modules(vec![a, b]).unwrap_err();
        assert!(err.contains("duplicate definition"));
    }

    #[test]
    fn remaps_globals_across_modules() {
        let a = parse_module(
            r#"
module "a" {
global @shared : i64 = i64 5
define i64 @get() {
entry:
  %v = load i64, @shared
  ret %v
}
}
"#,
        )
        .unwrap();
        let b = parse_module(
            r#"
module "b" {
global @other : i64 = i64 9
declare i64 @get()
define i64 @main() {
entry:
  %x = call i64 @get()
  %y = load i64, @other
  %r = add i64 %x, %y
  ret %r
}
}
"#,
        )
        .unwrap();
        let linked = link_modules(vec![a, b]).expect("links");
        let r = run_module(&linked, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(r.ret_i64(), Some(14));
    }
}
