//! DOALL: parallelize loops with no (unhandled) loop-carried data
//! dependences by distributing iterations among cores.
//!
//! The implementation follows the paper's recipe: PRO + FR + L select the
//! most profitable loops; PDG/aSCCDAG prove independence; ENV + T organize
//! live-ins/live-outs and materialize the task; IVS performs the iteration
//! distribution (cyclic: task `t` starts at `start + t*step` and strides by
//! `n_tasks*step`); RD parallelizes reductions by accumulator cloning.

use crate::common::{
    parallelize_with, task_loop, LoopTargetOpts, ParallelReport, ParallelizeError,
};
use noelle_core::ivstepper::{offset_start, scale_step};
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_core::task::TaskFunction;
use noelle_ir::module::{FuncId, Module};
use noelle_ir::value::Value;

/// Options controlling loop selection. `target.workers` is the number of
/// tasks (cores) iterations are distributed over; pinning a single loop is
/// the paper's testing hook: "a user can force a parallelizing custom tool
/// to parallelize only a given loop".
#[derive(Clone, Debug, Default)]
pub struct DoallOptions {
    /// Shared loop selection: hotness gate, pinning, worker count.
    pub target: LoopTargetOpts,
}

/// Apply DOALL to every eligible loop of the module.
pub fn run(noelle: &mut Noelle, opts: &DoallOptions) -> ParallelReport {
    for a in [
        Abstraction::Pro,
        Abstraction::Fr,
        Abstraction::L,
        Abstraction::Env,
        Abstraction::Task,
        Abstraction::Lb,
        Abstraction::Iv,
        Abstraction::Ivs,
        Abstraction::Inv,
        Abstraction::Rd,
        Abstraction::ASccDag,
        Abstraction::Ar,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = ParallelReport::default();
    let profiles = noelle.profiles();
    let have_profiles = !profiles.block_counts.is_empty();

    // Outermost-first over the program loop forest: parallelizing an outer
    // loop subsumes its children.
    let forest = noelle.program_loop_forest();
    let mut order = forest.innermost_first();
    order.reverse();
    let mut done_funcs: Vec<(FuncId, noelle_ir::module::BlockId)> = Vec::new();
    for node in order {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        // Skip loops nested in an already-parallelized loop of this run.
        if done_funcs.iter().any(|&(df, dh)| {
            df == fid && l.header != dh && {
                let parent = forest.per_function[&fid]
                    .loops()
                    .iter()
                    .find(|x| x.header == dh)
                    .expect("recorded loop");
                parent.contains(l.header)
            }
        }) {
            continue;
        }
        let fname = noelle.module().func(fid).name.clone();
        if !opts.target.admits(&fname, l.header) {
            continue;
        }
        if have_profiles
            && profiles.loop_hotness(noelle.module(), fid, &l) < opts.target.min_hotness
        {
            report
                .skipped
                .push((fname, l.header, "cold loop".to_string()));
            continue;
        }
        let la = noelle.loop_abstraction(fid, l.clone());
        if !la.is_doall() {
            report
                .skipped
                .push((fname, l.header, "loop-carried dependences".to_string()));
            continue;
        }
        let task_name = format!("{fname}.doall.{}", l.header.0);
        match noelle.edit(|tx| {
            parallelize_with(
                tx.module_touching([fid]),
                fid,
                &la,
                opts.target.workers,
                &task_name,
                distribute_cyclically,
            )
        }) {
            Ok(()) => {
                report.parallelized.push((fname, l.header));
                done_funcs.push((fid, l.header));
            }
            Err(e) => report.skipped.push((fname, l.header, e.to_string())),
        }
    }
    report
}

/// Decide, without mutating anything, whether DOALL would apply to this
/// loop: the exact gate sequence of [`run`] + [`parallelize_with`] +
/// [`distribute_cyclically`], evaluated structurally against the original
/// loop (the task clone is isomorphic, so recurrence shapes transfer).
/// The parallelism auditor issues its "clean" verdicts from this check and
/// the fuzz oracle holds them against the real transform's outcome.
pub fn precheck(
    m: &Module,
    fid: FuncId,
    la: &noelle_core::loop_abs::LoopAbstraction,
) -> Result<(), ParallelizeError> {
    // run(): dependence gate.
    if !la.is_doall() {
        return Err(ParallelizeError::CarriedDependences);
    }
    // parallelize_with(): live-out gate.
    if !crate::common::liveouts_supported(la) {
        return Err(ParallelizeError::UnsupportedLiveOut);
    }
    let l = &la.structure;
    // outline_loop_as_task() + emit_dispatcher(): single exit block.
    if l.exit_blocks().len() != 1 {
        return Err(ParallelizeError::Shape(
            "loop has multiple exit blocks".into(),
        ));
    }
    let f = m.func(fid);
    // emit_dispatcher(): a pre-header must exist or be creatable.
    if l.preheader.is_none()
        && !f
            .block_order()
            .iter()
            .any(|&b| !l.contains(b) && f.successors(b).contains(&l.header))
    {
        return Err(ParallelizeError::Shape(
            "header has no out-of-loop predecessor".into(),
        ));
    }
    // distribute_cyclically(): every affine recurrence must be steppable.
    let recs = noelle_analysis::scev::affine_recurrences(f, l);
    if recs.is_empty() {
        return Err(ParallelizeError::NoGoverningIv);
    }
    for rec in &recs {
        let phi_ok = matches!(f.inst(rec.phi), noelle_ir::inst::Inst::Phi { .. });
        let update_ok = matches!(
            f.inst(rec.update),
            noelle_ir::inst::Inst::Bin {
                op: noelle_ir::inst::BinOp::Add | noelle_ir::inst::BinOp::Sub,
                lhs,
                rhs,
                ..
            } if *lhs == Value::Inst(rec.phi) || *rhs == Value::Inst(rec.phi)
        );
        if !phi_ok || !update_ok {
            return Err(ParallelizeError::Shape(
                "induction update has unexpected shape".into(),
            ));
        }
    }
    Ok(())
}

/// Rewrite the task's governing IV for cyclic distribution: start at
/// `start + task_id*step`, stride by `n_tasks*step` — pure IVS usage.
pub fn distribute_cyclically(m: &mut Module, task: &TaskFunction) -> Result<(), ParallelizeError> {
    let l = task_loop(m, task.fid);
    let tf = m.func_mut(task.fid);
    let recs = noelle_analysis::scev::affine_recurrences(tf, &l);
    // Every affine recurrence must stride by n_tasks; the governing one
    // controls termination, secondary IVs (e.g. a second index) follow suit.
    if recs.is_empty() {
        return Err(ParallelizeError::NoGoverningIv);
    }
    for rec in &recs {
        offset_start(tf, &l, rec, Value::Arg(1))
            .map_err(|e| ParallelizeError::Shape(e.to_string()))?;
        scale_step(tf, &l, rec, Value::Arg(2))
            .map_err(|e| ParallelizeError::Shape(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const SUM_PROGRAM: &str = r#"
module "sum" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 8000)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  store i64 %i, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 1000
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, i64 1000)
  ret %s
}
}
"#;

    #[test]
    fn doall_preserves_semantics_and_speeds_up() {
        let m = parse_module(SUM_PROGRAM).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(seq.ret_i64(), Some(499500));

        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &DoallOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    ..LoopTargetOpts::default()
                },
            },
        );
        // Both the kernel loop and the fill loop in main are DOALL-able...
        // but the fill loop's store is provably per-iteration distinct, so
        // both should parallelize.
        assert!(report.count() >= 1, "report: {report:?}");
        assert!(
            report.parallelized.iter().any(|(f, _)| f == "kernel"),
            "kernel loop must parallelize: {report:?}"
        );

        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("transformed module verifies: {e}"));
        let par = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(par.ret_i64(), Some(499500), "semantics preserved");
        assert!(par.counters.get("tasks").copied().unwrap_or(0) >= 4);
        let speedup = seq.cycles as f64 / par.cycles as f64;
        assert!(speedup > 1.5, "speedup = {speedup:.2}");
    }

    #[test]
    fn sequential_loop_is_skipped() {
        // Pointer-chase recurrence: DOALL must refuse.
        let src = r#"
module "seq" {
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  store i64 i64 1, %cell
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 100
  condbr %c, body, exit
body:
  %v = load i64, %cell
  %v2 = mul i64 %v, i64 3
  store i64 %v2, %cell
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %cell
  ret %r
}
}
"#;
        let m = parse_module(src).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &DoallOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    ..LoopTargetOpts::default()
                },
            },
        );
        assert_eq!(report.count(), 0, "{report:?}");
        assert!(report
            .skipped
            .iter()
            .any(|(_, _, why)| why.contains("dependences")));
        // Untouched module still runs identically.
        let m2 = noelle.into_module();
        let again = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(again.ret_i64(), seq.ret_i64());
    }

    #[test]
    fn cold_loops_skipped_with_profiles() {
        let m = parse_module(SUM_PROGRAM).unwrap();
        // Profile the run, embed, then set an impossible hotness threshold.
        let cfg = RunConfig {
            collect_profiles: true,
            ..RunConfig::default()
        };
        let r = run_module(&m, "main", &[], &cfg).unwrap();
        let mut m = m;
        r.profiles.embed(&mut m);
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &DoallOptions {
                target: LoopTargetOpts {
                    min_hotness: 2.0, // impossible
                    ..LoopTargetOpts::default()
                },
            },
        );
        assert_eq!(report.count(), 0);
        assert!(report.skipped.iter().all(|(_, _, why)| why == "cold loop"));
    }
}
