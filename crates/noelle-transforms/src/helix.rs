//! HELIX: parallelize a loop by distributing its *iterations* between cores
//! while keeping the loop-carried portions ordered.
//!
//! "Each iteration is sliced into several sequential and parallel segments.
//! Different instances of the same static sequential segment run
//! sequentially between the cores while everything else can overlap."
//!
//! Sequential segments are derived from the aSCCDAG: the sequential SCCs
//! (plus any SCCs tied together by loop-carried data dependences the
//! parallelizer cannot remove) are grouped into segments; each segment is
//! bracketed by `noelle.ss.wait(seg, iter)` / `noelle.ss.signal(seg)` so its
//! dynamic instances execute in iteration order across cores, with the
//! core-to-core signal latency charged from the AR abstraction.

use crate::common::{
    approx_inst_cost, parallelize_with, task_loop, LoopTargetOpts, ParallelReport,
    ParallelizeError, SS_SIGNAL_INTRINSIC, SS_WAIT_INTRINSIC,
};
use crate::doall::distribute_cyclically;
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_core::task::TaskFunction;
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::Value;
use noelle_pdg::islands::islands_of;
use std::collections::BTreeSet;

/// Options controlling HELIX. `target.workers` is the number of cores
/// iterations are distributed over.
#[derive(Clone, Debug)]
pub struct HelixOptions {
    /// Shared loop selection: hotness gate, pinning, worker count.
    pub target: LoopTargetOpts,
    /// Skip loops whose sequential segments cover more than this fraction of
    /// the loop body (they would serialize everything).
    pub max_sequential_fraction: f64,
}

impl Default for HelixOptions {
    fn default() -> HelixOptions {
        HelixOptions {
            target: LoopTargetOpts::default(),
            max_sequential_fraction: 0.7,
        }
    }
}

/// Compute the sequential segments of a loop: connected groups of SCCs that
/// must execute in iteration order. Returns `None` when a segment cannot be
/// safely bracketed (its instructions may be skipped within an iteration).
pub fn sequential_segments(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
) -> Option<Vec<BTreeSet<InstId>>> {
    let f = m.func(fid);
    let l = &la.structure;
    let handled = la.handled_recurrence_insts();

    // Problem SCCs: sequential ones, plus SCCs linked by loop-carried data
    // edges that are not confined to handled recurrences.
    let mut problem: BTreeSet<usize> = la.sequential_sccs().into_iter().collect();
    let mut links: Vec<(usize, usize)> = Vec::new();
    for e in la.pdg.edges() {
        if !(e.attrs.loop_carried && e.attrs.is_data()) {
            continue;
        }
        if handled.contains(&e.src) && handled.contains(&e.dst) {
            continue;
        }
        let (Some(a), Some(b)) = (la.sccdag.scc_of(e.src), la.sccdag.scc_of(e.dst)) else {
            continue;
        };
        if la.sccdag.nodes()[a].is_induction && la.sccdag.nodes()[b].is_induction {
            continue;
        }
        problem.insert(a);
        problem.insert(b);
        if a != b {
            links.push((a, b));
        }
    }
    if problem.is_empty() {
        return Some(Vec::new());
    }

    // Group into segments via the islands capability.
    let nodes: Vec<usize> = problem.iter().copied().collect();
    let groups = islands_of(&nodes, &links);

    // Bracketing requires every segment instruction to execute exactly once
    // per iteration: its block must dominate the (single) latch.
    let latch = l.single_latch()?;
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let mut segments = Vec::new();
    for g in groups {
        let mut insts: BTreeSet<InstId> = BTreeSet::new();
        for scc in g {
            insts.extend(la.sccdag.nodes()[scc].insts.iter().copied());
        }
        for &i in &insts {
            let b = f.parent_block(i);
            if !dt.dominates(b, latch) {
                return None;
            }
        }
        segments.push(insts);
    }
    Some(segments)
}

/// Decide, without mutating anything, whether HELIX would apply to this
/// loop: the exact gate sequence of [`run`], then the shared DOALL
/// mechanics gates (live-outs, outlining, IV stepping, dispatcher).
/// `latency` is the architecture's cross-core signal latency, as fed to the
/// profitability gate by [`run`].
pub fn precheck(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    latency: u64,
    max_sequential_fraction: f64,
) -> Result<(), ParallelizeError> {
    if la.ivs.governing().is_none() {
        return Err(ParallelizeError::NoGoverningIv);
    }
    let Some(segments) = sequential_segments(m, fid, la) else {
        return Err(ParallelizeError::Shape("unbracketably sequential".into()));
    };
    let seg_insts: usize = segments.iter().map(BTreeSet::len).sum();
    let total = la.pdg.num_internal().max(1);
    if seg_insts as f64 / total as f64 > max_sequential_fraction {
        return Err(ParallelizeError::Shape("mostly sequential".into()));
    }
    if !segments.is_empty() {
        let f = m.func(fid);
        let body_cost: u64 = la
            .pdg
            .internal_nodes()
            .map(|i| approx_inst_cost(f.inst(i)))
            .sum();
        let seg_cost: u64 = segments
            .iter()
            .flat_map(|s| s.iter())
            .map(|&i| approx_inst_cost(f.inst(i)))
            .sum();
        if body_cost < (seg_cost + latency) * 13 / 10 {
            return Err(ParallelizeError::Shape(
                "sequential segment dominates".into(),
            ));
        }
    }
    // Shared mechanics: live-outs, single exit, steppable IVs, pre-header.
    // HELIX rides on the same outline + cyclic distribution + dispatcher as
    // DOALL, minus the dependence gate (that is the point of the brackets).
    match crate::doall::precheck(m, fid, la) {
        Err(ParallelizeError::CarriedDependences) | Ok(()) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Apply HELIX to every eligible loop of the module.
pub fn run(noelle: &mut Noelle, opts: &HelixOptions) -> ParallelReport {
    for a in [
        Abstraction::Pro,
        Abstraction::Fr,
        Abstraction::L,
        Abstraction::Env,
        Abstraction::Task,
        Abstraction::Dfe,
        Abstraction::Scd,
        Abstraction::Lb,
        Abstraction::Iv,
        Abstraction::Ivs,
        Abstraction::Inv,
        Abstraction::Rd,
        Abstraction::ASccDag,
        Abstraction::Ar,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = ParallelReport::default();
    let profiles = noelle.profiles();
    let have_profiles = !profiles.block_counts.is_empty();
    let forest = noelle.program_loop_forest();
    let mut order = forest.innermost_first();
    order.reverse();
    let mut seg_counter: i64 = next_segment_base(noelle.module());

    let mut done: Vec<(FuncId, noelle_ir::module::BlockId)> = Vec::new();
    for node in order {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        if done.iter().any(|&(df, dh)| {
            df == fid
                && l.header != dh
                && forest.per_function[&fid]
                    .loops()
                    .iter()
                    .find(|x| x.header == dh)
                    .map(|p| p.contains(l.header))
                    .unwrap_or(false)
        }) {
            continue;
        }
        let fname = noelle.module().func(fid).name.clone();
        if !opts.target.admits(&fname, l.header) {
            continue;
        }
        if have_profiles
            && profiles.loop_hotness(noelle.module(), fid, &l) < opts.target.min_hotness
        {
            report.skipped.push((fname, l.header, "cold loop".into()));
            continue;
        }
        let la = noelle.loop_abstraction(fid, l.clone());
        if la.ivs.governing().is_none() {
            report
                .skipped
                .push((fname, l.header, "no governing IV".into()));
            continue;
        }
        let Some(segments) = sequential_segments(noelle.module(), fid, &la) else {
            report
                .skipped
                .push((fname, l.header, "unbracketably sequential".into()));
            continue;
        };
        // Fraction check: serializing most of the body is pointless.
        let seg_insts: usize = segments.iter().map(BTreeSet::len).sum();
        let total = la.pdg.num_internal().max(1);
        if seg_insts as f64 / total as f64 > opts.max_sequential_fraction {
            report
                .skipped
                .push((fname, l.header, "mostly sequential".into()));
            continue;
        }
        // Profitability: the cross-core signal latency is paid once per
        // iteration on the sequential chain; the parallel work per iteration
        // must outweigh it (AR provides the latency).
        if !segments.is_empty() {
            let f = noelle.module().func(fid);
            let body_cost: u64 = la
                .pdg
                .internal_nodes()
                .map(|i| approx_inst_cost(f.inst(i)))
                .sum();
            let seg_cost: u64 = segments
                .iter()
                .flat_map(|s| s.iter())
                .map(|&i| approx_inst_cost(f.inst(i)))
                .sum();
            let latency = noelle.architecture().max_latency();
            if body_cost < (seg_cost + latency) * 13 / 10 {
                report
                    .skipped
                    .push((fname, l.header, "sequential segment dominates".into()));
                continue;
            }
        }
        let task_name = format!("{fname}.helix.{}", l.header.0);
        let seg_base = seg_counter;
        seg_counter += segments.len() as i64;
        let segments_ref = &segments;
        match noelle.edit(|tx| {
            parallelize_with(
                tx.module_touching([fid]),
                fid,
                &la,
                opts.target.workers,
                &task_name,
                |m, task| {
                    distribute_cyclically(m, task)?;
                    bracket_segments(m, task, segments_ref, seg_base)
                },
            )
        }) {
            Ok(()) => {
                report.parallelized.push((fname, l.header));
                done.push((fid, l.header));
            }
            Err(e) => report.skipped.push((fname, l.header, e.to_string())),
        }
    }
    // Metadata-only edit: no function bodies change.
    noelle.edit(|tx| set_segment_base(tx.module_touching([]), seg_counter));
    report
}

fn next_segment_base(m: &Module) -> i64 {
    m.metadata
        .get("noelle.helix.segments")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn set_segment_base(m: &mut Module, v: i64) {
    m.metadata
        .insert("noelle.helix.segments".to_string(), v.to_string());
}

/// Insert the iteration counter and the wait/signal brackets into the task
/// clone.
fn bracket_segments(
    m: &mut Module,
    task: &TaskFunction,
    segments: &[BTreeSet<InstId>],
    seg_base: i64,
) -> Result<(), ParallelizeError> {
    if segments.is_empty() {
        return Ok(());
    }
    let wait = m.get_or_declare(SS_WAIT_INTRINSIC, vec![Type::I64, Type::I64], Type::Void);
    let signal = m.get_or_declare(SS_SIGNAL_INTRINSIC, vec![Type::I64], Type::Void);

    let l = task_loop(m, task.fid);
    let latch = l
        .single_latch()
        .ok_or_else(|| ParallelizeError::Shape("multiple latches".into()))?;
    let tf = m.func_mut(task.fid);

    // Global iteration counter: k = phi [entry: task_id] [latch: k + n_tasks].
    let k_phi = tf.insert_inst(
        l.header,
        0,
        Inst::Phi {
            ty: Type::I64,
            incomings: vec![(task.entry, Value::Arg(1))],
        },
    );
    let latch_pos = tf.block(latch).insts.len() - 1; // before the terminator
    let k_next = tf.insert_inst(
        latch,
        latch_pos,
        Inst::Bin {
            op: noelle_ir::inst::BinOp::Add,
            ty: Type::I64,
            lhs: Value::Inst(k_phi),
            rhs: Value::Arg(2),
        },
    );
    if let Inst::Phi { incomings, .. } = tf.inst_mut(k_phi) {
        incomings.push((latch, Value::Inst(k_next)));
    }

    // Bracket each segment around its (mapped) first/last instruction.
    for (si, seg) in segments.iter().enumerate() {
        let seg_id = seg_base + si as i64;
        let mut placed: Vec<(usize, usize, InstId)> = Vec::new();
        for &orig in seg {
            let Some(Value::Inst(clone)) = task.value_map.get(&Value::Inst(orig)).copied() else {
                continue;
            };
            let b = tf.parent_block(clone);
            let bi = tf
                .block_order()
                .iter()
                .position(|&x| x == b)
                .unwrap_or(usize::MAX);
            let pos = tf.position_in_block(clone).unwrap_or(0);
            placed.push((bi, pos, clone));
        }
        if placed.is_empty() {
            continue;
        }
        placed.sort();
        let (first, last) = (placed[0].2, placed[placed.len() - 1].2);
        // wait(seg, k) immediately before the first instruction...
        let fb = tf.parent_block(first);
        let fpos = tf.position_in_block(first).expect("attached");
        tf.insert_inst(
            fb,
            fpos,
            Inst::Call {
                callee: Callee::Direct(wait),
                args: vec![Value::const_i64(seg_id), Value::Inst(k_phi)],
                ret_ty: Type::Void,
            },
        );
        // ...and signal(seg) immediately after the last one.
        let lb = tf.parent_block(last);
        let lpos = tf.position_in_block(last).expect("attached");
        tf.insert_inst(
            lb,
            lpos + 1,
            Inst::Call {
                callee: Callee::Direct(signal),
                args: vec![Value::const_i64(seg_id)],
                ret_ty: Type::Void,
            },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    /// A loop with a sequential recurrence through memory (running sum in a
    /// cell) *plus* plenty of parallel work per iteration — the HELIX sweet
    /// spot: the sequential segment is small relative to the body.
    const HELIX_PROGRAM: &str = r#"
module "helixdemo" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64* %acc, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %w1 = mul i64 %v, %v
  %w2 = div i64 %w1, i64 7
  %w3 = add i64 %w2, %v
  %w4 = div i64 %w3, i64 3
  %w5 = add i64 %w4, %w2
  %w6 = div i64 %w5, i64 5
  %w7 = add i64 %w6, %w3
  %w8 = div i64 %w7, i64 11
  %w9 = add i64 %w8, %w6
  %wa = mul i64 %w9, i64 13
  %wb = div i64 %wa, i64 9
  %wc = add i64 %wb, %w9
  %wd = div i64 %wc, i64 2
  %we = add i64 %wd, %wa
  %old = load i64, %acc
  %new = add i64 %old, %we
  store i64 %new, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %acc
  ret %r
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 4096)
  %acc = call i64* @malloc(i64 8)
  store i64 i64 0, %acc
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  %m7 = mul i64 %i, i64 7
  %x = and i64 %m7, i64 1023
  store i64 %x, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 512
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, %acc, i64 512)
  ret %s
}
}
"#;

    #[test]
    fn helix_parallelizes_loop_with_sequential_segment() {
        let m = parse_module(HELIX_PROGRAM).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();

        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &HelixOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    ..LoopTargetOpts::default()
                },
                max_sequential_fraction: 0.7,
            },
        );
        assert!(
            report.parallelized.iter().any(|(f, _)| f == "kernel"),
            "kernel loop must HELIX-parallelize: {report:?}"
        );
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("transformed module verifies: {e}"));
        let par = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(par.ret_i64(), seq.ret_i64(), "semantics preserved");
        let speedup = seq.cycles as f64 / par.cycles as f64;
        assert!(speedup > 1.2, "speedup = {speedup:.3}");
    }

    #[test]
    fn fully_sequential_loop_skipped() {
        // Nothing but the recurrence: sequential fraction ~ 1.
        let src = r#"
module "seq" {
define i64 @main() {
entry:
  %acc = alloca i64, i64 1
  store i64 i64 1, %acc
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 50
  condbr %c, body, exit
body:
  %v = load i64, %acc
  %v2 = mul i64 %v, i64 3
  %v3 = add i64 %v2, i64 1
  store i64 %v3, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %acc
  ret %r
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &HelixOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    ..LoopTargetOpts::default()
                },
                max_sequential_fraction: 0.3,
            },
        );
        assert_eq!(report.count(), 0, "{report:?}");
        assert!(report
            .skipped
            .iter()
            .any(|(_, _, why)| why == "mostly sequential"));
    }

    #[test]
    fn segment_grouping_is_computed() {
        let m = parse_module(HELIX_PROGRAM).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let fid = noelle.module().func_id_by_name("kernel").unwrap();
        let l = noelle.loops_of(fid)[0].clone();
        let la = noelle.loop_abstraction(fid, l);
        let segs = sequential_segments(noelle.module(), fid, &la).expect("bracketable");
        assert_eq!(segs.len(), 1, "one sequential segment (the acc recurrence)");
        assert!(segs[0].len() >= 2);
    }
}
