//! # noelle-transforms
//!
//! The ten custom tools of Table 3 of the paper, implemented on top of the
//! NOELLE-rs abstractions:
//!
//! | Tool | Module | Role |
//! |---|---|---|
//! | DOALL | [`doall`] | parallelize independent loops (cyclic iteration distribution) |
//! | HELIX | [`helix`] | parallelize loops with sequential segments synchronized across cores |
//! | DSWP | [`dswp`] | decoupled software pipelining over the aSCCDAG |
//! | LICM | [`licm`] | loop-invariant code motion (Algorithm 2-powered) |
//! | DEAD | [`dead`] | dead-function elimination over the complete call graph |
//! | CARAT | [`carat`] | memory-guard injection + redundancy elimination |
//! | COOS | [`coos`] | compiler-based timing: inject OS callback calls |
//! | PRVJ | [`prvj`] | pseudo-random value generator selection |
//! | TIME | [`time`] | compare canonicalization for timing-speculative cores |
//! | PERS | [`perspective`] | privatization-aware parallelization (Perspective-lite) |
//!
//! Baselines used by the evaluation live in [`baseline`]: an LLVM-style LICM
//! driven by Algorithm 1, and a gcc/icc-like *conservative* auto-parallelizer
//! that only handles do-while-shaped, trivially independent loops.

pub mod baseline;
pub mod carat;
pub mod common;
pub mod coos;
pub mod dead;
pub mod doall;
pub mod dswp;
pub mod helix;
pub mod licm;
pub mod perspective;
pub mod prvj;
pub mod time;

pub use common::{LoopTargetOpts, ParallelReport, ParallelizeError};
