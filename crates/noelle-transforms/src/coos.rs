//! COOS: compiler-based timing — replace hardware timer interrupts with
//! compiler-injected calls to OS routines.
//!
//! "This compiler uses DFE and PRO to implement its specialized data flow
//! analyses. It also uses L, FR, and LB to handle potentially-infinite
//! loops. Finally, it uses CG to improve the accuracy of its time analyses."
//!
//! Callback sites: every function entry, plus every loop latch — the latch
//! placement is what bounds the callback gap even for endless loops. The
//! call-graph refinement skips latch injection when the loop body already
//! calls a function that is guaranteed to emit callbacks.

use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{Callee, Inst};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::types::Type;
use std::collections::BTreeSet;

/// What COOS injected.
#[derive(Debug, Clone, Default)]
pub struct CoosReport {
    /// Callbacks injected at function entries.
    pub entry_sites: usize,
    /// Callbacks injected at loop latches.
    pub latch_sites: usize,
    /// Latches skipped because a callee already guarantees callbacks.
    pub covered_by_callee: usize,
}

/// Functions guaranteed to execute a callback on every invocation: their
/// entry block contains a `coos.callback` call (after this pass: every
/// defined function).
fn guaranteed_callback(m: &Module, fid: FuncId, treated: &BTreeSet<FuncId>) -> bool {
    treated.contains(&fid) && !m.func(fid).is_declaration()
}

/// Run COOS over the module.
pub fn run(noelle: &mut Noelle) -> CoosReport {
    for a in [
        Abstraction::Dfe,
        Abstraction::Pro,
        Abstraction::Cg,
        Abstraction::L,
        Abstraction::Fr,
        Abstraction::Lb,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = CoosReport::default();
    let fids: Vec<FuncId> = noelle.module().func_ids().collect();
    let defined: BTreeSet<FuncId> = fids
        .iter()
        .copied()
        .filter(|&f| !noelle.module().func(f).is_declaration())
        .collect();

    for fid in fids {
        if noelle.module().func(fid).is_declaration() {
            continue;
        }
        let loops = noelle.loops_of(fid);
        noelle.edit(|tx| {
            let m = tx.module_touching([fid]);
            let cb = m.get_or_declare("coos.callback", vec![], Type::Void);
            // Entry callback.
            {
                let f = m.func_mut(fid);
                let entry = f.entry();
                f.insert_inst(
                    entry,
                    0,
                    Inst::Call {
                        callee: Callee::Direct(cb),
                        args: vec![],
                        ret_ty: Type::Void,
                    },
                );
                report.entry_sites += 1;
            }
            // Latch callbacks (bounding gaps across iterations, including
            // endless loops).
            for l in &loops {
                // CG refinement: a direct call inside the loop to a defined
                // function means that function's entry callback already fires
                // every iteration that executes the call — only skip when the
                // call is on every iteration path (its block dominates the
                // latch). Keep the analysis simple: require the call in a block
                // of the loop and a single-latch loop dominated by it.
                let f = m.func(fid);
                let covered = l.single_latch().is_some_and(|latch| {
                    let cfg = noelle_ir::cfg::Cfg::new(f);
                    let dt = noelle_ir::dom::DomTree::new(f, &cfg);
                    l.blocks.iter().any(|&b| {
                        dt.dominates(b, latch)
                            && f.block(b).insts.iter().any(|&i| {
                                matches!(
                                    f.inst(i),
                                    Inst::Call {
                                        callee: Callee::Direct(c),
                                        ..
                                    } if guaranteed_callback(m, *c, &defined)
                                )
                            })
                    })
                });
                if covered {
                    report.covered_by_callee += 1;
                    continue;
                }
                let f = m.func_mut(fid);
                for &latch in &l.latches {
                    let pos = f.block(latch).insts.len().saturating_sub(1);
                    f.insert_inst(
                        latch,
                        pos,
                        Inst::Call {
                            callee: Callee::Direct(cb),
                            args: vec![],
                            ret_ty: Type::Void,
                        },
                    );
                    report.latch_sites += 1;
                }
            }
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const PROGRAM: &str = r#"
module "coosdemo" {
define i64 @work(i64 %x) {
entry:
  %y = mul i64 %x, %x
  ret %y
}
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 300
  condbr %c, body, exit
body:
  %w = call i64 @work(%i)
  %d1 = div i64 %w, i64 3
  %d2 = div i64 %d1, i64 2
  %s2 = add i64 %s, %d2
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;

    #[test]
    fn callbacks_bound_the_gap() {
        let m = parse_module(PROGRAM).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(before.counters.get("callbacks"), None);

        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.entry_sites, 2);
        // The loop calls @work (which now has an entry callback), and that
        // call dominates the latch: latch injection is skipped.
        assert_eq!(report.covered_by_callee, 1, "{report:?}");
        assert_eq!(report.latch_sites, 0);

        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64());
        let n = after.counters.get("callbacks").copied().unwrap_or(0);
        assert!(n >= 300, "expected a callback per iteration, got {n}");
        // Gap bound: no stretch of execution longer than ~one iteration's
        // cycles passes without a callback.
        let max_gap = after.counters.get("max_callback_gap").copied().unwrap_or(0);
        assert!(max_gap > 0 && max_gap < 400, "max gap = {max_gap}");
    }

    #[test]
    fn latch_injection_when_no_callee_covers() {
        let src = r#"
module "t" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [header: %i2]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 50
  condbr %c, header, exit
exit:
  ret %i2
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.latch_sites, 1, "{report:?}");
        let m2 = noelle.into_module();
        let r = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert!(r.counters.get("callbacks").copied().unwrap_or(0) >= 50);
    }
}
